"""E15 — fault recovery: the resilient invocation layer under injected faults.

Measures (a) exchange throughput as the injected fault rate rises — the
retry overhead the layer pays to keep completing exchanges that would
otherwise abort — and (b) what the per-endpoint circuit breaker saves
during a hard outage: attempts against a dead provider with and without
the breaker.  All timing is on the simulated clock, so backoff waits
cost nothing and runs are deterministic.
"""

import pytest

from benchmarks.conftest import print_series
from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    ResiliencePolicy,
    ResilientInvoker,
    Service,
    call,
    constant_responder,
    el,
    flaky_responder,
    parse_regex,
)
from repro.errors import FunctionUnavailableError, TransientFault
from repro.workloads import newspaper

WIDTH = 12


def wide_network(resilience, fail_every):
    star = newspaper.wide_schema_star(WIDTH)
    star2 = newspaper.wide_schema_star2(WIDTH)
    alice = AXMLPeer("alice", star, resilience=resilience)
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    handler = constant_responder((el("temp", "15"),))
    if fail_every:
        handler = flaky_responder(handler, fail_every)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        handler,
    )
    alice.registry.register(forecast)
    bob = AXMLPeer("bob", star2)
    network = PeerNetwork()
    network.add_peer(alice)
    network.add_peer(bob)
    network.agree("alice", "bob", star2)
    alice.repository.store("front", newspaper.wide_document(WIDTH))
    return network


def test_throughput_vs_fault_rate():
    """The recovery cost grows with the fault rate, but every exchange
    completes; the plain invoker aborts at any nonzero rate."""
    rows = [("fail_every", "accepted", "attempts", "retries", "backoff s")]
    for fail_every in (0, 8, 4, 3, 2):
        network = wide_network(ResiliencePolicy(), fail_every)
        receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        report = receipt.fault_report
        rows.append((
            fail_every or "never",
            receipt.accepted,
            report.attempts,
            report.retries,
            round(report.backoff_seconds, 3),
        ))
    print_series("E15 recovery cost vs fault rate", rows)
    attempts = [row[2] for row in rows[1:]]
    assert attempts[0] == WIDTH  # no faults: one attempt per call
    assert attempts == sorted(attempts)  # overhead grows with the rate

    # The baseline the layer exists for: without it the same exchange
    # aborts as soon as the provider faults once.
    receipt = wide_network(None, 3).send("alice", "bob", "front")
    assert not receipt.accepted


def test_resilient_exchange_throughput(benchmark):
    """Wall-clock cost of a resilient exchange at fail_every=3 (the
    stock injection): retries and simulated backoff included."""
    def exchange():
        network = wide_network(ResiliencePolicy(), 3)
        return network.send("alice", "bob", "front")

    receipt = benchmark(exchange)
    assert receipt.accepted
    assert receipt.retries == 5  # attempts 3, 6, 9, 12 and 15 of 17 fault


@pytest.mark.parametrize("functions", [8, 32])
def test_breaker_saves_attempts_during_hard_outage(functions):
    """During a total outage the breaker fast-fails whole endpoints:
    attempts against the dead provider stay O(threshold) instead of
    O(functions * max_attempts)."""

    def dead_inner(_fc):
        raise TransientFault("provider is down")

    def run(breaker_threshold):
        policy = ResiliencePolicy(
            max_attempts=4,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=10_000.0,  # never half-opens within the run
        )
        invoker = ResilientInvoker(
            dead_inner, policy, endpoint_of=lambda _fc: "dead-endpoint"
        )
        for index in range(functions):
            with pytest.raises(FunctionUnavailableError):
                invoker(call("op_%d" % index))
        return invoker.report

    with_breaker = run(breaker_threshold=3)
    without_breaker = run(breaker_threshold=10**9)
    rows = [
        ("configuration", "attempts", "rejections", "breaker opens"),
        ("breaker(threshold=3)", with_breaker.attempts,
         with_breaker.breaker_rejections, with_breaker.breaker_opens),
        ("no breaker", without_breaker.attempts,
         without_breaker.breaker_rejections, without_breaker.breaker_opens),
    ]
    print_series(
        "E15 hard outage, %d functions on one endpoint" % functions, rows
    )
    assert without_breaker.attempts == functions * 4
    assert with_breaker.attempts == 3  # the threshold, then fast failures
    assert with_breaker.breaker_opens == 1
