"""E26 — incremental enforcement under an edit storm.

A session absorbing single-article edits must beat fresh full
re-enforcement by ≥ 5x while producing byte-identical receipts, and its
per-edit re-analysis footprint must track edit locality, not document
size (the same worst case while the document doubles).  The assertions
here are the acceptance criteria; the numbers land in
``BENCH_incremental.json`` via the shared trajectory convention.
"""

import pytest

from benchmarks.conftest import write_bench_payload
from repro.incremental.bench import run_incremental


@pytest.fixture(scope="module")
def payload():
    return run_incremental(smoke=True)


class TestIncrementalStorm:
    def test_outcomes_byte_identical(self, payload):
        assert payload["identical_outcomes"] is True
        assert payload["small"]["identical_outcomes"] is True
        assert payload["large"]["identical_outcomes"] is True

    def test_speedup_at_least_5x(self, payload):
        assert payload["small"]["speedup"] >= 5.0
        assert payload["large"]["speedup"] >= 5.0

    def test_locality_not_document_size(self, payload):
        # Doubling the document must not grow the worst-case per-edit
        # re-analysis; and the footprint stays far below the node count.
        assert payload["locality_holds"] is True
        assert (
            payload["small"]["max_reanalyzed_per_edit"]
            == payload["large"]["max_reanalyzed_per_edit"]
        )
        assert (
            payload["large"]["max_reanalyzed_per_edit"]
            < payload["large"]["document_nodes"] // 4
        )

    def test_work_counters_present(self, payload):
        work = payload["work"]["default"]
        assert any("game" in key or "compile" in key for key in work)

    def test_write_payload(self, payload):
        path = write_bench_payload(payload)
        assert path.endswith("BENCH_incremental.json")
