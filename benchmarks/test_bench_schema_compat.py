"""E12 — Section 6: schema-to-schema safe rewriting.

Regenerates the paper's stated result — "this schema [(*)] safely
rewrites into the schema of (**) but does not safely rewrite into the
one of (***)" — and times the compatibility check, including its scaling
with the number of labels.
"""

from benchmarks.conftest import print_series
from repro.schema import SchemaBuilder
from repro.schemarewrite import schema_safely_rewrites
from repro.workloads import newspaper


def test_paper_claim():
    s1 = newspaper.schema_star()
    s2 = newspaper.schema_star2()
    s3 = newspaper.schema_star3()
    into_star2 = schema_safely_rewrites(s1, s2, k=1)
    into_star3 = schema_safely_rewrites(s1, s3, k=1)
    print_series(
        "E12 schema compatibility (Section 6)",
        [
            ("(*) -> (**)", bool(into_star2)),
            ("(*) -> (***)", bool(into_star3)),
            ("failing labels", [c.label for c in into_star3.failed()]),
        ],
    )
    assert into_star2.compatible
    assert not into_star3.compatible
    assert [c.label for c in into_star3.failed()] == ["newspaper"]


def test_check_time_star2(benchmark):
    s1, s2 = newspaper.schema_star(), newspaper.schema_star2()
    report = benchmark(lambda: schema_safely_rewrites(s1, s2, k=1))
    assert report.compatible


def test_check_time_star3(benchmark):
    s1, s3 = newspaper.schema_star(), newspaper.schema_star3()
    report = benchmark(lambda: schema_safely_rewrites(s1, s3, k=1))
    assert not report.compatible


def _wide_schemas(n_labels):
    sender = SchemaBuilder()
    receiver = SchemaBuilder()
    for i in range(n_labels):
        label = "l%d" % i
        sender.element(label, "f%d | x" % i)
        receiver.element(label, "x")
        sender.function("f%d" % i, "data", "x")
        receiver.function("f%d" % i, "data", "x")
    sender.element("x", "data").root("l0")
    receiver.element("x", "data").root("l0")
    # Make every label reachable from the root.
    return sender.build(strict=False), receiver.build(strict=False)


def test_scaling_with_label_count(benchmark):
    sender, receiver = _wide_schemas(20)
    report = benchmark(lambda: schema_safely_rewrites(sender, receiver, k=1))
    assert report.compatible  # every f_i can be invoked into x

    rows = [("labels", "checks run")]
    for n in (5, 10, 20):
        s, r = _wide_schemas(n)
        out = schema_safely_rewrites(s, r, k=1)
        rows.append((n, len(out.checks)))
    print_series("E12 scaling with schema size", rows)
