"""E8 — Section 4's complexity claim: determinism keeps safety polynomial.

"This exponential blow up may happen however only when s uses non
deterministic regular expressions [...] XML Schema enforces the usage of
deterministic regular expressions only.  Hence for most practical cases,
the complexity is polynomial."

We regenerate the claim with two target families of matching size:
``(a|b)*.a.(a|b)^n`` (not one-unambiguous; complement states grow as
2^n) versus ``a^{n+1}.b*`` (one-unambiguous; complement grows linearly),
and check the exponential-vs-linear crossover on complement sizes.
"""

import pytest

from benchmarks.conftest import print_series
from repro.regex.determinism import is_one_unambiguous
from repro.rewriting.lazy import analyze_safe_lazy
from repro.workloads.generators import det_target_problem, nondet_target_problem


def complement_states(problem):
    analysis = analyze_safe_lazy(
        problem.word, problem.output_types, problem.target
    )
    assert analysis.exists
    return analysis.stats.complement_states


def test_families_have_the_right_determinism():
    assert is_one_unambiguous(det_target_problem(5).target)
    assert not is_one_unambiguous(nondet_target_problem(5).target)


def test_exponential_vs_linear_complement_growth():
    rows = [("n", "det complement states", "nondet complement states")]
    det_sizes, nondet_sizes = [], []
    for n in range(1, 9):
        det = complement_states(det_target_problem(n))
        nondet = complement_states(nondet_target_problem(n))
        det_sizes.append(det)
        nondet_sizes.append(nondet)
        rows.append((n, det, nondet))
    print_series("E8 complement growth (det vs nondet)", rows)

    # Deterministic family: linear growth (constant first differences).
    det_deltas = {b - a for a, b in zip(det_sizes, det_sizes[1:])}
    assert len(det_deltas) == 1

    # Nondeterministic family: the classic 2^(n+1) states.
    for n, size in enumerate(nondet_sizes, start=1):
        assert size >= 2 ** (n + 1), (n, size)

    # The crossover: nondet dominates det everywhere past tiny n.
    assert nondet_sizes[-1] > 30 * det_sizes[-1]


@pytest.mark.parametrize("n", [4, 8])
def test_det_analysis_time(benchmark, n):
    problem = det_target_problem(n)
    benchmark(
        lambda: analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        )
    )


@pytest.mark.parametrize("n", [4, 8])
def test_nondet_analysis_time(benchmark, n):
    problem = nondet_target_problem(n)
    benchmark(
        lambda: analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        )
    )
