"""E10 — Section 4: the rewritten word length is bounded by |w| * x^k.

"The complexity of actually performing the rewriting depends on the size
of the answers returned by the called functions.  If x is the maximal
answer size, the length of the generated word is bounded by w * x^k."

We regenerate the bound with fan-out services: tau_out(h_i) = h_{i+1}^x,
the deepest level returning a^x.  Materializing one h_1 call to depth k
produces exactly x^k leaves; the benchmark sweeps x and k and checks the
measured word length against the bound.
"""

import pytest

from benchmarks.conftest import print_series
from repro.doc import call, el
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import execute_safe
from repro.workloads.generators import answer_size_problem


def make_invoker(answer_size, depth):
    def invoker(fc):
        level = int(fc.name[1:])
        if level < depth:
            return tuple(call("h%d" % (level + 1)) for _ in range(answer_size))
        return tuple(el("a") for _ in range(answer_size))

    return invoker


def materialize(answer_size, depth):
    problem = answer_size_problem(answer_size, depth)
    analysis = analyze_safe_lazy(
        problem.word, problem.output_types, problem.target, k=depth
    )
    assert analysis.exists
    new_children, log = execute_safe(
        analysis, (call("h1"),), make_invoker(answer_size, depth)
    )
    return len(new_children), len(log)


def test_word_length_matches_x_to_the_k():
    rows = [("x", "k", "result length", "bound |w|*x^k", "calls")]
    for answer_size in (2, 3):
        for depth in (1, 2, 3):
            length, calls = materialize(answer_size, depth)
            bound = answer_size ** depth
            rows.append((answer_size, depth, length, bound, calls))
            assert length == bound  # exact for this workload
    print_series("E10 answer-size bound", rows)


@pytest.mark.parametrize("answer_size,depth", [(2, 3), (3, 3), (4, 3)])
def test_materialization_time(benchmark, answer_size, depth):
    problem = answer_size_problem(answer_size, depth)
    analysis = analyze_safe_lazy(
        problem.word, problem.output_types, problem.target, k=depth
    )
    invoker = make_invoker(answer_size, depth)
    new_children, _log = benchmark(
        lambda: execute_safe(analysis, (call("h1"),), invoker)
    )
    assert len(new_children) == answer_size ** depth
