"""E18 (implementation ablation) — memoizing word analyses.

Documents repeat content models: a newspaper with N exhibits poses the
same (children word, target type) game N times.  The engine's analysis
cache solves each distinct game once; this ablation measures the hit
rate and the end-to-end speedup on wide documents.
"""

import pytest

from benchmarks.conftest import print_series, well_behaved_registry
from repro import Document, RewriteEngine, el, is_instance
from repro.doc.builder import call
from repro.workloads import newspaper


def wide_newspaper(n_exhibits):
    exhibits = [
        el("exhibit", el("title", "t%d" % i),
           call("Get_Date", el("title", "t%d" % i)))
        for i in range(n_exhibits)
    ]
    return Document(
        el("newspaper", el("title", "x"), el("date", "d"),
           el("temp", "21"), *exhibits)
    )


def run(n_exhibits, cache):
    engine = RewriteEngine(
        newspaper.schema_star3(), newspaper.schema_star(), k=1, cache=cache
    )
    registry = well_behaved_registry()
    result = engine.rewrite(wide_newspaper(n_exhibits),
                            registry.make_invoker())
    assert is_instance(
        result.document, newspaper.schema_star3(), newspaper.schema_star()
    )
    return engine, result


def test_hit_rate_grows_with_repetition():
    rows = [("exhibits", "hits", "misses")]
    for n in (5, 20, 80):
        engine, _result = run(n, cache=True)
        hits, misses = engine.cache_stats
        rows.append((n, hits, misses))
        # Distinct games are bounded by distinct content models, not by
        # document width.
        assert misses <= 6
        assert hits >= n
    print_series("E18 analysis cache", rows)


def test_cache_disabled_is_equivalent():
    _e1, with_cache = run(25, cache=True)
    _e2, without = run(25, cache=False)
    assert with_cache.document == without.document
    assert with_cache.log.invoked == without.log.invoked


@pytest.mark.parametrize("cache", [True, False],
                         ids=["cached", "uncached"])
def test_wide_document_rewrite_time(benchmark, cache):
    registry = well_behaved_registry()
    document = wide_newspaper(40)

    def go():
        engine = RewriteEngine(
            newspaper.schema_star3(), newspaper.schema_star(), k=1,
            cache=cache,
        )
        return engine.rewrite(document, registry.make_invoker())

    result = benchmark(go)
    # (***) lets each exhibit keep its Get_Date call; what matters is
    # conformance, which `run`-style validation asserts below.
    assert is_instance(
        result.document, newspaper.schema_star3(), newspaper.schema_star()
    )
