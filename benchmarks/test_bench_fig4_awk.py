"""E2 — Figure 4: the 1-depth expansion automaton A_w^1.

Regenerates the automaton for w = title.date.Get_Temp.TimeOut with the
paper's signatures and checks its structure against the figure: 10
states, fork nodes at q2 (Get_Temp) and q3 (TimeOut), each with the two
fork options (the function edge and the epsilon into the copy).
"""

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.rewriting.expansion import build_expansion


def test_structure_matches_figure_4():
    expansion = build_expansion(WORD, newspaper_outputs(), k=1)
    assert expansion.n_states == 10
    forks = expansion.fork_edges()
    assert [(e.source, str(e.guard)) for e in forks] == [
        (2, "Get_Temp"),
        (3, "TimeOut"),
    ]
    for fork in forks:
        invoke = expansion.edge(fork.invoke_edge)
        assert invoke.kind == "invoke" and invoke.source == fork.source
    print_series(
        "E2 A_w^1 structure (Figure 4)",
        [("states", expansion.n_states), ("edges", len(expansion.edges)),
         ("fork nodes", [e.source for e in forks])],
    )


def test_build_time(benchmark):
    outputs = newspaper_outputs()
    expansion = benchmark(lambda: build_expansion(WORD, outputs, k=1))
    assert expansion.n_states == 10


def test_growth_with_k(benchmark):
    outputs = newspaper_outputs()
    rows = [("k", "states", "edges")]
    for k in range(0, 4):
        expansion = build_expansion(WORD, outputs, k=k)
        rows.append((k,) + expansion.size())
    print_series("E2 A_w^k growth", rows)
    # The newspaper signatures contain no nested calls, so growth stops
    # after the first round.
    assert rows[2][1] == rows[3][1]
    benchmark(lambda: build_expansion(WORD, outputs, k=3))
