"""E5 — Figures 7+8: no safe rewriting into schema (***).

Regenerates the product A_w^1 x comp((***)) and verifies the paper's
conclusion: both fork options of both fork nodes are marked, hence the
initial state is marked and no safe rewriting exists — "the invocation
of TimeOut may return performance elements".
"""

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.errors import NoSafeRewritingError
from repro.regex.parser import parse_regex
from repro.rewriting.safe import analyze_safe

TARGET = parse_regex("title.date.temp.exhibit*")


def test_initial_state_marked_as_in_figure_8():
    analysis = analyze_safe(WORD, newspaper_outputs(), TARGET, k=1)
    assert not analysis.exists
    assert analysis.is_marked(analysis.initial)
    print_series(
        "E5 safe rewriting into (***) (Figures 7-8)",
        [("exists", analysis.exists),
         ("initial marked", analysis.is_marked(analysis.initial)),
         ("product nodes", analysis.stats.product_nodes),
         ("marked", analysis.stats.marked_nodes)],
    )


def test_both_fork_options_marked():
    """Figure 8: nodes [q2,p2] and [q3,p3] have both options marked."""
    analysis = analyze_safe(WORD, newspaper_outputs(), TARGET, k=1)
    expansion = analysis.expansion
    # Walk the base word to the fork nodes and inspect their options.
    comp = analysis.comp
    p = comp.initial
    for position, symbol in enumerate(WORD[:2]):
        p = analysis.comp_step(p, symbol)
    # At q2 with complement state after title.date: the Get_Temp fork.
    fork_get_temp = [
        e for e in expansion.edges_from(2) if str(e.guard) == "Get_Temp"
    ][0]
    keep = (fork_get_temp.target, analysis.comp_step(p, "Get_Temp"))
    invoke_edge = expansion.edge(fork_get_temp.invoke_edge)
    invoke = (invoke_edge.target, p)
    # Figure 8: BOTH options of [q2,p2] are marked — keeping Get_Temp can
    # never produce temp, and invoking it only leads to the TimeOut fork
    # whose two options are marked in turn (performance may come back).
    assert analysis.is_marked(keep)
    assert analysis.is_marked(invoke)

    # The TimeOut fork [q3,p3]: both options marked as well.
    p3 = analysis.comp_step(p, "temp")
    fork_timeout = [
        e for e in expansion.edges_from(3) if str(e.guard) == "TimeOut"
    ][0]
    keep_to = (fork_timeout.target, analysis.comp_step(p3, "TimeOut"))
    invoke_to_edge = expansion.edge(fork_timeout.invoke_edge)
    invoke_to = (invoke_to_edge.target, p3)
    assert analysis.is_marked(keep_to)
    assert analysis.is_marked(invoke_to)


def test_no_plan_extractable():
    analysis = analyze_safe(WORD, newspaper_outputs(), TARGET, k=1)
    try:
        analysis.preview_decisions()
        raise AssertionError("expected NoSafeRewritingError")
    except NoSafeRewritingError:
        pass


def test_unsafe_detection_time(benchmark):
    outputs = newspaper_outputs()
    analysis = benchmark(lambda: analyze_safe(WORD, outputs, TARGET, k=1))
    assert not analysis.exists
