"""E16 (ablation) — left-to-right vs. right-to-left one-pass rewritings.

Footnote 4: "one could choose similarly right-to-left"; Section 3 admits
the one-pass restriction "can miss a successful rewriting that is not
left-to-right".  This ablation measures how often each direction wins on
a family of knowledge-ordering problems, and what the two-pass fallback
(:func:`safe_in_some_direction`) recovers.
"""

import random

from benchmarks.conftest import print_series
from repro.regex.ast import alt, atom, seq
from repro.regex.parser import parse_regex
from repro.rewriting.direction import (
    LTR,
    RTL,
    analyze_safe_directed,
    safe_in_some_direction,
)


def knowledge_problem(rng):
    """One adversarial call, one fixed call; the target couples them.

    Which direction works depends on which side the adversarial call
    lands: its outcome must be observed *before* deciding the other.
    """
    adversarial_first = rng.random() < 0.5
    fixed = atom("c")
    twoway = parse_regex("a | b")
    if adversarial_first:
        outputs = {"f": twoway, "g": fixed}
        target = alt(seq(atom("a"), atom("c")), seq(atom("b"), atom("g")))
    else:
        outputs = {"f": fixed, "g": twoway}
        target = alt(seq(atom("c"), atom("a")), seq(atom("f"), atom("b")))
    return ("f", "g"), outputs, target, adversarial_first


def test_direction_coverage():
    rng = random.Random(16)
    counts = {"ltr": 0, "rtl": 0, "neither": 0}
    for _ in range(60):
        word, outputs, target, adversarial_first = knowledge_problem(rng)
        direction = safe_in_some_direction(word, outputs, target)
        counts[direction or "neither"] += 1
        # The adversarial call's position dictates the winning direction.
        assert direction == (LTR if adversarial_first else RTL)
    print_series(
        "E16 direction coverage on knowledge-ordering problems",
        [("ltr wins", counts["ltr"]), ("rtl wins", counts["rtl"]),
         ("neither", counts["neither"])],
    )
    assert counts["ltr"] > 0 and counts["rtl"] > 0
    assert counts["neither"] == 0  # two passes cover this family fully


def test_single_direction_misses_cases():
    rng = random.Random(17)
    ltr_only = sum(
        1
        for _ in range(60)
        if analyze_safe_directed(
            *knowledge_problem(rng)[:3], direction=LTR
        ).exists
    )
    assert 0 < ltr_only < 60  # LTR alone is genuinely incomplete here


def test_ltr_analysis_time(benchmark):
    word, outputs, target, _ = knowledge_problem(random.Random(3))
    benchmark(
        lambda: analyze_safe_directed(word, outputs, target, direction=LTR)
    )


def test_rtl_analysis_time(benchmark):
    word, outputs, target, _ = knowledge_problem(random.Random(3))
    benchmark(
        lambda: analyze_safe_directed(word, outputs, target, direction=RTL)
    )


def test_two_pass_fallback_time(benchmark):
    word, outputs, target, _ = knowledge_problem(random.Random(4))
    benchmark(lambda: safe_in_some_direction(word, outputs, target))
