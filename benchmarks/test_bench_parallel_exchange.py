"""E20 — concurrent materialization: overlapping latency-bound calls.

The paper's exchanges are dominated by service round-trips, not CPU:
each embedded call is one network hop to another peer.  This experiment
gives every ``Get_Temp`` a real (wall-clock) latency and measures what
the scheduler buys on a wide document whose calls are independent:

- **speedup** — total exchange time at 8 workers vs the sequential
  engine (the 1-wave DAG overlaps every round-trip);
- **dedup** — the same city appears several times, so the
  fingerprint store answers the duplicates locally: one round-trip per
  *unique* call, a saving the report must account for exactly;
- **determinism** — the delivered document is bit-identical at every
  worker count (the deterministic-merge guarantee this subsystem is
  allowed to exist for).

Unlike the other experiments this one must use the *real* clock: with a
simulated clock, per-thread sleeps add up identically however they
overlap, so parallelism would be invisible.
"""

import os
import time

from benchmarks.conftest import print_series
from repro import (
    FunctionSignature,
    RewriteEngine,
    Service,
    ServiceRegistry,
    el,
    parse_regex,
)
from repro.workloads import newspaper

#: 36 call occurrences cycling 12 cities: every call is independent
#: (one wave), every city is duplicated 3x (2 saveable trips each).
WIDTH = 36
UNIQUE = len(newspaper.CITIES)
#: Per-call latency; override to stress or to smoke-run faster.
LATENCY = float(os.environ.get("REPRO_E20_LATENCY", "0.02"))
WORKERS = 8


def latency_registry():
    registry = ServiceRegistry()
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)

    def responder(params):
        time.sleep(LATENCY)  # the round-trip this experiment is about
        city = params[0].children[0].value
        return (el("temp", str(sum(map(ord, city)) % 40)),)

    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        responder,
    )
    registry.register(forecast)
    return registry


def run(workers, dedup=True):
    engine = RewriteEngine(
        newspaper.wide_schema_star2(WIDTH),
        newspaper.wide_schema_star(WIDTH),
        k=1,
        workers=workers,
        dedup=dedup,
    )
    started = time.perf_counter()
    result = engine.rewrite(
        newspaper.wide_document(WIDTH), latency_registry().make_invoker()
    )
    return result, time.perf_counter() - started


def test_parallel_exchange_speedup_and_dedup():
    sequential, seq_seconds = run(workers=1)
    parallel, par_seconds = run(workers=WORKERS)
    no_dedup, nd_seconds = run(workers=WORKERS, dedup=False)

    report = parallel.exec_report
    rows = [("config", "wall s", "physical", "saved", "speedup")]
    rows.append(("1 worker", round(seq_seconds, 3), WIDTH, 0, "1.0x"))
    for label, result, seconds in (
        ("%d workers" % WORKERS, parallel, par_seconds),
        ("%d workers, no dedup" % WORKERS, no_dedup, nd_seconds),
    ):
        rows.append((
            label,
            round(seconds, 3),
            result.exec_report.physical_calls,
            result.exec_report.saved_round_trips,
            "%.1fx" % (seq_seconds / seconds),
        ))
    print_series("E20 latency-bound exchange (%d calls, %d unique, "
                 "%.0f ms each)" % (WIDTH, UNIQUE, LATENCY * 1000), rows)

    # determinism: bit-identical at any worker count, dedup on or off
    assert parallel.document.to_xml() == sequential.document.to_xml()
    assert no_dedup.document.to_xml() == sequential.document.to_xml()
    assert parallel.exec_report.tasks_failed == 0
    assert no_dedup.exec_report.tasks_failed == 0

    # dedup: one wire crossing per unique call; each of the 12 cities
    # appears 3x, so exactly 2 round-trips saved per duplicated call
    assert report.scheduled_tasks == UNIQUE
    assert report.physical_calls == UNIQUE
    assert report.saved_round_trips == WIDTH - UNIQUE
    assert report.saved_round_trips >= UNIQUE  # >= 1 per duplicated call

    # speedup: 36 serialized sleeps vs ceil(12/8) = 2 overlapped rounds
    assert seq_seconds >= WIDTH * LATENCY
    assert seq_seconds / par_seconds >= 3.0


def test_single_wave_plan():
    """The wide document's DAG is embarrassingly parallel: one wave,
    no edges — the shape the speedup above depends on."""
    result, _seconds = run(workers=WORKERS)
    assert result.exec_report.waves == 1
    assert result.exec_report.tasks_failed == 0
