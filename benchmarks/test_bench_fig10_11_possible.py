"""E6 — Figures 10+11: possible rewriting into schema (***).

Regenerates the product A_w^1 x A((***)), verifies the paper's
conclusions — the initial state can reach acceptance, the only viable
fork options invoke BOTH Get_Temp and TimeOut, success depends on
TimeOut returning only exhibits — and times the analysis plus both the
lucky and unlucky executions.
"""

import pytest

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.doc import call, el, text
from repro.errors import RewriteExecutionError
from repro.regex.parser import parse_regex
from repro.rewriting.possible import analyze_possible, execute_possible

TARGET = parse_regex("title.date.temp.exhibit*")


def children():
    return (
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris")),
        call("TimeOut", text("exhibits")),
    )


def lucky_invoker(fc):
    if fc.name == "Get_Temp":
        return (el("temp", "15"),)
    return (el("exhibit", el("title", "P"), el("date", "d")),)


def unlucky_invoker(fc):
    if fc.name == "Get_Temp":
        return (el("temp", "15"),)
    return (el("performance"),)


def test_possible_exists_as_in_figure_11():
    analysis = analyze_possible(WORD, newspaper_outputs(), TARGET, k=1)
    assert analysis.exists
    witness = analysis.witness()
    assert witness[:3] == ("title", "date", "temp")
    print_series(
        "E6 possible rewriting into (***) (Figures 10-11)",
        [("exists", analysis.exists), ("witness", ".".join(witness)),
         ("alive nodes", analysis.stats.marked_nodes),
         ("product nodes", analysis.stats.product_nodes)],
    )


def test_lucky_execution_invokes_both():
    analysis = analyze_possible(WORD, newspaper_outputs(), TARGET, k=1)
    new_children, log = execute_possible(analysis, children(), lucky_invoker)
    assert sorted(log.invoked) == ["Get_Temp", "TimeOut"]
    assert all(not r.backtracked for r in log.records)


def test_unlucky_execution_fails_with_side_effects():
    analysis = analyze_possible(WORD, newspaper_outputs(), TARGET, k=1)
    with pytest.raises(RewriteExecutionError):
        execute_possible(analysis, children(), unlucky_invoker)


def test_analysis_time(benchmark):
    outputs = newspaper_outputs()
    analysis = benchmark(lambda: analyze_possible(WORD, outputs, TARGET, k=1))
    assert analysis.exists


def test_lucky_execution_time(benchmark):
    analysis = analyze_possible(WORD, newspaper_outputs(), TARGET, k=1)
    new_children, log = benchmark(
        lambda: execute_possible(analysis, children(), lucky_invoker)
    )
    assert len(new_children) == 4


def test_possible_cheaper_than_safe():
    """Section 5: possible rewriting avoids complementation, so its
    automaton never exceeds the safe one's on the same problem."""
    from repro.rewriting.safe import analyze_safe

    outputs = newspaper_outputs()
    possible = analyze_possible(WORD, outputs, TARGET, k=1)
    safe = analyze_safe(WORD, outputs, TARGET, k=1)
    assert (
        possible.stats.complement_states <= safe.stats.complement_states
    )
