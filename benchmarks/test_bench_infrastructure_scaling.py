"""E19 (infrastructure) — substrate scaling on large documents.

Not a paper claim, but a reproduction must demonstrate its substrate
holds up: validation, XML round-trips and enforcement must scale roughly
linearly in document size for the simulator results to be trustworthy.
Documents here are generated newspaper instances padded with hundreds of
exhibits.
"""

import pytest

from benchmarks.conftest import print_series, well_behaved_registry
from repro import Document, RewriteEngine, el, is_instance
from repro.doc.builder import call
from repro.workloads import newspaper


def big_newspaper(n_exhibits, intensional_every=4):
    children = [el("title", "x"), el("date", "d"), el("temp", "21")]
    for i in range(n_exhibits):
        if i % intensional_every == 0:
            children.append(
                el("exhibit", el("title", "t%d" % i),
                   call("Get_Date", el("title", "t%d" % i)))
            )
        else:
            children.append(
                el("exhibit", el("title", "t%d" % i), el("date", "d%d" % i))
            )
    return Document(el("newspaper", *children))


def test_linear_scaling_shapes():
    import time

    rows = [("exhibits", "nodes", "validate ms", "roundtrip ms")]
    timings = []
    for n in (100, 200, 400):
        document = big_newspaper(n)
        start = time.perf_counter()
        assert is_instance(document, newspaper.schema_star3(),
                           newspaper.schema_star())
        validate_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        assert Document.from_xml(document.to_xml()) == document
        roundtrip_ms = (time.perf_counter() - start) * 1000
        rows.append((n, document.size(), round(validate_ms, 2),
                     round(roundtrip_ms, 2)))
        timings.append((n, validate_ms, roundtrip_ms))
    print_series("E19 substrate scaling", rows)

    # Roughly linear: 4x the size must stay well under 16x the time.
    (n0, v0, r0), (_n1, _v1, _r1), (n2, v2, r2) = timings
    assert v2 < 16 * max(v0, 0.05)
    assert r2 < 16 * max(r0, 0.05)


@pytest.mark.parametrize("n", [100, 400])
def test_validate_time(benchmark, n):
    document = big_newspaper(n)
    s3, s1 = newspaper.schema_star3(), newspaper.schema_star()
    assert benchmark(lambda: is_instance(document, s3, s1))


@pytest.mark.parametrize("n", [100, 400])
def test_roundtrip_time(benchmark, n):
    document = big_newspaper(n)
    assert benchmark(lambda: Document.from_xml(document.to_xml())) == document


@pytest.mark.parametrize("n", [100, 400])
def test_enforce_time(benchmark, n):
    document = big_newspaper(n)
    registry = well_behaved_registry()

    def go():
        engine = RewriteEngine(
            newspaper.schema_star3(), newspaper.schema_star(), k=1
        )
        return engine.rewrite(document, registry.make_invoker())

    result = benchmark(go)
    assert is_instance(result.document, newspaper.schema_star3(),
                       newspaper.schema_star())
