"""E11 — Section 5: possible rewriting is the cheaper analysis.

Safe rewriting products use the *complement* of the target (worst-case
exponential for nondeterministic targets); possible rewriting uses the
target itself, so it stays polynomial.  We regenerate the comparison on
the nondeterministic family where the gap is structural, and on the
paper's example where both are small.
"""

import pytest

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe
from repro.workloads.generators import nondet_target_problem

TARGET3 = parse_regex("title.date.temp.exhibit*")


def test_automaton_sizes_safe_vs_possible():
    rows = [("n", "safe: complement states", "possible: target states")]
    for n in (2, 4, 6, 8):
        problem = nondet_target_problem(n)
        safe = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        )
        possible = analyze_possible(
            problem.word, problem.output_types, problem.target
        )
        rows.append(
            (n, safe.stats.complement_states, possible.stats.complement_states)
        )
        # Possible rewriting's automaton is the subset-construction of the
        # target, which for this family is also exponential; what stays
        # small is the paper's practical case: deterministic targets.
    print_series("E11 automaton sizes", rows)
    # On the last row the complement is at least as large as the target
    # DFA (complement adds the sink and flips acceptance).
    assert rows[-1][1] >= rows[-1][2]


def test_paper_example_sizes():
    outputs = newspaper_outputs()
    safe = analyze_safe(WORD, outputs, TARGET3, k=1)
    possible = analyze_possible(WORD, outputs, TARGET3, k=1)
    print_series(
        "E11 paper example",
        [
            ("safe product nodes", safe.stats.product_nodes),
            ("possible product nodes", possible.stats.product_nodes),
            ("safe exists", safe.exists),
            ("possible exists", possible.exists),
        ],
    )
    assert not safe.exists and possible.exists


@pytest.mark.parametrize("n", [4, 8])
def test_safe_analysis_time(benchmark, n):
    problem = nondet_target_problem(n)
    benchmark(
        lambda: analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        )
    )


@pytest.mark.parametrize("n", [4, 8])
def test_possible_analysis_time(benchmark, n):
    problem = nondet_target_problem(n)
    benchmark(
        lambda: analyze_possible(
            problem.word, problem.output_types, problem.target
        )
    )
