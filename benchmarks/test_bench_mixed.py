"""E13 — Section 5's mixed approach: invoke cheap calls first.

"A mixed approach, that invokes some of the functions (e.g. ones with no
side effects or low price) to get their actual output, while safely
verifying other functions can be clearly beneficial [...] This may
greatly simplify the resulting automaton A_w^k."

We regenerate the effect: eagerly invoking the well-behaved TimeOut
turns the (***) exchange from unsafe into safe, and shrinks the game;
the benchmark compares automaton sizes and end-to-end times.
"""

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.doc import call, el, text
from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.mixed import mixed_rewrite_word

TARGET2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
TARGET3 = parse_regex("title.date.temp.exhibit*")


def children():
    return (
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris")),
        call("TimeOut", text("exhibits")),
    )


def invoker(fc):
    if fc.name == "Get_Temp":
        return (el("temp", "15"),)
    return (el("exhibit", el("title", "P"), el("date", "d")),)


def test_mixed_rescues_the_unsafe_exchange():
    pure = analyze_safe_lazy(WORD, newspaper_outputs(), TARGET3, k=1)
    assert not pure.exists
    new_children, log, analysis = mixed_rewrite_word(
        children(), newspaper_outputs(), TARGET3, invoker,
        eager=lambda name: name == "TimeOut", k=1,
    )
    assert analysis.exists
    print_series(
        "E13 mixed approach on (***)",
        [
            ("pure safe exists", pure.exists),
            ("mixed safe exists", analysis.exists),
            ("calls", sorted(log.invoked)),
        ],
    )


def test_mixed_shrinks_the_game():
    full = analyze_safe_lazy(WORD, newspaper_outputs(), TARGET2, k=1)
    _new, _log, mixed = mixed_rewrite_word(
        children(), newspaper_outputs(), TARGET2, invoker,
        eager=lambda name: name == "TimeOut", k=1,
    )
    print_series(
        "E13 game sizes",
        [
            ("pure expansion states", full.stats.expansion_states),
            ("mixed expansion states", mixed.stats.expansion_states),
            ("pure product nodes", full.stats.product_nodes),
            ("mixed product nodes", mixed.stats.product_nodes),
        ],
    )
    assert mixed.stats.expansion_states < full.stats.expansion_states


def test_pure_safe_time(benchmark):
    from repro.rewriting.safe import execute_safe

    outputs = newspaper_outputs()
    analysis = analyze_safe_lazy(WORD, outputs, TARGET2, k=1)

    def run():
        return execute_safe(analysis, children(), invoker)

    benchmark(run)


def test_mixed_time(benchmark):
    outputs = newspaper_outputs()

    def run():
        return mixed_rewrite_word(
            children(), outputs, TARGET2, invoker,
            eager=lambda name: name == "TimeOut", k=1,
        )

    benchmark(run)
