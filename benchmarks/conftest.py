"""Shared helpers for the experiment benchmarks (E1-E14).

Each benchmark module regenerates one artifact of the paper — a worked
figure or a complexity claim — and asserts its *shape* (who wins, where
the crossover falls) in addition to timing it.  EXPERIMENTS.md records
paper-vs-measured for each.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.bench import machine_fingerprint, write_payload

from repro import (
    FunctionSignature,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    parse_regex,
)
from repro.workloads import newspaper

#: The running example's children word (Figure 2.a / Section 4).
WORD = ("title", "date", "Get_Temp", "TimeOut")


def newspaper_outputs():
    return {
        "Get_Temp": parse_regex("temp"),
        "TimeOut": parse_regex("(exhibit | performance)*"),
        "Get_Date": parse_regex("date"),
    }


@pytest.fixture
def outputs():
    return newspaper_outputs()


@pytest.fixture
def target_star2():
    return parse_regex("title.date.temp.(TimeOut | exhibit*)")


@pytest.fixture
def target_star3():
    return parse_regex("title.date.temp.exhibit*")


def well_behaved_registry():
    """Get_Temp/TimeOut/Get_Date with fixed, type-conforming answers."""
    registry = ServiceRegistry()
    forecast = Service("http://www.forecast.com/soap", "urn:w")
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
        side_effect_free=True,
    )
    timeout = Service("http://www.timeout.com/paris", "urn:t")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(
            (el("exhibit", el("title", "P"), el("date", "d")),)
        ),
    )
    dates = Service("http://dates.example.com", "urn:d")
    dates.add_operation(
        "Get_Date",
        FunctionSignature(parse_regex("title"), parse_regex("date")),
        constant_responder((el("date", "04/12"),)),
    )
    registry.register(forecast).register(timeout).register(dates)
    return registry


@pytest.fixture
def registry():
    return well_behaved_registry()


def write_bench_payload(payload: dict) -> str:
    """Write one ``BENCH_<name>.json`` trajectory file.

    The shared exit point for every benchmark that records a payload:
    stamps the host fingerprint, then lands the file in
    ``$REPRO_BENCH_DIR`` (default: the current directory, i.e. the repo
    root when run via pytest) in the sorted-JSON convention `repro
    bench` also follows.  ``payload["benchmark"]`` names the file.
    """
    import os

    payload = dict(payload)
    payload.setdefault("machine", machine_fingerprint())
    return write_payload(payload, os.environ.get("REPRO_BENCH_DIR", "."))


def print_series(title: str, rows):
    """Emit one experiment's series so the harness output mirrors the
    tables of EXPERIMENTS.md (visible with pytest -s)."""
    print()
    print("== %s ==" % title)
    for row in rows:
        print("   " + " | ".join(str(cell) for cell in row))
