"""E4 — Figure 6: the marked product and the safe rewriting into (**).

Regenerates the cartesian product A_w^1 x comp((**)), verifies the
figure's conclusions — the two fork nodes are unmarked, the initial
state is unmarked, a safe rewriting exists, and the extracted plan is
"invoke Get_Temp, do not invoke TimeOut" — and times analysis and
execution end to end.
"""

from benchmarks.conftest import (
    WORD,
    newspaper_outputs,
    print_series,
    well_behaved_registry,
)
from repro.doc import call, el, text
from repro.regex.parser import parse_regex
from repro.rewriting.safe import analyze_safe, execute_safe

TARGET = parse_regex("title.date.temp.(TimeOut | exhibit*)")


def children():
    return (
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris"),
             endpoint="http://www.forecast.com/soap"),
        call("TimeOut", text("exhibits"),
             endpoint="http://www.timeout.com/paris"),
    )


def test_marking_matches_figure_6():
    analysis = analyze_safe(WORD, newspaper_outputs(), TARGET, k=1)
    assert analysis.exists
    assert not analysis.is_marked(analysis.initial)
    decisions = analysis.preview_decisions()
    assert [(d.function, d.action) for d in decisions] == [
        ("Get_Temp", "invoke"),
        ("TimeOut", "keep"),
    ]
    print_series(
        "E4 safe rewriting into (**) (Figure 6)",
        [("exists", analysis.exists)]
        + [("decision", str(d)) for d in decisions]
        + [("product nodes", analysis.stats.product_nodes),
           ("marked", analysis.stats.marked_nodes)],
    )


def test_analysis_time(benchmark):
    outputs = newspaper_outputs()
    analysis = benchmark(lambda: analyze_safe(WORD, outputs, TARGET, k=1))
    assert analysis.exists


def test_end_to_end_rewrite_time(benchmark):
    registry = well_behaved_registry()
    outputs = newspaper_outputs()
    analysis = analyze_safe(WORD, outputs, TARGET, k=1)
    invoker = registry.make_invoker()

    def run():
        return execute_safe(analysis, children(), invoker)

    new_children, log = benchmark(run)
    assert log.invoked == ["Get_Temp"]
    assert [getattr(n, "label", getattr(n, "name", None)) for n in new_children] == [
        "title", "date", "temp", "TimeOut",
    ]
