"""E7 — Figure 12: the lazy variant's sink-node and marked-node pruning.

The paper: the lazy construction "saves a lot of unnecessary computation
in practice" while having "the same worst-case complexity".  We verify,
on the paper's own example and on random problems, that the lazy solver
(a) always agrees with the eager one and (b) expands strictly fewer
product nodes when sinks are reachable — and we time both.
"""

import random

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe
from repro.workloads.generators import random_word_problem

TARGET2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
TARGET3 = parse_regex("title.date.temp.exhibit*")


def test_pruning_on_the_papers_example():
    outputs = newspaper_outputs()
    rows = [("target", "eager explored", "lazy explored", "agree")]
    for name, target in (("(**)", TARGET2), ("(***)", TARGET3)):
        eager = analyze_safe(WORD, outputs, target, k=1)
        lazy = analyze_safe_lazy(WORD, outputs, target, k=1)
        rows.append(
            (name, eager.stats.product_explored, lazy.stats.product_explored,
             eager.exists == lazy.exists)
        )
        assert eager.exists == lazy.exists
        assert lazy.stats.product_explored <= eager.stats.product_explored
    print_series("E7 lazy pruning (Figure 12)", rows)
    # On (**) the sink region behind p6 is pruned: strictly fewer nodes.
    assert rows[1][2] < rows[1][1]


def test_agreement_on_random_problems():
    saved = []
    for seed in range(40):
        problem = random_word_problem(random.Random(seed), n_calls=4, n_plain=4)
        eager = analyze_safe(problem.word, problem.output_types, problem.target)
        lazy = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, early_exit=False
        )
        assert eager.exists == lazy.exists
        saved.append(eager.stats.product_explored - lazy.stats.product_explored)
    assert all(delta >= 0 for delta in saved)
    print_series(
        "E7 random problems",
        [("problems", 40), ("total nodes saved by pruning", sum(saved))],
    )


def test_pruning_helps_on_narrow_targets():
    """Sink pruning kicks in when the target rejects some outputs —
    exactly the (**) situation of Figure 12."""
    from repro.workloads.generators import wide_problem

    total_saved = 0
    for width in (2, 4, 8):
        problem = wide_problem(width, safe=False)  # outputs b|c, target b^n
        eager = analyze_safe(problem.word, problem.output_types, problem.target)
        lazy = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, early_exit=False
        )
        assert eager.exists == lazy.exists
        total_saved += (
            eager.stats.product_explored - lazy.stats.product_explored
        )
    assert total_saved > 0
    print_series(
        "E7 narrow targets", [("total nodes saved", total_saved)]
    )


def test_eager_time(benchmark):
    outputs = newspaper_outputs()
    benchmark(lambda: analyze_safe(WORD, outputs, TARGET2, k=1))


def test_lazy_time(benchmark):
    outputs = newspaper_outputs()
    benchmark(lambda: analyze_safe_lazy(WORD, outputs, TARGET2, k=1))


def test_lazy_early_exit_time_on_unsafe(benchmark):
    outputs = newspaper_outputs()
    analysis = benchmark(
        lambda: analyze_safe_lazy(WORD, outputs, TARGET3, k=1)
    )
    assert not analysis.exists
