"""E16 — observability overhead: the null-object path must be ~free.

Every hot path in the stack (engine, game solvers, DFA products, the
resilient invoker, SOAP, the peer network) now calls into ``repro.obs``.
By default those sinks are null objects, so the only cost is a function
call and an attribute check per site.  This benchmark quantifies that
cost on an E15-style wide exchange and asserts the bound the design
promises: **under 5% of end-to-end latency**.

Method: time the exchange with the default (null) sinks, then run one
traced exchange to count how many spans/events/metric touches the
exchange actually performs, microbenchmark the per-touch null cost, and
compare ``touches x per-touch`` against the measured exchange time.
The touch counts and both timings land in the benchmark JSON via
``extra_info``.
"""

import time

import pytest

from repro.automata.core import BITSET, DICT, using_core

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    ResiliencePolicy,
    Service,
    constant_responder,
    el,
    parse_regex,
)
from repro.obs import NULL_METRICS, NULL_TRACER, Tracer, observing
from repro.services.resilience import SimulatedClock
from repro.workloads import newspaper

WIDTH = 12
MAX_OVERHEAD_FRACTION = 0.05


def wide_network(resilience=None):
    star = newspaper.wide_schema_star(WIDTH)
    star2 = newspaper.wide_schema_star2(WIDTH)
    alice = AXMLPeer("alice", star, resilience=resilience)
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    alice.registry.register(forecast)
    bob = AXMLPeer("bob", star2)
    network = PeerNetwork()
    network.add_peer(alice)
    network.add_peer(bob)
    network.agree("alice", "bob", star2)
    alice.repository.store("front", newspaper.wide_document(WIDTH))
    return network


def run_exchange(resilience=None):
    network = wide_network(resilience)
    receipt = network.send("alice", "bob", "front")
    assert receipt.accepted
    return receipt


def count_touches():
    """How many obs touches one exchange performs (spans + events)."""
    tracer = Tracer(clock=SimulatedClock(), capacity=100_000)
    with observing(tracer):
        run_exchange(resilience=ResiliencePolicy())
    spans = tracer.finished()
    events = sum(len(span.events) for span in spans)
    return len(spans), events


def null_touch_cost(iterations=200_000):
    """Per-touch cost of the null path: one span() + with + set + event."""
    started = time.perf_counter()
    for _ in range(iterations):
        with NULL_TRACER.span("node", word="w") as span:
            span.set(mode="safe")
        NULL_TRACER.event("attempt", n=1)
        NULL_METRICS.counter("c", "h").inc(function="f")
    return (time.perf_counter() - started) / iterations


@pytest.mark.parametrize("core", [DICT, BITSET], ids=["dict", "bitset"])
def test_null_tracer_overhead_under_five_percent(benchmark, core):
    """The instrumented-but-untraced exchange stays within the budget.

    Parametrized over both automata cores: the bitset core shrinks the
    game's share of the exchange, so the same touch count must fit in a
    smaller wall-clock budget — the harder half of the bound.
    """
    with using_core(core):
        exchange_seconds = benchmark(run_exchange, ResiliencePolicy())

        n_spans, n_events = count_touches()
        per_touch = null_touch_cost()
    touches = n_spans + n_events
    # Each touch above bundles a span, an attribute set, an event and a
    # metric call — strictly more work than most real sites do.
    estimated_overhead = touches * per_touch
    measured = benchmark.stats.stats.mean
    fraction = estimated_overhead / measured

    benchmark.extra_info["spans_per_exchange"] = n_spans
    benchmark.extra_info["events_per_exchange"] = n_events
    benchmark.extra_info["null_cost_per_touch_s"] = per_touch
    benchmark.extra_info["estimated_overhead_s"] = estimated_overhead
    benchmark.extra_info["exchange_mean_s"] = measured
    benchmark.extra_info["overhead_fraction"] = fraction

    print(
        "\nE16: %d span(s) + %d event(s)/exchange, %.0f ns/touch null cost; "
        "estimated overhead %.2f%% of a %.3f ms exchange"
        % (
            n_spans, n_events, per_touch * 1e9,
            fraction * 100.0, measured * 1e3,
        )
    )
    assert fraction < MAX_OVERHEAD_FRACTION, (
        "null-path observability overhead %.2f%% exceeds %.0f%%"
        % (fraction * 100.0, MAX_OVERHEAD_FRACTION * 100.0)
    )


def test_traced_exchange_still_completes(benchmark):
    """Tracing on: the same exchange, for the curious (not bounded)."""

    def traced():
        with observing(Tracer(clock=SimulatedClock(), capacity=100_000)):
            return run_exchange(resilience=ResiliencePolicy())

    receipt = benchmark(traced)
    assert receipt.accepted
    benchmark.extra_info["calls_materialized"] = receipt.calls_materialized
