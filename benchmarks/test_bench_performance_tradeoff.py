"""E17 — the Introduction's *Performance* consideration, quantified.

"The decision whether to execute calls before or after the data transfer
may be influenced by the current system load or the cost of
communication.  [...] if the sender's system is overloaded or
communication is expensive, the sender may prefer to send smaller files
and delegate as much materialization of the data as possible to the
receiver.  Otherwise, it may decide to materialize as much data as
possible before transmission."

We quantify the trade-off on the newspaper exchange with a simple cost
model: each call costs ``call_cost`` units wherever it runs, and each
wire byte costs ``byte_cost``.  Depending on who is loaded and how
expensive the link is, the cheapest agreement flips between fully
intensional, hybrid, and fully extensional — the crossovers the
introduction predicts.
"""

from dataclasses import dataclass

from benchmarks.conftest import print_series, well_behaved_registry
from repro import AXMLPeer, PeerNetwork, SchemaBuilder
from repro.workloads import newspaper


def extensional_schema():
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.temp.exhibit*")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.date")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build(strict=False)
    )


@dataclass
class ExchangeCosts:
    """Measured resources of one agreement level."""

    agreement: str
    sender_calls: int
    wire_bytes: int
    receiver_calls: int  # calls left for the receiver to materialize

    def total(self, sender_call_cost, byte_cost, receiver_call_cost):
        return (
            self.sender_calls * sender_call_cost
            + self.wire_bytes * byte_cost
            + self.receiver_calls * receiver_call_cost
        )


def measure():
    levels = [
        ("intensional", newspaper.schema_star(), "safe"),
        ("hybrid", newspaper.schema_star2(), "safe"),
        ("extensional", extensional_schema(), "possible"),
    ]
    results = []
    for name, agreement, mode in levels:
        sender = AXMLPeer("sender", newspaper.schema_star(), mode=mode)
        for service in well_behaved_registry().services.values():
            sender.registry.register(service)
        receiver = AXMLPeer("receiver", agreement)
        network = PeerNetwork()
        network.add_peer(sender)
        network.add_peer(receiver)
        network.agree("sender", "receiver", agreement)
        sender.repository.store("front", newspaper.document())
        receipt = network.send("sender", "receiver", "front")
        assert receipt.accepted, receipt.error
        remaining = receiver.repository.get("front").function_count()
        results.append(
            ExchangeCosts(name, receipt.calls_materialized,
                          receipt.bytes_on_wire, remaining)
        )
    return results


def cheapest(results, sender_call_cost, byte_cost, receiver_call_cost):
    return min(
        results,
        key=lambda r: r.total(sender_call_cost, byte_cost, receiver_call_cost),
    ).agreement


def test_crossovers_match_the_introduction():
    results = measure()
    rows = [("agreement", "sender calls", "wire bytes", "receiver calls")]
    for r in results:
        rows.append((r.agreement, r.sender_calls, r.wire_bytes,
                     r.receiver_calls))
    print_series("E17 exchange resource profile", rows)

    # Monotone spectrum: more sender work, fewer bytes, less receiver work.
    calls = [r.sender_calls for r in results]
    bytes_ = [r.wire_bytes for r in results]
    remaining = [r.receiver_calls for r in results]
    assert calls == sorted(calls)
    assert bytes_ == sorted(bytes_, reverse=True)
    assert remaining == sorted(remaining, reverse=True)

    scenarios = [
        # (sender call, per byte, receiver call) -> expected winner
        ("overloaded sender, capable receiver", (50.0, 0.0, 1.0),
         "intensional"),
        ("expensive link, capable receiver", (1.0, 5.0, 1.0),
         "extensional"),
        ("receiver cannot call services", (1.0, 0.01, 10_000.0),
         "extensional"),
        ("balanced", (4.0, 0.02, 4.0), None),  # report only
    ]
    rows = [("scenario", "winner")]
    for name, (sc, bc, rc), expected in scenarios:
        winner = cheapest(results, sc, bc, rc)
        rows.append((name, winner))
        if expected is not None:
            assert winner == expected, name
    print_series("E17 cheapest agreement per cost regime", rows)


def test_exchange_time_by_level(benchmark):
    def run():
        return measure()

    results = benchmark(run)
    assert len(results) == 3
