"""E25 — the gateway under closed-loop load.

The paper's peers are long-lived processes exchanging intensional
documents over the wire; E25 measures our gateway doing exactly that.
A cohort of concurrent clients (60 in smoke, 500 in the full run —
genuinely in flight together, one socket each) storms ``POST
/exchange``; afterwards every response is compared byte-for-byte with
the direct library path, and the phase-1 work counters must be
deterministic (the warm-up request pins the compile-cache state before
the storm).  A second, deliberately under-provisioned gateway then
takes a burst that must shed with typed 429/503 errors.

The assertions here are the acceptance criteria; the numbers land in
``BENCH_gateway_load.json`` via the shared trajectory convention.
"""

import pytest

from benchmarks.conftest import write_bench_payload
from repro.gateway.loadgen import run_load


@pytest.fixture(scope="module")
def payload():
    return run_load(smoke=True)


class TestGatewayLoad:
    def test_every_request_accepted(self, payload):
        assert payload["all_accepted"] is True
        assert payload["completed"] == payload["requests"]
        assert payload["main_phase_shed"] == 0

    def test_byte_identical_with_direct_path(self, payload):
        assert payload["byte_identical"] is True
        assert payload["mismatches"] == 0

    def test_latency_quantiles_recorded(self, payload):
        p50 = payload["client_p50_seconds"]
        p95 = payload["client_p95_seconds"]
        p99 = payload["client_p99_seconds"]
        assert 0 < p50 <= p95 <= p99
        assert payload["server_p99_seconds"] > 0

    def test_overload_sheds_typed(self, payload):
        assert payload["shed_any"] is True
        assert payload["shed_typed"] is True
        assert 0 < payload["overload_shed_fraction"] < 1
        assert payload["overload_completed_min"] is True

    def test_work_counters_present(self, payload):
        work = payload["work"]["default"]
        assert any("compile" in key for key in work)
        assert any("game" in key for key in work)

    def test_write_payload(self, payload):
        path = write_bench_payload(payload)
        assert path.endswith("BENCH_gateway_load.json")
