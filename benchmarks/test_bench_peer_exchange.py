"""E14 — Section 7 end to end: the Schema Enforcement module on peers.

Times the full Active XML exchange: the sender's enforcement module
verifies / rewrites / ships a document against the agreed exchange
schema, the wire XML is parsed back, and the receiver re-validates.
Measured along two axes: the materialization policy (how much the
agreement forces the sender to invoke) and the repository size.
"""

import random

import pytest

from benchmarks.conftest import print_series, well_behaved_registry
from repro import AXMLPeer, InstanceGenerator, PeerNetwork, is_instance
from repro.workloads import newspaper


def make_network():
    s1, s2 = newspaper.schema_star(), newspaper.schema_star2()
    alice = AXMLPeer("alice", s1)
    for service in well_behaved_registry().services.values():
        alice.registry.register(service)
    bob = AXMLPeer("bob", s2)
    network = PeerNetwork()
    network.add_peer(alice)
    network.add_peer(bob)
    return network, alice, bob


def test_exchange_intensional_vs_materialized():
    """Agreement (*) ships the document as-is; agreement (**) forces one
    call; fully-extensional agreements force both calls — the wire size
    and call count trade off exactly as the introduction discusses."""
    s1, s2 = newspaper.schema_star(), newspaper.schema_star2()
    rows = [("agreement", "calls", "bytes on wire")]
    for name, schema in (("(*) intensional", s1), ("(**) hybrid", s2)):
        network, alice, _bob = make_network()
        network.agree("alice", "bob", schema)
        alice.repository.store("front", newspaper.document())
        receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        rows.append((name, receipt.calls_materialized, receipt.bytes_on_wire))
    print_series("E14 materialization policies", rows)
    # The hybrid agreement forces exactly the Get_Temp call.
    assert rows[1][1] == 0 and rows[2][1] == 1


def test_exchange_throughput(benchmark):
    network, alice, bob = make_network()
    network.agree("alice", "bob", newspaper.schema_star2())
    alice.repository.store("front", newspaper.document())

    def exchange():
        # Re-store the intensional source each round: the enforcement
        # must re-materialize on every send.
        alice.repository.store("front", newspaper.document())
        return network.send("alice", "bob", "front")

    receipt = benchmark(exchange)
    assert receipt.accepted
    assert is_instance(
        bob.repository.get("front"), newspaper.schema_star2(),
        newspaper.schema_star(),
    )


@pytest.mark.parametrize("documents", [5, 20])
def test_repository_sweep(benchmark, documents):
    """Enforce-and-send a whole repository of generated instances."""
    network, alice, _bob = make_network()
    network.agree("alice", "bob", newspaper.schema_star2())
    generator = InstanceGenerator(
        newspaper.schema_star(), random.Random(99), max_depth=5
    )
    for index in range(documents):
        alice.repository.store("doc-%d" % index, generator.document())

    def send_all():
        accepted = 0
        for name in alice.repository.names():
            if network.send("alice", "bob", name).accepted:
                accepted += 1
        return accepted

    accepted = benchmark(send_all)
    assert accepted == documents
