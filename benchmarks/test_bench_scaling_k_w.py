"""E9 — Section 4: |A_w^k| = O((|s0| + |w|)^k).

Regenerates the growth of the expansion automaton along both axes:

- word width |w| at fixed k (linear growth: each call contributes one
  signature copy per level);
- depth k on a recursive signature (geometric growth: copies of copies).
"""

import pytest

from benchmarks.conftest import print_series
from repro.regex.parser import parse_regex
from repro.rewriting.expansion import build_expansion
from repro.rewriting.lazy import analyze_safe_lazy
from repro.workloads.generators import wide_problem


def test_growth_with_word_width_is_linear():
    rows = [("|w|", "expansion states", "product nodes")]
    states = []
    for width in (2, 4, 8, 16, 32):
        problem = wide_problem(width, safe=True)
        analysis = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, k=1
        )
        assert analysis.exists
        states.append(analysis.stats.expansion_states)
        rows.append(
            (width, analysis.stats.expansion_states,
             analysis.stats.product_nodes)
        )
    print_series("E9 growth with |w| (k=1)", rows)
    # Linear: doubling the width doubles the states (within one state).
    for half, full in zip(states, states[1:]):
        assert full <= 2 * half + 2


def test_growth_with_k_is_geometric_on_recursive_signatures():
    outputs = {"g": parse_regex("a.g.g | a")}
    rows = [("k", "states", "edges")]
    sizes = []
    for k in range(0, 6):
        expansion = build_expansion(("g",), outputs, k=k)
        sizes.append(expansion.n_states)
        rows.append((k,) + expansion.size())
    print_series("E9 growth with k (recursive tau_out)", rows)
    # Geometric: each level at least doubles the copies added.
    growth = [b - a for a, b in zip(sizes, sizes[1:])]
    for earlier, later in zip(growth, growth[1:]):
        assert later >= 2 * earlier


@pytest.mark.parametrize("width", [8, 32])
def test_wide_analysis_time(benchmark, width):
    problem = wide_problem(width, safe=True)
    benchmark(
        lambda: analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, k=1
        )
    )


@pytest.mark.parametrize("k", [2, 4])
def test_deep_expansion_time(benchmark, k):
    outputs = {"g": parse_regex("a.g.g | a")}
    benchmark(lambda: build_expansion(("g",), outputs, k=k))
