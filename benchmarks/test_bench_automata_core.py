"""E23 (implementation ablation) — the bitset automata core.

The dict core plays the marking game node by node: every product node
pays Python dict lookups, per-edge ``concretize_class`` calls, and
set-of-tuples bookkeeping.  The bitset core re-encodes the same game as
mask arithmetic — one Python int per expansion state holds the whole
set of complement states, and the fixpoint moves whole masks per step
(:mod:`repro.rewriting.bitgame`).

This benchmark isolates the **product + game** hot path of E4 (the
Figure 6 safe rewriting) and E22 (the compile-heavy scenario family):
per-core compilation caches are fully warmed first, so the timed sweeps
pay only expansion traversal, product construction, and the fixpoints.
Verdicts must be identical — a speedup at a different answer is a bug,
not a win.

The measured ratio is written to ``BENCH_automata_core.json`` in the
repo root (override the directory with ``REPRO_BENCH_DIR``) — the first
of the per-PR ``BENCH_*.json`` trajectory files EXPERIMENTS.md
describes.  The committed file records the ≥10x result from a quiet
machine; the in-test assertion uses a CI-safe 5x floor.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_series, write_bench_payload
from repro import parse_regex
from repro.automata.core import BITSET, DICT, using_core
from repro.compile import CompilationCache
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe

OUTPUTS = {
    "Get_Temp": parse_regex("temp"),
    "TimeOut": parse_regex("(exhibit | performance)*"),
    "Get_Date": parse_regex("date"),
    "Get_Review": parse_regex("(review.date?)*"),
    "Deep": parse_regex("(exhibit.Deep?){0,4}"),
}

#: (name, word, target, k) — E4's Figure 6 product plus E22's
#: compile-heavy family, scaled along the axes that grow the *game*:
#: longer words (more expansion states), k=2 with self-nesting calls
#: (copies of copies), and bounded repeats (large complement DFAs —
#: products in the tens of thousands of nodes).
SCENARIOS = [
    ("fig6", ("title", "date", "Get_Temp", "TimeOut"),
     parse_regex("title.date.temp.(TimeOut | exhibit*)"), 1),
    ("repeat32", ("title", "date") + ("Get_Temp", "TimeOut") * 12
     + ("Deep",) * 3,
     parse_regex(
         "title.date.(temp.(TimeOut | (exhibit.performance?){0,32}))*"
         ".(exhibit | Deep?)*"
     ), 2),
    ("repeat48", ("title", "date") + ("Get_Temp", "TimeOut", "Get_Review") * 10
     + ("Deep",) * 4,
     parse_regex(
         "title.date.(temp.(TimeOut | (exhibit.performance?){0,48})"
         ".(review.date?)*)*.(exhibit | Deep?)*"
     ), 2),
    ("repeat64", ("title", "date") + ("Get_Temp", "TimeOut", "Get_Review") * 16
     + ("Deep",) * 6,
     parse_regex(
         "title.date.(temp.(TimeOut | (exhibit.performance?){0,64})"
         ".(review.date?)*)*.(exhibit | Deep?)*"
     ), 2),
]

ROUNDS = 2


def sweep(cc):
    """One timed sweep of the E4/E22 hot path: the safe-game solvers."""
    verdicts = []
    for _name, word, target, k in SCENARIOS:
        safe = analyze_safe(word, OUTPUTS, target, k=k, compile_cache=cc)
        lazy = analyze_safe_lazy(word, OUTPUTS, target, k=k, compile_cache=cc)
        verdicts.append((safe.exists, lazy.exists))
    return verdicts


def all_verdicts(cc):
    """Every solver's verdict per scenario — the agreement check."""
    verdicts = []
    for _name, word, target, k in SCENARIOS:
        safe = analyze_safe(word, OUTPUTS, target, k=k, compile_cache=cc)
        lazy = analyze_safe_lazy(word, OUTPUTS, target, k=k, compile_cache=cc)
        possible = analyze_possible(word, OUTPUTS, target, k=k,
                                    compile_cache=cc)
        verdicts.append((safe.exists, lazy.exists, possible.exists))
    return verdicts


def measure(core, repeats=3):
    """Warm a per-core cache, then best-of-``repeats`` timed sweeps."""
    with using_core(core):
        cc = CompilationCache()
        verdicts = all_verdicts(cc)  # warm: compile artifacts, views
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(ROUNDS):
                sweep(cc)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
    return verdicts, best


def test_bitset_core_speedup_and_agreement():
    dict_verdicts, dict_time = measure(DICT)
    bit_verdicts, bit_time = measure(BITSET)

    # Identical verdicts on every scenario, all three solvers, or the
    # speedup is meaningless.
    assert bit_verdicts == dict_verdicts

    speedup = dict_time / bit_time
    rows = [("core", "wall s (best of 3)", "speedup"),
            ("dict", "%.4f" % dict_time, "1.0x"),
            ("bitset", "%.4f" % bit_time, "%.1fx" % speedup)]
    print_series("E23 automata core (warm caches, product+game only)", rows)

    payload = {
        "benchmark": "automata_core",
        "experiment": "E23",
        "hot_path": "safe+lazy product+game (E4/E22 scenarios, warm "
                    "compile caches); verdicts cross-checked on all three "
                    "solvers",
        "scenarios": [name for name, _w, _t, _k in SCENARIOS],
        "rounds_per_sweep": ROUNDS,
        "dict_seconds": round(dict_time, 6),
        "bitset_seconds": round(bit_time, 6),
        "speedup": round(speedup, 2),
        "verdicts_equal": bit_verdicts == dict_verdicts,
    }
    write_bench_payload(payload)

    # Target is >=10x (the committed trajectory file records it); the
    # in-test floor leaves headroom for noisy CI runners.
    assert speedup >= 5.0, "bitset core only %.1fx faster than dict" % speedup
