"""E3 — Figure 5: the complete complement automaton for schema (**).

The paper's complement of title.date.temp.(TimeOut | exhibit*) has 7
states (p0..p6) with accepting states p0, p1, p2 and p6, where p6 is the
catch-all *sink* the lazy variant prunes at.  We regenerate it and check
those structural facts, plus the Figure 7 variant for schema (***).
"""

from benchmarks.conftest import WORD, newspaper_outputs, print_series
from repro.automata.dfa import minimize
from repro.regex.parser import parse_regex
from repro.rewriting.safe import problem_alphabet, target_complement


def build(target_text):
    target = parse_regex(target_text)
    alphabet = problem_alphabet(WORD, newspaper_outputs(), target)
    return target_complement(target, alphabet)


def test_complement_structure_matches_figure_5():
    comp = build("title.date.temp.(TimeOut | exhibit*)")
    # p0..p6: 7 states, exactly as drawn.
    assert comp.n_states == 7
    assert len(comp.accepting) == 4  # p0, p1, p2, p6
    sinks = comp.sink_states() & comp.accepting
    assert len(sinks) == 1  # p6
    assert comp.is_complete()
    print_series(
        "E3 complement of (**) (Figure 5)",
        [("states", comp.n_states), ("accepting", len(comp.accepting)),
         ("sink", len(sinks))],
    )


def test_complement_structure_matches_figure_7():
    comp = build("title.date.temp.exhibit*")
    assert comp.n_states == 6  # p0..p5 with the sink
    assert comp.is_complete()
    sinks = comp.sink_states() & comp.accepting
    assert len(sinks) == 1


def test_membership_spot_checks():
    comp = build("title.date.temp.(TimeOut | exhibit*)")
    assert not comp.accepts(("title", "date", "temp"))
    assert not comp.accepts(("title", "date", "temp", "TimeOut"))
    assert comp.accepts(("title", "date"))
    assert comp.accepts(("title", "date", "temp", "performance"))


def test_build_time(benchmark):
    comp = benchmark(lambda: build("title.date.temp.(TimeOut | exhibit*)"))
    assert comp.n_states == 7


def test_minimization_does_not_shrink_figure_5(benchmark):
    # The paper's hand-drawn automaton is already minimal.
    comp = build("title.date.temp.(TimeOut | exhibit*)")
    minimal = benchmark(lambda: minimize(comp))
    assert minimal.n_states == comp.n_states
