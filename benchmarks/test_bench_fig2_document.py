"""E1 — Figure 2: the newspaper document before/after materialization.

Regenerates the figure's two states (intensional / after Get_Temp) and
the instance-of relations of Section 2, and times document validation
and the XML round-trip on the paper's own example.
"""

from repro import Document, is_instance
from repro.workloads import newspaper


def test_figure_2a_state(benchmark):
    doc = newspaper.document()
    s1 = newspaper.schema_star()
    assert doc.function_count() == 2
    assert benchmark(lambda: is_instance(doc, s1))


def test_figure_2b_state():
    doc = newspaper.materialized_document()
    assert doc.function_count() == 1  # TimeOut remains
    assert is_instance(doc, newspaper.schema_star2())
    assert not is_instance(doc, newspaper.schema_star3())


def test_instance_relations_match_section_2():
    doc = newspaper.document()
    relations = [
        (newspaper.schema_star(), True),
        (newspaper.schema_star2(), False),
        (newspaper.schema_star3(), False),
    ]
    for schema, expected in relations:
        assert is_instance(doc, schema) is expected


def test_xml_roundtrip_throughput(benchmark):
    doc = newspaper.document()

    def roundtrip():
        return Document.from_xml(doc.to_xml())

    assert benchmark(roundtrip) == doc
