"""E22 (implementation ablation) — the shared compilation cache.

Every safety analysis compiles automata before it can play the game:
the k-depth expansion of the word, and the Glushkov → determinize →
minimize → complement pipeline for the target type.  Distinct analyses
over one schema keep recompiling the same artifacts; the shared
compilation cache (:mod:`repro.compile`) hash-conses them by structural
digest so each is built once per process — or once per *machine*, with
the persistent store.

Three temperatures over the same analysis workload:

- **cold** — the ``DISABLED`` null cache: every artifact rebuilt from
  scratch on every analysis (the pre-cache behaviour).
- **warm** — one shared in-memory cache, already populated: analyses
  pay only the game itself.
- **persistent-warm** — a *fresh* in-memory cache per run, warm-started
  from the on-disk store (the cross-process / cross-run case).

The residual warm cost is the lazy game, which is deliberately not
cached (its verdict depends on the invocable partition's runtime
behaviour only through inputs that *are* part of the cache key; caching
verdicts is the engine-level analysis cache's job, measured by E18).
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro import parse_regex
from repro.compile import DISABLED, CompilationCache
from repro.rewriting.lazy import analyze_safe_lazy

OUTPUTS = {
    "Get_Temp": parse_regex("temp"),
    "TimeOut": parse_regex("(exhibit | performance)*"),
    "Get_Date": parse_regex("date"),
    "Get_Review": parse_regex("(review.date?)*"),
}

#: (word, target, k) — the running example plus compile-heavy variants
#: (bounded repeats blow up determinization; extra functions widen the
#: expansion).  All verdicts are safe, so the lazy game exits early and
#: compilation dominates the cold path.
SCENARIOS = [
    (("title", "date", "Get_Temp", "TimeOut"),
     parse_regex("title.date.temp.(TimeOut | exhibit*)"), 2),
    (("title", "date", "Get_Temp", "TimeOut"),
     parse_regex("title.date.temp.(TimeOut | exhibit{0,10})"), 1),
    (("title", "Get_Date", "Get_Temp", "TimeOut", "Get_Review"),
     parse_regex("title.date.temp.(TimeOut | exhibit*).(review.date?)*"), 2),
    (("title", "date", "Get_Temp", "TimeOut"),
     parse_regex(
         "title.(date | Get_Date).temp.(TimeOut | (exhibit.performance?){0,8})"
     ), 1),
]

ROUNDS = 10


def workload(compile_cache):
    """One sweep of safety analyses; returns the verdicts."""
    return [
        analyze_safe_lazy(word, OUTPUTS, target, k,
                          compile_cache=compile_cache).exists
        for word, target, k in SCENARIOS
    ]


def timed(make_cache, repeats=3):
    """Best-of-``repeats`` wall time for ROUNDS sweeps; damps CI noise."""
    best = None
    for _ in range(repeats):
        caches = [make_cache() for _ in range(ROUNDS)]
        started = time.perf_counter()
        for cache in caches:
            workload(cache)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_cold_vs_warm_vs_persistent(tmp_path):
    # Correctness first: the cache must not change a single verdict.
    shared = CompilationCache()
    assert workload(DISABLED) == workload(shared) == workload(shared)

    cold = timed(lambda: DISABLED)

    warm_cache = CompilationCache()
    workload(warm_cache)  # populate
    warm = timed(lambda: warm_cache)

    store = str(tmp_path / "artifacts")
    workload(CompilationCache(persist_dir=store))  # seed the disk store
    persistent = timed(lambda: CompilationCache(persist_dir=store))

    rows = [
        ("temperature", "wall s", "speedup"),
        ("cold (DISABLED)", "%.4f" % cold, "1.0x"),
        ("warm (shared)", "%.4f" % warm, "%.1fx" % (cold / warm)),
        ("persistent-warm", "%.4f" % persistent,
         "%.1fx" % (cold / persistent)),
    ]
    print_series("E22 compilation cache", rows)

    # The tentpole claim: a warm shared cache makes analysis at least
    # 3x faster than compiling cold (measured ~4x; margin for CI noise).
    assert cold / warm >= 3.0
    # A fresh process warm-starting from disk still skips enough
    # compilation to beat cold comfortably, despite unpickling costs.
    assert cold / persistent >= 1.5

    stats = warm_cache.stats()
    assert stats.hits > stats.misses  # sharing actually happened


def test_eviction_bounds_memory_without_breaking_results():
    tiny = CompilationCache(maxsize=4)
    baseline = workload(DISABLED)
    for _ in range(3):
        assert workload(tiny) == baseline
    stats = tiny.stats()
    assert stats.entries <= 4
    assert stats.evictions > 0


@pytest.mark.parametrize("shared", [True, False], ids=["cached", "uncached"])
def test_analysis_sweep_time(benchmark, shared):
    cache = CompilationCache() if shared else DISABLED
    if shared:
        workload(cache)  # measure the steady state, not the first sweep

    result = benchmark(lambda: workload(cache))
    assert result == [True, True, True, True]
