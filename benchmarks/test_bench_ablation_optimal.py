"""E15 (ablation) — greedy keep-first vs. cost-optimal plan selection.

Figure 3's step 23 asks for minimal-cost paths; our default executor uses
the greedy local rule (keep whenever safe).  This ablation quantifies the
gap on a family where greediness hurts:

    w = f.g_1...g_n    tau_out(f)=a, tau_out(g_i)=b_i
    R  = (f.b_1...b_n) | (a.g_1...g_n)

Greedy keeps f and then must invoke all n trailing calls; the optimal
strategy invokes f once.  The gap grows linearly with n.
"""

from benchmarks.conftest import print_series
from repro.doc import call, el
from repro.regex.ast import alt, atom, seq
from repro.rewriting.optimal import execute_safe_optimal, strategy_values
from repro.rewriting.safe import analyze_safe, execute_safe


def family(n):
    word = ("f",) + tuple("g%d" % i for i in range(1, n + 1))
    outputs = {"f": atom("a")}
    for i in range(1, n + 1):
        outputs["g%d" % i] = atom("b%d" % i)
    keep_f = seq(atom("f"), *(atom("b%d" % i) for i in range(1, n + 1)))
    invoke_f = seq(atom("a"), *(atom("g%d" % i) for i in range(1, n + 1)))
    target = alt(keep_f, invoke_f)
    return word, outputs, target


def invoker(fc):
    if fc.name == "f":
        return (el("a"),)
    return (el("b%s" % fc.name[1:]),)


def children(n):
    return (call("f"),) + tuple(call("g%d" % i) for i in range(1, n + 1))


def test_gap_grows_with_n():
    rows = [("n", "greedy calls", "optimal calls", "optimal bound")]
    for n in (1, 2, 4, 8):
        word, outputs, target = family(n)
        analysis = analyze_safe(word, outputs, target, k=1)
        assert analysis.exists
        _out, greedy_log = execute_safe(analysis, children(n), invoker)
        _out, optimal_log = execute_safe_optimal(analysis, children(n), invoker)
        bound = strategy_values(analysis)[analysis.initial]
        rows.append((n, len(greedy_log), len(optimal_log), bound))
        assert len(greedy_log) == n
        assert len(optimal_log) == 1
        assert bound == 1.0
    print_series("E15 greedy vs optimal invocations", rows)


def test_greedy_execution_time(benchmark):
    word, outputs, target = family(6)
    analysis = analyze_safe(word, outputs, target, k=1)
    kids = children(6)
    benchmark(lambda: execute_safe(analysis, kids, invoker))


def test_optimal_execution_time(benchmark):
    word, outputs, target = family(6)
    analysis = analyze_safe(word, outputs, target, k=1)
    kids = children(6)
    benchmark(lambda: execute_safe_optimal(analysis, kids, invoker))


def test_value_computation_time(benchmark):
    word, outputs, target = family(8)
    analysis = analyze_safe(word, outputs, target, k=1)
    values = benchmark(lambda: strategy_values(analysis))
    assert values[analysis.initial] == 1.0
