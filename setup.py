"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Exchanging Intensional XML Data' (SIGMOD 2003): "
        "intensional XML documents, XML Schema_int, and safe/possible "
        "rewriting of embedded Web-service calls (Active XML)."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
