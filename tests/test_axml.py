"""Unit tests for the Active XML layer: repository, enforcement, peers."""

import pytest

from repro import (
    AXMLPeer,
    Document,
    DocumentRepository,
    FunctionSignature,
    PeerNetwork,
    SchemaBuilder,
    SchemaEnforcer,
    Service,
    TriggerPolicy,
    apply_triggers,
    call,
    constant_responder,
    el,
    is_instance,
    parse_regex,
    text,
)
from repro.axml.query import query_path, select
from repro.errors import DocumentError, SchemaError, ServiceFault
from repro.workloads import newspaper


class TestRepository:
    def test_store_get_delete(self, doc):
        repo = DocumentRepository()
        repo.store("front", doc)
        assert repo.get("front") == doc
        assert "front" in repo and len(repo) == 1
        repo.delete("front")
        assert "front" not in repo
        with pytest.raises(DocumentError):
            repo.get("front")
        with pytest.raises(DocumentError):
            repo.delete("front")

    def test_persistence_roundtrip(self, doc, tmp_path):
        repo = DocumentRepository()
        repo.store("front", doc)
        repo.store("other", Document(el("a", "x")))
        written = repo.save_to(str(tmp_path))
        assert len(written) == 2
        loaded = DocumentRepository.load_from(str(tmp_path))
        assert loaded.names() == ["front", "other"]
        assert loaded.get("front") == doc

    def test_stats(self, doc):
        repo = DocumentRepository()
        repo.store("front", doc)
        stats = repo.intensional_stats()
        assert stats == {"documents": 1, "nodes": doc.size(), "calls": 2}


class TestEnforcement:
    def test_step_i_conformant_document_untouched(self, doc, schema_star, registry):
        enforcer = SchemaEnforcer(schema_star, schema_star)
        outcome = enforcer.enforce_document(doc, registry.make_invoker())
        assert outcome.ok and outcome.already_conformant
        assert outcome.document == doc
        assert outcome.calls_made == 0

    def test_step_ii_rewrites(self, doc, schema_star, schema_star2, registry):
        enforcer = SchemaEnforcer(schema_star2, schema_star)
        outcome = enforcer.enforce_document(doc, registry.make_invoker())
        assert outcome.ok and not outcome.already_conformant
        assert outcome.calls_made == 1
        assert is_instance(outcome.document, schema_star2, schema_star)

    def test_step_iii_reports_error(self, doc, schema_star, schema_star3, registry):
        enforcer = SchemaEnforcer(schema_star3, schema_star)  # safe mode
        outcome = enforcer.enforce_document(doc, registry.make_invoker())
        assert not outcome.ok
        assert "safe" in outcome.error

    def test_forest_enforcement(self, schema_star, registry):
        enforcer = SchemaEnforcer(schema_star, schema_star)
        forest = (call("Get_Temp", el("city", "Paris")),)
        outcome = enforcer.enforce_forest(
            forest, parse_regex("temp"), registry.make_invoker()
        )
        assert outcome.ok
        assert [n.label for n in outcome.forest] == ["temp"]

    def test_forest_already_conformant(self, schema_star, registry):
        enforcer = SchemaEnforcer(schema_star, schema_star)
        forest = (el("temp", "20"),)
        outcome = enforcer.enforce_forest(
            forest, parse_regex("temp"), registry.make_invoker()
        )
        assert outcome.ok and outcome.already_conformant


class TestTriggers:
    def test_eager_materialization(self, doc, registry):
        enriched, log = apply_triggers(
            doc, registry.make_invoker(), TriggerPolicy(max_depth=1)
        )
        assert enriched.is_extensional()
        assert sorted(log.invoked) == ["Get_Temp", "TimeOut"]

    def test_filtered_policy(self, doc, registry):
        policy = TriggerPolicy(max_depth=1, only=lambda n: n == "Get_Temp")
        enriched, log = apply_triggers(doc, registry.make_invoker(), policy)
        assert log.invoked == ["Get_Temp"]
        assert enriched.function_count() == 1  # TimeOut untouched

    def test_depth_chases_returned_calls(self, registry):
        document = Document(el("newspaper", call("TimeOut", text("k"))))

        # TimeOut's exhibit contains no calls with the default registry,
        # so craft one that returns an intensional exhibit.
        from repro import ServiceRegistry

        svc = Service("http://t2", "urn:t2")
        svc.add_operation(
            "TimeOut",
            FunctionSignature(
                parse_regex("data"), parse_regex("(exhibit | performance)*")
            ),
            constant_responder(
                (el("exhibit", el("title", "T"),
                    call("Get_Date", el("title", "T"))),)
            ),
        )
        reg = ServiceRegistry()
        reg.register(svc)
        dates = Service("http://dates", "urn:d")
        dates.add_operation(
            "Get_Date",
            FunctionSignature(parse_regex("title"), parse_regex("date")),
            constant_responder((el("date", "today"),)),
        )
        reg.register(dates)

        shallow, _ = apply_triggers(
            document, reg.make_invoker(), TriggerPolicy(max_depth=1)
        )
        assert shallow.function_count() == 1  # Get_Date remains
        deep, _ = apply_triggers(
            document, reg.make_invoker(), TriggerPolicy(max_depth=2)
        )
        assert deep.is_extensional()


class TestQueries:
    def test_select_paths(self, doc):
        exhibits = query_path(
            _repo_with(doc), "front", "newspaper/title"
        )
        assert len(exhibits) == 1

    def test_wildcard_step(self, doc):
        results = query_path(_repo_with(doc), "front", "newspaper/*")
        assert len(results) == 2  # title and date elements

    def test_function_nodes_matchable_by_name(self, doc):
        results = query_path(_repo_with(doc), "front", "newspaper/Get_Temp")
        assert len(results) == 1

    def test_empty_path_rejected(self, doc):
        with pytest.raises(DocumentError):
            query_path(_repo_with(doc), "front", "")

    def test_root_mismatch_returns_nothing(self, doc):
        assert query_path(_repo_with(doc), "front", "magazine/title") == ()


def _repo_with(document):
    repo = DocumentRepository()
    repo.store("front", document)
    return repo


class TestPeersAndNetwork:
    def build_network(self, registry, schema_star, schema_star2):
        alice = AXMLPeer("alice", schema_star)
        for service in registry.services.values():
            alice.registry.register(service)
        bob = AXMLPeer("bob", schema_star2)
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        return network, alice, bob

    def test_exchange_materializes_per_agreement(
        self, doc, registry, schema_star, schema_star2
    ):
        network, alice, bob = self.build_network(
            registry, schema_star, schema_star2
        )
        alice.repository.store("front", doc)
        network.agree("alice", "bob", schema_star2)
        receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        assert receipt.calls_materialized == 1
        assert receipt.bytes_on_wire > 0
        received = bob.repository.get("front")
        assert is_instance(received, schema_star2, schema_star)

    def test_exchange_fails_cleanly_when_unsafe(
        self, doc, registry, schema_star, schema_star3
    ):
        network, alice, _bob = self.build_network(
            registry, schema_star, schema_star3
        )
        alice.repository.store("front", doc)
        network.agree("alice", "bob", schema_star3)
        receipt = network.send("alice", "bob", "front")
        assert not receipt.accepted
        assert "safe" in receipt.error

    def test_missing_agreement_raises(self, doc, registry, schema_star, schema_star2):
        network, alice, _bob = self.build_network(
            registry, schema_star, schema_star2
        )
        alice.repository.store("front", doc)
        with pytest.raises(SchemaError):
            network.send("alice", "bob", "front")

    def test_unknown_peer_raises(self, registry, schema_star, schema_star2):
        network, _a, _b = self.build_network(registry, schema_star, schema_star2)
        with pytest.raises(SchemaError):
            network.agree("alice", "carol", schema_star2)

    def test_send_to_unregistered_receiver_is_typed(
        self, doc, registry, schema_star, schema_star2
    ):
        from repro.errors import UnknownPeerError

        network, alice, _bob = self.build_network(
            registry, schema_star, schema_star2
        )
        alice.repository.store("front", doc)
        with pytest.raises(UnknownPeerError) as info:
            network.send("alice", "carol", "front")
        # The error is catchable as a SchemaError, names the missing
        # peer, and lists who *is* registered.
        assert isinstance(info.value, SchemaError)
        assert info.value.name == "carol"
        assert info.value.known == ("alice", "bob")
        assert "alice" in str(info.value)

    def test_provided_service_enforces_io(self, registry, schema_star):
        peer = AXMLPeer("provider", schema_star)
        for service in registry.services.values():
            peer.registry.register(service)
        # A service returning a temp element; callers may send an
        # intensional parameter that the peer must materialize.
        signature = FunctionSignature(parse_regex("temp"), parse_regex("temp"))
        peer.provide("Echo_Temp", signature, lambda params: params)

        # Parameter arrives intensional: a Get_Temp call instead of temp.
        out = peer.service.invoke(
            "Echo_Temp", (call("Get_Temp", el("city", "Paris")),)
        )
        assert [n.label for n in out] == ["temp"]

    def test_provided_service_rejects_impossible_params(self, registry, schema_star):
        peer = AXMLPeer("provider", schema_star)
        signature = FunctionSignature(parse_regex("temp"), parse_regex("temp"))
        peer.provide("Echo_Temp", signature, lambda params: params)
        with pytest.raises(ServiceFault):
            peer.service.invoke("Echo_Temp", (el("date", "x"),))

    def test_query_service_over_repository(self, doc, schema_star):
        peer = AXMLPeer("paper", schema_star)
        peer.repository.store("front", doc)
        signature = FunctionSignature(
            parse_regex("data?"), parse_regex("title")
        )
        peer.provide_query("Get_Titles", "front", "newspaper/title", signature)
        out = peer.service.invoke("Get_Titles", ())
        assert [n.label for n in out] == ["title"]

    def test_query_service_sees_repository_updates(self, doc, schema_star):
        peer = AXMLPeer("paper", schema_star)
        peer.repository.store("front", doc)
        signature = FunctionSignature(
            parse_regex("data?"), parse_regex("title*")
        )
        peer.provide_query("Get_Titles", "front", "newspaper/title", signature)
        before = peer.service.invoke("Get_Titles", ())
        peer.repository.store(
            "front",
            Document(el("newspaper", el("title", "A"), el("title", "B"))),
        )
        after = peer.service.invoke("Get_Titles", ())
        assert len(after) == 2 and len(before) == 1
