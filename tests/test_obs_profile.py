"""Unit tests for span-profile aggregation (repro.obs.profile)."""

import json

import pytest

from repro import (
    FunctionSignature,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    parse_regex,
)
from repro.compile import CompilationCache
from repro.compile.context import compiling
from repro.obs import Tracer, observing
from repro.obs.profile import (
    PHASES,
    Profile,
    phase_of,
    profile_spans,
    profile_tracer,
)
from repro.rewriting.engine import RewriteEngine
from repro.services.resilience import SimulatedClock
from repro.workloads import newspaper


def span(span_id, parent_id, name, start, end):
    return {
        "span_id": span_id, "parent_id": parent_id, "name": name,
        "start": start, "end": end, "duration": end - start,
        "attributes": {}, "events": [],
    }


class TestPhaseMapping:
    def test_pipeline_stages(self):
        assert phase_of("product") == "product"
        assert phase_of("game") == "game"
        assert phase_of("subset") == "determinize"
        assert phase_of("invoke") == "materialize"
        assert phase_of("compile.nfa") == "compile"
        assert phase_of("compile.expansion") == "compile"
        assert phase_of("compile.dfa") == "determinize"
        assert phase_of("compile.comp") == "determinize"
        assert phase_of("compile.bitdfa") == "determinize"
        assert phase_of("compile.bitcompview") == "determinize"
        assert phase_of("exec.wave") == "materialize"
        assert phase_of("transfer.validate") == "materialize"
        assert phase_of("enforce") == "other"

    def test_every_phase_is_listed(self):
        for name in ("compile.nfa", "compile.dfa", "product", "game",
                     "invoke", "document"):
            assert phase_of(name) in PHASES


class TestProfileSpans:
    def test_tree_merges_by_name_path(self):
        spans = [
            span(1, None, "enforce", 0.0, 10.0),
            span(2, 1, "analysis", 1.0, 4.0),
            span(3, 2, "game", 2.0, 3.0),
            span(4, 1, "analysis", 5.0, 9.0),
            span(5, 4, "game", 6.0, 8.0),
        ]
        profile = profile_spans(spans)
        (root,) = profile.roots
        assert root.name == "enforce" and root.count == 1
        (analysis,) = root.children.values()
        assert analysis.count == 2
        assert analysis.inclusive == pytest.approx(7.0)
        (game,) = analysis.children.values()
        assert game.count == 2
        assert game.inclusive == pytest.approx(3.0)

    def test_exclusive_times_telescope_exactly(self):
        spans = [
            span(1, None, "enforce", 0.0, 10.0),
            span(2, 1, "product", 1.0, 5.0),
            span(3, 2, "compile.dfa", 2.0, 4.0),
            span(4, 1, "game", 6.0, 9.0),
        ]
        profile = profile_spans(spans)
        assert profile.total == pytest.approx(10.0)
        assert profile.exclusive_sum() == pytest.approx(profile.total)
        phases = profile.phases()
        assert phases["determinize"] == pytest.approx(2.0)
        assert phases["product"] == pytest.approx(2.0)
        assert phases["game"] == pytest.approx(3.0)
        assert phases["other"] == pytest.approx(3.0)

    def test_orphans_promote_to_roots(self):
        spans = [span(7, 99, "analysis", 0.0, 2.0)]  # parent rotated out
        profile = profile_spans(spans)
        assert [root.name for root in profile.roots] == ["analysis"]
        assert profile.total == pytest.approx(2.0)

    def test_unfinished_spans_are_skipped_and_counted(self):
        unfinished = span(2, 1, "game", 1.0, 2.0)
        unfinished["duration"] = None
        profile = profile_spans([span(1, None, "enforce", 0.0, 3.0),
                                 unfinished])
        assert profile.unfinished == 1
        assert "unfinished" in profile.render()

    def test_exclusive_clamps_against_clock_skew(self):
        # A child that appears longer than its parent (cross-thread
        # timestamps) must not drive exclusive time negative.
        spans = [
            span(1, None, "enforce", 0.0, 1.0),
            span(2, 1, "invoke", 0.0, 5.0),
        ]
        profile = profile_spans(spans)
        (root,) = profile.roots
        assert root.exclusive == 0.0

    def test_render_and_json_exports(self):
        profile = profile_spans([
            span(1, None, "enforce", 0.0, 4.0),
            span(2, 1, "game", 1.0, 3.0),
        ])
        text = profile.render()
        assert "enforce" in text and "[game]" in text
        assert "phase attribution" in text
        payload = json.loads(profile.to_json())
        assert payload["total_seconds"] == pytest.approx(4.0)
        assert payload["roots"][0]["name"] == "enforce"


def traced_rewrite(workers):
    """One engine rewrite traced under SimulatedClock, profiled.

    A fresh compilation cache per run keeps the span tree a pure
    function of the inputs (a warm ambient cache would elide the
    ``compile.*`` spans of later runs).
    """
    registry = ServiceRegistry()
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    registry.register(forecast)
    engine = RewriteEngine(
        newspaper.wide_schema_star2(8), newspaper.wide_schema_star(8),
        k=1, workers=workers,
    )
    tracer = Tracer(clock=SimulatedClock(), capacity=100_000)
    with compiling(CompilationCache()), observing(tracer):
        result = engine.rewrite(
            newspaper.wide_document(8), registry.make_invoker()
        )
    assert result.document.is_extensional()
    return profile_tracer(tracer)


class TestProfileDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_profile_is_byte_identical_run_to_run(self, workers):
        first = traced_rewrite(workers).to_json()
        second = traced_rewrite(workers).to_json()
        assert first == second

    def test_profile_covers_the_pipeline(self):
        profile = traced_rewrite(1)
        names = set()

        def walk(node):
            names.add(node.name)
            for child in node.children.values():
                walk(child)

        for root in profile.roots:
            walk(root)
        # RewriteEngine's root span is "document" (SchemaEnforcer adds
        # the outer "enforce" when driven through the exchange path).
        for expected in ("document", "analysis", "product", "game", "invoke"):
            assert expected in names

    def test_exclusive_sum_matches_total_within_one_percent(self):
        # Under the real clock (nonzero durations) the telescoping
        # invariant is the acceptance bound of the `repro profile` CLI.
        registry = ServiceRegistry()
        forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
        forecast.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            constant_responder((el("temp", "15"),)),
        )
        registry.register(forecast)
        engine = RewriteEngine(
            newspaper.wide_schema_star2(6), newspaper.wide_schema_star(6),
            k=1, workers=1,
        )
        tracer = Tracer(capacity=100_000)
        with compiling(CompilationCache()), observing(tracer):
            result = engine.rewrite(
                newspaper.wide_document(6), registry.make_invoker()
            )
            assert result.document.is_extensional()
        profile = profile_tracer(tracer)
        assert profile.total > 0.0
        assert profile.exclusive_sum() == pytest.approx(
            profile.total, rel=0.01
        )
