"""Property tests: parallel materialization ≡ sequential materialization.

The whole point of the scheduler's plan→prefetch→replay design is that
``rewrite(workers=N)`` is *observationally identical* to
``rewrite(workers=1)`` — same document bytes, same invocation log, same
analysis-cache accounting — for any worker count, with or without
dedup, under retries and injected faults.  These tests pin that
contract on seeded workloads.
"""

import random
import threading

import pytest

from repro import (
    FunctionSignature,
    ResiliencePolicy,
    RewriteEngine,
    Service,
    ServiceRegistry,
    call,
    el,
    flaky_responder,
    parse_regex,
    text,
)
from repro.doc.builder import el as el_
from repro.doc.document import Document
from repro.workloads import newspaper

WORKER_COUNTS = (1, 2, 8)


def value_responder(params):
    """A pure function of the parameters — same city, same temperature —
    so results are independent of invocation order and collapsing."""
    city = params[0].children[0].value if params else "?"
    return (el("temp", str(sum(map(ord, city)) % 40)),)


def forecast_registry(flaky_every=0):
    registry = ServiceRegistry()
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    responder = value_responder
    if flaky_every:
        responder = flaky_responder(responder, fail_every=flaky_every)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        responder,
    )
    registry.register(forecast)
    return registry


def run(width, workers, dedup=True, flaky_every=0, resilience=None):
    registry = forecast_registry(flaky_every)
    invoker = registry.make_invoker(resilience=resilience)
    engine = RewriteEngine(
        newspaper.wide_schema_star2(width),
        newspaper.wide_schema_star(width),
        k=1,
        workers=workers,
        dedup=dedup,
    )
    result = engine.rewrite(newspaper.wide_document(width), invoker)
    return result, invoker


class TestDocumentEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_documents(self, workers):
        baseline, _ = run(width=20, workers=1)
        result, _ = run(width=20, workers=workers)
        assert result.document.to_xml() == baseline.document.to_xml()

    @pytest.mark.parametrize("dedup", (True, False))
    def test_dedup_does_not_change_the_document(self, dedup):
        baseline, _ = run(width=24, workers=1)
        result, _ = run(width=24, workers=8, dedup=dedup)
        assert result.document.to_xml() == baseline.document.to_xml()

    def test_invocation_log_and_accounting_match(self):
        baseline, _ = run(width=20, workers=1)
        result, _ = run(width=20, workers=8)
        assert len(result.log) == len(baseline.log)
        assert result.degraded_functions == baseline.degraded_functions
        # The planning clone keeps its own counters, so the real
        # engine's cache accounting is untouched by prefetching.
        assert (result.cache_hits, result.cache_misses) == (
            baseline.cache_hits, baseline.cache_misses,
        )

    def test_parallel_runs_are_reproducible(self):
        first, _ = run(width=24, workers=8)
        second, _ = run(width=24, workers=8)
        assert first.document.to_xml() == second.document.to_xml()

    def test_seeded_random_workloads(self):
        """Random widths/duplication patterns, every worker count."""
        for seed in range(5):
            rng = random.Random(seed)
            width = rng.randrange(3, 30)
            baseline, _ = run(width=width, workers=1)
            for workers in (2, 8):
                result, _ = run(width=width, workers=workers)
                assert (
                    result.document.to_xml() == baseline.document.to_xml()
                ), "divergence at seed=%d width=%d workers=%d" % (
                    seed, width, workers,
                )


class TestFaultEquivalence:
    def test_flaky_services_with_retries_converge(self):
        # 12 unique calls (no duplicate fingerprints), every 3rd
        # physical attempt faults: retries absorb the faults and the
        # final document is identical at any worker count.
        policy = ResiliencePolicy(jitter_seed=7)
        baseline, seq_invoker = run(
            width=12, workers=1, flaky_every=3, resilience=policy
        )
        result, par_invoker = run(
            width=12, workers=8, flaky_every=3, resilience=policy
        )
        assert result.document.to_xml() == baseline.document.to_xml()
        # unique fingerprints → physical-call parity → identical
        # fault accounting (which attempts fault is a function of the
        # shared counter's total, not of arrival order)
        assert par_invoker.report.calls == seq_invoker.report.calls
        assert par_invoker.report.faults == seq_invoker.report.faults
        assert par_invoker.report.retries == seq_invoker.report.retries

    def test_prefetched_fault_is_not_an_extra_attempt(self):
        # A service that fails on its 2nd physical call: sequential
        # enforcement of two documents sees ok, then error.  The
        # prefetching engine must see exactly the same, i.e. a fault
        # consumed during prefetch replays instead of being retried.
        def outcome(workers):
            registry = forecast_registry(flaky_every=2)
            invoker = registry.make_invoker()
            engine = lambda: RewriteEngine(  # noqa: E731 - fresh per pass
                newspaper.schema_star2(), newspaper.schema_star(), k=1,
                workers=workers,
            )
            first = engine().rewrite(newspaper.document(), invoker)
            try:
                engine().rewrite(newspaper.document(), invoker)
            except Exception as exc:
                return first.document.to_xml(), type(exc).__name__
            return first.document.to_xml(), None

        assert outcome(workers=8) == outcome(workers=1)


class TestNestedEquivalence:
    def schema(self):
        from repro.schema.model import SchemaBuilder

        return (
            SchemaBuilder()
            .element("newspaper", "title.date.temp.temp")
            .element("title", "data")
            .element("date", "data")
            .element("temp", "data")
            .element("city", "data")
            .function("Get_Temp", "city", "temp")
            .function("Get_City", "data", "city")
            .root("newspaper")
            .build(strict=False)
        )

    def document(self):
        def temp(zipcode):
            return call(
                "Get_Temp",
                call(
                    "Get_City",
                    text(zipcode),
                    endpoint="http://geo.example/soap",
                    namespace="urn:geo",
                ),
                endpoint=newspaper.FORECAST_ENDPOINT,
                namespace=newspaper.FORECAST_NS,
            )

        return Document(
            el_(
                "newspaper",
                el_("title", "The Sun"),
                el_("date", "04/10/2002"),
                temp("75000"),
                temp("00100"),
            )
        )

    def registry(self):
        registry = forecast_registry()
        geo = Service("http://geo.example/soap", "urn:geo")

        def city_of(params):
            zipcode = params[0].value
            return (el("city", "Paris" if zipcode == "75000" else "Rome"),)

        geo.add_operation(
            "Get_City",
            FunctionSignature(parse_regex("data"), parse_regex("city")),
            city_of,
        )
        registry.register(geo)
        return registry

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_dependent_calls_stay_ordered(self, workers):
        schema = self.schema()
        engine = RewriteEngine(schema, schema, k=1, workers=workers)
        result = engine.rewrite(self.document(), self.registry().make_invoker())
        baseline = RewriteEngine(schema, schema, k=1).rewrite(
            self.document(), self.registry().make_invoker()
        )
        assert result.document.to_xml() == baseline.document.to_xml()
        if workers > 1:
            assert result.exec_report.waves == 2


class TestPeerExchangeEquivalence:
    def network(self, parallelism):
        from repro.axml.network import PeerNetwork
        from repro.axml.peer import AXMLPeer

        width = 16
        alice = AXMLPeer(
            "alice", newspaper.wide_schema_star(width), parallelism=parallelism
        )
        forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
        forecast.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            value_responder,
        )
        alice.registry.register(forecast)
        bob = AXMLPeer("bob", newspaper.wide_schema_star2(width))
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", newspaper.wide_schema_star2(width))
        alice.repository.store("front", newspaper.wide_document(width))
        return network, bob

    def test_transfer_is_identical_and_reports_savings(self):
        seq_net, seq_bob = self.network(parallelism=1)
        par_net, par_bob = self.network(parallelism=8)
        seq_receipt = seq_net.send("alice", "bob", "front")
        par_receipt = par_net.send("alice", "bob", "front")
        assert seq_receipt.accepted and par_receipt.accepted
        assert (
            par_bob.repository.get("front").to_xml()
            == seq_bob.repository.get("front").to_xml()
        )
        assert par_receipt.bytes_on_wire == seq_receipt.bytes_on_wire
        # width 16 over 12 unique cities → 4 duplicated occurrences
        assert par_receipt.saved_round_trips == 4
        assert seq_receipt.saved_round_trips == 0

    def test_per_send_parallelism_override(self):
        network, _bob = self.network(parallelism=None)
        receipt = network.send("alice", "bob", "front", parallelism=8)
        assert receipt.accepted
        assert receipt.exec_report is not None
        assert receipt.exec_report.max_workers == 8
