"""Unit tests for right-to-left rewritings (footnote 4)."""

import pytest

from repro.doc import call, el
from repro.doc.nodes import symbol_of
from repro.regex.ops import matches, reverse
from repro.regex.parser import parse_regex
from repro.rewriting.direction import (
    LTR,
    RTL,
    analyze_safe_directed,
    execute_safe_directed,
    safe_in_some_direction,
)


def rtl_only_problem():
    """w = f.g, tau_out(f)=c, tau_out(g)=a|b, R = (c.a)|(f.b).

    Deciding f requires knowing g's output: unsafe LTR, safe RTL.
    """
    word = ("f", "g")
    outputs = {"f": parse_regex("c"), "g": parse_regex("a | b")}
    target = parse_regex("(c.a) | (f.b)")
    return word, outputs, target


class TestRegexReverse:
    @pytest.mark.parametrize(
        "text,word",
        [
            ("a.b.c", ["c", "b", "a"]),
            ("(a.b)*", ["b", "a", "b", "a"]),
            ("a{2,3}.b", ["b", "a", "a"]),
            ("(a | b.c).d", ["d", "c", "b"]),
        ],
    )
    def test_reversed_language(self, text, word):
        assert matches(reverse(parse_regex(text)), word)

    def test_double_reverse_is_identity_semantically(self):
        expr = parse_regex("a.(b | c*)+.d?")
        twice = reverse(reverse(expr))
        for word in ([], ["a"], ["a", "b"], ["a", "c", "c", "d"]):
            assert matches(twice, word) == matches(expr, word)


class TestDirectionMatters:
    def test_ltr_unsafe_rtl_safe(self):
        word, outputs, target = rtl_only_problem()
        assert not analyze_safe_directed(
            word, outputs, target, direction=LTR
        ).exists
        assert analyze_safe_directed(
            word, outputs, target, direction=RTL
        ).exists

    def test_safe_in_some_direction_reports_rtl(self):
        word, outputs, target = rtl_only_problem()
        assert safe_in_some_direction(word, outputs, target) == RTL

    def test_mirror_problem_prefers_ltr(self):
        # The mirror image: deciding g requires knowing f's output — LTR.
        word = ("f", "g")
        outputs = {"f": parse_regex("a | b"), "g": parse_regex("c")}
        target = parse_regex("(a.c) | (b.g)")
        assert safe_in_some_direction(word, outputs, target) == LTR

    def test_both_directions_agree_on_plain_words(self):
        for target_text, expected in (("a.b", True), ("b.a", False)):
            target = parse_regex(target_text)
            for direction in (LTR, RTL):
                analysis = analyze_safe_directed(
                    ("a", "b"), {}, target, direction=direction
                )
                assert analysis.exists is expected, (target_text, direction)

    def test_unsafe_in_both_directions(self):
        word = ("f",)
        outputs = {"f": parse_regex("a | b")}
        target = parse_regex("a")
        assert safe_in_some_direction(word, outputs, target) is None


class TestRtlExecution:
    def test_rtl_execution_uses_late_knowledge(self):
        word, outputs, target = rtl_only_problem()
        analysis = analyze_safe_directed(word, outputs, target, direction=RTL)

        for g_answer, expect_f_invoked in (("a", True), ("b", False)):
            def invoker(fc, g_answer=g_answer):
                if fc.name == "g":
                    return (el(g_answer),)
                return (el("c"),)

            new_children, log = execute_safe_directed(
                analysis,
                (call("f"), call("g")),
                invoker,
                direction=RTL,
            )
            result = [symbol_of(n) for n in new_children]
            assert matches(target, result), (g_answer, result)
            assert ("f" in log.invoked) is expect_f_invoked

    def test_rtl_preserves_document_order(self):
        # Three plain elements pass through untouched, in order.
        analysis = analyze_safe_directed(
            ("a", "b", "c"), {}, parse_regex("a.b.c"), direction=RTL
        )
        children = (el("a"), el("b"), el("c"))
        new_children, _log = execute_safe_directed(
            analysis, children, lambda fc: (), direction=RTL
        )
        assert new_children == children

    def test_rtl_output_forest_order_preserved(self):
        # An invoked call returning a sequence keeps its internal order.
        analysis = analyze_safe_directed(
            ("f",), {"f": parse_regex("a.b")}, parse_regex("a.b"),
            direction=RTL,
        )
        new_children, _log = execute_safe_directed(
            analysis, (call("f"),), lambda fc: (el("a"), el("b")),
            direction=RTL,
        )
        assert [n.label for n in new_children] == ["a", "b"]

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            analyze_safe_directed(("a",), {}, parse_regex("a"),
                                  direction="up")
