"""Time-varying services: Definition 4's non-functional semantics.

"Stressing somewhat the semantics, this can be interpreted as if the
value returned by the function changes over time.  This captures the
behavior of real life Web services, like a temperature or stock exchange
service, where two consecutive calls may return a different result."
"""

from repro import (
    Document,
    FunctionSignature,
    Service,
    ServiceRegistry,
    TriggerPolicy,
    apply_triggers,
    el,
    parse_regex,
    scripted_responder,
)
from repro.doc.builder import call


def ticker_registry():
    registry = ServiceRegistry()
    svc = Service("http://ticker", "urn:ticker")
    svc.add_operation(
        "Get_Quote",
        FunctionSignature(parse_regex("data"), parse_regex("quote")),
        scripted_responder([
            (el("quote", "100"),),
            (el("quote", "105"),),
            (el("quote", "99"),),
        ]),
    )
    registry.register(svc)
    return registry


class TestTimeVaryingAnswers:
    def test_consecutive_calls_differ(self):
        registry = ticker_registry()
        quote_call = call("Get_Quote", "ACME")
        first = registry.invoke(quote_call)
        second = registry.invoke(quote_call)
        assert first != second
        assert first[0].children[0].value == "100"
        assert second[0].children[0].value == "105"

    def test_two_occurrences_materialize_differently(self):
        """Definition 4: 'we may replace two occurrences of the same
        function by two different output instances' — the same call node
        appearing twice in a document yields two different quotes."""
        registry = ticker_registry()
        document = Document(
            el("portfolio", call("Get_Quote", "ACME"),
               call("Get_Quote", "ACME"))
        )
        enriched, log = apply_triggers(
            document, registry.make_invoker(), TriggerPolicy(max_depth=1)
        )
        values = [child.children[0].value for child in enriched.root.children]
        assert values == ["100", "105"]
        assert len(log) == 2

    def test_repeated_enrichment_refreshes(self):
        registry = ticker_registry()
        document = Document(el("portfolio", call("Get_Quote", "ACME")))
        first, _ = apply_triggers(
            document, registry.make_invoker(), TriggerPolicy()
        )
        second, _ = apply_triggers(
            document, registry.make_invoker(), TriggerPolicy()
        )
        assert first != second  # the stored document vs a fresh pull
