"""Unit tests for <all> group support in XML Schema_int."""

import pytest

from repro.errors import XMLSchemaIntError
from repro.regex.ops import matches
from repro.xschema import compile_xschema, parse_xschema


def build(all_body, extra=""):
    return compile_xschema(parse_xschema("""
    <schema xmlns="http://www.w3.org/2001/XMLSchema">
      <element name="a" type="string"/>
      <element name="b" type="string"/>
      <element name="c" type="string"/>
      %s
      <element name="box"><complexType>
        <all>%s</all>
      </complexType></element>
    </schema>""" % (extra, all_body)))


class TestAllGroups:
    def test_every_permutation_accepted(self):
        schema = build('<element ref="a"/><element ref="b"/><element ref="c"/>')
        expr = schema.label_types["box"]
        import itertools

        for order in itertools.permutations("abc"):
            assert matches(expr, list(order)), order

    def test_subsets_rejected(self):
        schema = build('<element ref="a"/><element ref="b"/>')
        expr = schema.label_types["box"]
        assert not matches(expr, ["a"])
        assert not matches(expr, ["a", "a"])
        assert not matches(expr, ["a", "b", "a"])

    def test_optional_member(self):
        schema = build(
            '<element ref="a"/><element ref="b" minOccurs="0"/>'
        )
        expr = schema.label_types["box"]
        assert matches(expr, ["a"])
        assert matches(expr, ["a", "b"])
        assert matches(expr, ["b", "a"])
        assert not matches(expr, ["b"])

    def test_functions_allowed_in_all(self):
        schema = build(
            '<element ref="a"/><function ref="F"/>',
            extra="""<function id="F">
                       <params><param><data/></param></params>
                       <return><element ref="b"/></return>
                     </function>""",
        )
        expr = schema.label_types["box"]
        assert matches(expr, ["a", "F"])
        assert matches(expr, ["F", "a"])

    def test_size_cap(self):
        body = "".join('<element ref="a"/>' for _ in range(6))
        with pytest.raises(XMLSchemaIntError):
            build(body)

    def test_max_occurs_above_one_rejected(self):
        with pytest.raises(XMLSchemaIntError):
            build('<element ref="a" maxOccurs="2"/>')
        with pytest.raises(XMLSchemaIntError):
            build('<element ref="a" maxOccurs="unbounded"/>')

    def test_all_group_with_occurs(self):
        schema = compile_xschema(parse_xschema("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a" type="string"/>
          <element name="b" type="string"/>
          <element name="box"><complexType>
            <all minOccurs="0"><element ref="a"/><element ref="b"/></all>
          </complexType></element>
        </schema>"""))
        expr = schema.label_types["box"]
        assert matches(expr, [])
        assert matches(expr, ["b", "a"])

    def test_rewriting_through_all_groups(self):
        """The whole pipeline works on all-group targets (they compile to
        plain — if nondeterministic — regexes)."""
        from repro.regex.parser import parse_regex
        from repro.rewriting.lazy import analyze_safe_lazy

        schema = build('<element ref="a"/><element ref="b"/>')
        target = schema.label_types["box"]
        analysis = analyze_safe_lazy(
            ("f", "b"), {"f": parse_regex("a")}, target, k=1
        )
        assert analysis.exists  # invoke f -> a.b, a permutation member
        analysis2 = analyze_safe_lazy(
            ("b", "f"), {"f": parse_regex("a")}, target, k=1
        )
        assert analysis2.exists  # b.a is also a member
