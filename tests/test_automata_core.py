"""Unit tests for the Glushkov construction and NFA/DFA machinery."""

import pytest

from repro.automata.dfa import complement, complete, determinize, minimize
from repro.automata.glushkov import expand_repeats, glushkov_nfa
from repro.automata.ops import (
    intersects,
    is_empty,
    language_equal,
    language_subset,
    regex_to_dfa,
    shortest_words,
)
from repro.automata.symbols import OTHER, Alphabet
from repro.regex.ast import Repeat
from repro.regex.ops import matches
from repro.regex.parser import parse_regex


def words_upto(alphabet, max_len):
    frontier = [()]
    for _ in range(max_len + 1):
        new = []
        for word in frontier:
            yield word
            for symbol in alphabet:
                new.append(word + (symbol,))
        frontier = new


class TestGlushkov:
    @pytest.mark.parametrize(
        "text",
        [
            "a", "a.b", "(a | b)*", "a*.b?", "a{2,3}",
            "title.date.(Get_Temp | temp).(TimeOut | exhibit*)",
            "(a.b | c)*.a?",
        ],
    )
    def test_agrees_with_reference_matcher(self, text):
        expr = parse_regex(text)
        nfa = glushkov_nfa(expr)
        for word in words_upto(("a", "b", "c"), 4):
            assert nfa.accepts(word) == matches(expr, word), word

    def test_state_count_is_positions_plus_one(self):
        nfa = glushkov_nfa(parse_regex("a.b.(c | d)"))
        assert nfa.n_states == 5  # 4 positions + initial

    def test_no_epsilon_transitions(self):
        nfa = glushkov_nfa(parse_regex("(a | b)*.c?"))
        assert not nfa.epsilon

    def test_expand_repeats_removes_repeat_nodes(self):
        expr = parse_regex("a{2,4}.b+")
        expanded = expand_repeats(expr)
        assert not any(isinstance(node, Repeat) for node in expanded.walk())
        for word in words_upto(("a", "b"), 6):
            assert matches(expanded, word) == matches(expr, word)

    def test_deterministic_for_one_unambiguous(self):
        alphabet = Alphabet.closure({"a", "b"})
        assert glushkov_nfa(parse_regex("a*.b")).is_deterministic(alphabet)
        assert not glushkov_nfa(parse_regex("a*.a")).is_deterministic(alphabet)


class TestDFAOperations:
    def test_determinize_preserves_language(self):
        expr = parse_regex("(a | a.b)*")  # nondeterministic on purpose
        dfa = regex_to_dfa(expr)
        for word in words_upto(("a", "b"), 5):
            assert dfa.accepts(word) == matches(expr, word), word

    def test_complete_adds_sink(self):
        dfa = regex_to_dfa(parse_regex("a.b"))
        completed = complete(dfa)
        assert completed.is_complete()
        assert completed.accepts(["a", "b"])
        assert not completed.accepts(["b"])

    def test_complement_flips_membership(self):
        expr = parse_regex("title.date.temp.(TimeOut | exhibit*)")
        dfa = regex_to_dfa(expr)
        comp = complement(dfa)
        assert comp.is_complete()
        for word in (
            ("title", "date", "temp"),
            ("title", "date", "temp", "TimeOut"),
            ("title",),
            ("title", "date", "temp", "performance"),
        ):
            assert comp.accepts(word) != dfa.accepts(word), word

    def test_complement_handles_unknown_symbols_via_other(self):
        dfa = regex_to_dfa(parse_regex("a"))
        comp = complement(dfa)
        assert comp.accepts(["never-declared-symbol"])

    def test_minimize_preserves_language(self):
        expr = parse_regex("(a | b).(a | b).c?")
        dfa = regex_to_dfa(expr)
        minimal = minimize(dfa)
        assert minimal.n_states <= complete(dfa).n_states
        assert language_equal(dfa, minimal)

    def test_minimize_collapses_equivalent_states(self):
        # (a.c | b.c) has two intermediate states with identical futures.
        dfa = regex_to_dfa(parse_regex("(a.c) | (b.c)"))
        minimal = minimize(dfa)
        assert minimal.n_states < complete(dfa).n_states

    def test_sink_states_found(self):
        comp = complement(regex_to_dfa(parse_regex("a.b")))
        sinks = comp.sink_states()
        assert sinks  # the error sink
        for sink in sinks:
            assert sink in comp.accepting


class TestLanguageOps:
    def test_is_empty(self):
        assert is_empty(regex_to_dfa(parse_regex("empty")))
        assert not is_empty(regex_to_dfa(parse_regex("a?")))

    def test_subset_and_equal(self):
        small = regex_to_dfa(parse_regex("a.b"))
        big = regex_to_dfa(parse_regex("a.(b | c)"))
        assert language_subset(small, big)
        assert not language_subset(big, small)
        assert language_equal(big, regex_to_dfa(parse_regex("(a.b) | (a.c)")))

    def test_intersects(self):
        left = regex_to_dfa(parse_regex("a*.b"))
        right = regex_to_dfa(parse_regex("a.a.b"))
        assert intersects(left, right)
        assert not intersects(left, regex_to_dfa(parse_regex("c")))

    def test_shortest_words_order(self):
        dfa = regex_to_dfa(parse_regex("a.b | c | a.b.c.d"))
        words = list(shortest_words(dfa, 3))
        assert words[0] == ("c",)
        assert len(words[1]) == 2

    def test_paper_output_type_contains_adversarial_word(self):
        # lang((exhibit|performance)*) ⊄ lang(exhibit*): the core of why
        # the newspaper document is not safely rewritable into (***).
        out = regex_to_dfa(parse_regex("(exhibit | performance)*"))
        target = regex_to_dfa(parse_regex("exhibit*"))
        assert not language_subset(out, target)
        assert language_subset(target, out)
