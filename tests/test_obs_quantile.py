"""Unit tests for the P² streaming quantile estimator (repro.obs.quantile)."""

import json
import random

import pytest

from repro.obs.quantile import (
    DEFAULT_QUANTILES,
    P2Quantile,
    QuantileSketch,
    exact_quantile,
)


class TestExactQuantile:
    def test_endpoints_and_median(self):
        ordered = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert exact_quantile(ordered, 0.0) == 1.0
        assert exact_quantile(ordered, 1.0) == 5.0
        assert exact_quantile(ordered, 0.5) == 3.0

    def test_interpolates_between_order_stats(self):
        assert exact_quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert exact_quantile([7.0], 0.99) == 7.0


class TestP2Quantile:
    def test_empty_estimator_has_no_value(self):
        assert P2Quantile(0.5).value() is None

    def test_small_samples_are_exact(self):
        # With five or fewer observations P² falls back to the exact
        # order statistic, so tiny streams are never approximated.
        estimator = P2Quantile(0.5)
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        for index, value in enumerate(values):
            estimator.observe(value)
            ordered = sorted(values[: index + 1])
            assert estimator.value() == pytest.approx(
                exact_quantile(ordered, 0.5)
            )

    @pytest.mark.parametrize("q", DEFAULT_QUANTILES)
    @pytest.mark.parametrize("dist", ["uniform", "exponential", "lognormal"])
    def test_accuracy_against_sorted_ground_truth(self, q, dist):
        rng = random.Random(2003)
        draw = {
            "uniform": lambda: rng.uniform(0.0, 100.0),
            "exponential": lambda: rng.expovariate(0.1),
            "lognormal": lambda: rng.lognormvariate(0.0, 1.0),
        }[dist]
        values = [draw() for _ in range(5000)]
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        exact = exact_quantile(sorted(values), q)
        estimate = estimator.value()
        # P² on 5k well-behaved samples sits well within 5% relative
        # error at the tracked quantiles; the committed BENCH file
        # records the (much tighter) observed figures.
        assert abs(estimate - exact) / abs(exact) < 0.05

    def test_is_deterministic_in_observation_order(self):
        rng = random.Random(11)
        values = [rng.gauss(50.0, 10.0) for _ in range(1000)]
        first, second = P2Quantile(0.95), P2Quantile(0.95)
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.value() == second.value()
        assert first.to_dict() == second.to_dict()

    def test_monotone_in_q_on_shared_stream(self):
        rng = random.Random(5)
        estimators = [P2Quantile(q) for q in (0.5, 0.95, 0.99)]
        for _ in range(2000):
            value = rng.expovariate(1.0)
            for estimator in estimators:
                estimator.observe(value)
        p50, p95, p99 = [estimator.value() for estimator in estimators]
        assert p50 < p95 < p99

    def test_dict_round_trip_resumes_stream(self):
        rng = random.Random(3)
        estimator = P2Quantile(0.95)
        for _ in range(500):
            estimator.observe(rng.random())
        resumed = P2Quantile.from_dict(estimator.to_dict())
        extra = [rng.random() for _ in range(500)]
        for value in extra:
            estimator.observe(value)
            resumed.observe(value)
        assert resumed.value() == estimator.value()
        assert resumed.count == estimator.count


class TestQuantileSketch:
    def test_tracks_default_quantiles(self):
        sketch = QuantileSketch()
        assert sketch.tracked == DEFAULT_QUANTILES
        assert sketch.quantiles() == {q: None for q in DEFAULT_QUANTILES}

    def test_observe_feeds_every_estimator(self):
        sketch = QuantileSketch()
        for value in range(1, 101):
            sketch.observe(float(value))
        assert sketch.count == 100
        estimates = sketch.quantiles()
        assert estimates[0.5] == pytest.approx(50.5, rel=0.05)
        assert estimates[0.99] == pytest.approx(100.0, rel=0.05)

    def test_untracked_quantile_is_an_error(self):
        sketch = QuantileSketch(quantiles=(0.5,))
        with pytest.raises(KeyError):
            sketch.quantile(0.95)

    def test_dict_round_trip_is_json_stable(self):
        sketch = QuantileSketch()
        rng = random.Random(8)
        for _ in range(256):
            sketch.observe(rng.random())
        payload = sketch.to_dict()
        json.dumps(payload)  # must serialize as-is
        restored = QuantileSketch.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.quantiles() == sketch.quantiles()
