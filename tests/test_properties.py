"""Property-based tests (hypothesis) for the core invariants.

Strategies generate random regexes, words and word-rewriting problems;
the properties pin down the relationships the paper's theory promises:

- the Glushkov/DFA pipeline agrees with the Brzozowski reference matcher;
- complementation really complements; minimization preserves language;
- the lazy game solver agrees with the eager one everywhere;
- safe rewriting implies possible rewriting;
- executing a safe plan yields a word in the target language for *any*
  type-conforming service behaviour.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import complement, complete, minimize
from repro.automata.ops import language_equal, regex_to_dfa, sample_word
from repro.automata.symbols import Alphabet
from repro.doc import Document, call, el
from repro.doc.nodes import symbol_of
from repro.regex import ast
from repro.regex.ops import matches
from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe, execute_safe

SYMBOLS = ["a", "b", "c"]


def regexes(symbols=tuple(SYMBOLS), max_leaves=6):
    """A strategy producing random regex ASTs over a small alphabet."""
    leaves = st.sampled_from([ast.atom(s) for s in symbols] + [ast.EPSILON])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: ast.seq(*p)),
            st.tuples(children, children).map(lambda p: ast.alt(*p)),
            children.map(ast.star),
            children.map(ast.plus),
            children.map(ast.opt),
            st.tuples(children, st.integers(0, 2), st.integers(0, 2)).map(
                lambda t: ast.repeat(t[0], min(t[1], t[2]), max(t[1], t[2]))
            ),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def words(max_len=5):
    return st.lists(st.sampled_from(SYMBOLS), max_size=max_len).map(tuple)


class TestAutomataAgainstReference:
    @given(regexes(), words())
    @settings(max_examples=200, deadline=None)
    def test_dfa_agrees_with_derivative_matcher(self, regex, word):
        dfa = regex_to_dfa(regex, Alphabet.closure(SYMBOLS))
        assert dfa.accepts(word) == matches(regex, word)

    @given(regexes(), words())
    @settings(max_examples=150, deadline=None)
    def test_complement_flips_membership(self, regex, word):
        dfa = regex_to_dfa(regex, Alphabet.closure(SYMBOLS))
        assert complement(dfa).accepts(word) != dfa.accepts(word)

    @given(regexes())
    @settings(max_examples=100, deadline=None)
    def test_minimize_preserves_language(self, regex):
        dfa = regex_to_dfa(regex, Alphabet.closure(SYMBOLS))
        assert language_equal(dfa, minimize(dfa))

    @given(regexes())
    @settings(max_examples=100, deadline=None)
    def test_minimize_is_no_bigger(self, regex):
        dfa = regex_to_dfa(regex, Alphabet.closure(SYMBOLS))
        assert minimize(dfa).n_states <= complete(dfa).n_states

    @given(regexes(), st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_sampled_words_are_accepted(self, regex, seed):
        dfa = regex_to_dfa(regex, Alphabet.closure(SYMBOLS))
        from repro.automata.ops import is_empty

        if is_empty(dfa):
            return
        word = sample_word(dfa, random.Random(seed))
        assert dfa.accepts(word)

    @given(regexes(), words())
    @settings(max_examples=100, deadline=None)
    def test_str_parse_roundtrip_preserves_semantics(self, regex, word):
        reparsed = parse_regex(str(regex))
        assert matches(reparsed, word) == matches(regex, word)


def word_problems():
    """Random word-rewriting problems with known-consistent pieces."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 4))
        word = []
        output_types = {}
        for i in range(n):
            if draw(st.booleans()):
                word.append(draw(st.sampled_from(SYMBOLS)))
            else:
                name = "q%d" % i
                out = draw(regexes(max_leaves=3))
                output_types[name] = out
                word.append(name)
        target = draw(regexes(max_leaves=5))
        k = draw(st.integers(0, 2))
        return tuple(word), output_types, target, k

    return build()


class TestRewritingInvariants:
    @given(word_problems())
    @settings(max_examples=120, deadline=None)
    def test_lazy_agrees_with_eager(self, problem):
        word, output_types, target, k = problem
        eager = analyze_safe(word, output_types, target, k=k)
        lazy = analyze_safe_lazy(word, output_types, target, k=k, early_exit=False)
        assert eager.exists == lazy.exists

    @given(word_problems())
    @settings(max_examples=120, deadline=None)
    def test_safe_implies_possible(self, problem):
        word, output_types, target, k = problem
        if analyze_safe(word, output_types, target, k=k).exists:
            assert analyze_possible(word, output_types, target, k=k).exists

    @given(word_problems(), st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_safe_execution_always_lands_in_target(self, problem, seed):
        """The heart of Definition 5: whatever conforming outputs the
        services return, executing the winning strategy produces a word
        of the target language."""
        word, output_types, target, k = problem
        analysis = analyze_safe(word, output_types, target, k=k)
        if not analysis.exists:
            return
        rng = random.Random(seed)
        alphabet = Alphabet.closure(
            SYMBOLS, output_types.keys(),
            *(list(output_types) for _ in (1,)),
        )

        def adversarial_invoker(fc):
            out_type = output_types[fc.name]
            dfa = regex_to_dfa(
                out_type, Alphabet.closure(SYMBOLS, output_types.keys())
            )
            out_word = sample_word(dfa, rng, stop_probability=0.5, max_length=6)
            forest = []
            for symbol in out_word:
                if symbol in output_types:
                    forest.append(call(symbol))
                else:
                    forest.append(el(symbol))
            return tuple(forest)

        children = tuple(
            call(s) if s in output_types else el(s) for s in word
        )
        new_children, _log = execute_safe(analysis, children, adversarial_invoker)
        result_word = [symbol_of(n) for n in new_children]
        assert matches(target, result_word), (word, result_word, str(target))


class TestDocumentRoundTrip:
    @st.composite
    @staticmethod
    def documents(draw, depth=0):
        label = draw(st.sampled_from(["a", "b", "c"]))
        if depth >= 2:
            return el(label, draw(st.text("xyz ", max_size=5)).strip() or "v")
        children = draw(
            st.lists(
                st.one_of(
                    TestDocumentRoundTrip.documents(depth=depth + 1),
                    st.builds(
                        call,
                        st.sampled_from(["F", "G"]),
                        TestDocumentRoundTrip.documents(depth=depth + 1),
                    ),
                ),
                max_size=3,
            )
        )
        return el(label, *children)

    @given(documents())
    @settings(max_examples=100, deadline=None)
    def test_xml_roundtrip(self, root):
        document = Document(root)
        assert Document.from_xml(document.to_xml()) == document
