"""Stress tests: sustained exchange volume over shared services.

Fast enough for the regular suite (a couple of seconds), but large
enough to surface accounting drift, cache corruption, or state leaking
between exchanges.
"""

import random

from repro import (
    AXMLPeer,
    InstanceGenerator,
    PeerNetwork,
    RewriteEngine,
    is_instance,
)
from repro.workloads import newspaper
from tests.conftest import build_registry


class TestSustainedExchanges:
    def test_hundred_document_repository_sweep(self):
        registry = build_registry()
        alice = AXMLPeer("alice", newspaper.schema_star())
        for service in registry.services.values():
            alice.registry.register(service)
        bob = AXMLPeer("bob", newspaper.schema_star2())
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", newspaper.schema_star2())

        generator = InstanceGenerator(
            newspaper.schema_star(), random.Random(404), max_depth=5
        )
        expected_calls = 0
        for index in range(100):
            document = generator.document()
            name = "doc-%03d" % index
            alice.repository.store(name, document)
            from repro.doc.paths import child_word

            # Count how many Get_Temp occurrences must be materialized.
            expected_calls += child_word(document.root).count("Get_Temp")

        accepted = 0
        for name in alice.repository.names():
            receipt = network.send("alice", "bob", name)
            assert receipt.accepted, (name, receipt.error)
            accepted += 1
        assert accepted == 100
        assert len(bob.repository) == 100
        # Service accounting matches the work the agreements forced.
        forecast = registry.services["http://www.forecast.com/soap"]
        assert forecast.call_count("Get_Temp") == expected_calls
        for name, document in bob.repository.items():
            assert is_instance(
                document, newspaper.schema_star2(), newspaper.schema_star()
            ), name

    def test_engine_reuse_is_stateless_across_documents(self):
        """One engine instance rewriting many different documents must
        not leak state between runs (the analysis cache is keyed
        exactly)."""
        registry = build_registry()
        engine = RewriteEngine(
            newspaper.schema_star2(), newspaper.schema_star(), k=1
        )
        generator = InstanceGenerator(
            newspaper.schema_star(), random.Random(7), max_depth=5
        )
        documents = [generator.document() for _ in range(50)]
        one_shot = []
        for document in documents:
            result = engine.rewrite(document, registry.make_invoker())
            one_shot.append(result.document)
        # A fresh engine per document must produce identical results.
        for document, earlier in zip(documents, one_shot):
            fresh = RewriteEngine(
                newspaper.schema_star2(), newspaper.schema_star(), k=1
            )
            again = fresh.rewrite(document, build_registry().make_invoker())
            assert again.document == earlier
        hits, misses = engine.cache_stats
        assert hits > misses  # repetition paid off
