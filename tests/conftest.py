"""Shared fixtures: the paper's running example, wired to simulated services.

Also enforces a suite-wide hygiene rule: no unseeded randomness.  Every
differential and fuzzing test in this repository is replayable from a
seed; a single ``random.Random()`` or module-level ``random.choice(...)``
would silently break that.  ``pytest_configure`` statically scans the
test files and refuses to run the suite if one appears.
"""

from __future__ import annotations

import ast as pyast
import os
import random

import pytest

#: Module-level ``random.X(...)`` calls that touch the shared global RNG.
_GLOBAL_RNG_CALLS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "getrandbits", "seed",
})


def _unseeded_rng_uses(path):
    """(line, source) pairs for unseeded RNG use in one test file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = pyast.parse(source, filename=path)
    lines = source.splitlines()
    offending = []
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, pyast.Attribute)
            and isinstance(func.value, pyast.Name)
            and func.value.id == "random"
        ):
            continue
        if func.attr == "Random":
            if node.args or node.keywords:
                continue  # seeded: random.Random(<seed>)
        elif func.attr not in _GLOBAL_RNG_CALLS:
            continue  # e.g. random.Random subclass attribute — fine
        offending.append((node.lineno, lines[node.lineno - 1].strip()))
    return offending


def pytest_configure(config):
    tests_dir = os.path.dirname(os.path.abspath(__file__))
    problems = []
    for name in sorted(os.listdir(tests_dir)):
        if not name.endswith(".py"):
            continue
        for line, source in _unseeded_rng_uses(
            os.path.join(tests_dir, name)
        ):
            problems.append("%s:%d: %s" % (name, line, source))
    if problems:
        raise pytest.UsageError(
            "unseeded randomness in tests (pass an explicit seed so "
            "failures replay):\n  " + "\n  ".join(problems)
        )

from repro import (
    FunctionSignature,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    parse_regex,
)
from repro.workloads import newspaper


@pytest.fixture
def doc():
    """The intensional newspaper document of Figure 2.a."""
    return newspaper.document()


@pytest.fixture
def schema_star():
    return newspaper.schema_star()


@pytest.fixture
def schema_star2():
    return newspaper.schema_star2()


@pytest.fixture
def schema_star3():
    return newspaper.schema_star3()


@pytest.fixture
def newspaper_outputs():
    """tau_out for the two calls of the running example."""
    return {
        "Get_Temp": parse_regex("temp"),
        "TimeOut": parse_regex("(exhibit | performance)*"),
        "Get_Date": parse_regex("date"),
    }


def build_registry(timeout_returns="exhibit"):
    """A registry serving Get_Temp / TimeOut / Get_Date with fixed answers.

    ``timeout_returns`` picks what TimeOut answers: "exhibit",
    "performance" or "mixed".
    """
    get_temp = Service("http://www.forecast.com/soap", "urn:xmethods-weather")
    get_temp.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
        side_effect_free=True,
    )

    exhibit = el("exhibit", el("title", "Picasso"), el("date", "04/11"))
    performance = el("performance")
    forests = {
        "exhibit": (exhibit,),
        "performance": (performance,),
        "mixed": (exhibit, performance),
        "empty": (),
    }
    timeout = Service("http://www.timeout.com/paris", "urn:timeout-program")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(forests[timeout_returns]),
    )

    dates = Service("http://dates.example.com/soap", "urn:dates")
    dates.add_operation(
        "Get_Date",
        FunctionSignature(parse_regex("title"), parse_regex("date")),
        constant_responder((el("date", "04/12"),)),
        side_effect_free=True,
    )

    registry = ServiceRegistry()
    registry.register(get_temp).register(timeout).register(dates)
    return registry


@pytest.fixture
def registry():
    """The default registry: TimeOut is well-behaved (exhibits only)."""
    return build_registry("exhibit")


@pytest.fixture
def adversarial_registry():
    """TimeOut answers with a performance — the paper's failure case."""
    return build_registry("performance")


@pytest.fixture
def rng():
    return random.Random(20030609)  # SIGMOD 2003, June 9
