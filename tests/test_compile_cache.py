"""The shared compilation cache (:mod:`repro.compile`).

Covers the hash-consing identity (canonical digests, interning), the
memoized minimized pipeline and its language-preservation contract, LRU
eviction, the concurrency story (four worker threads hammering one
cache; stats monotonicity under load), on-disk persistence with
corrupted-file fallback, and the engine-level guarantee that sharing
compiled artifacts never changes results or cache accounting.
"""

from __future__ import annotations

import os
import pickle
import random
import threading

import pytest

from repro import Document, RewriteEngine, el, is_instance, parse_regex
from repro.automata.dfa import complement, complete, determinize
from repro.automata.glushkov import glushkov_nfa
from repro.automata.ops import language_equal
from repro.automata.symbols import Alphabet, regex_symbols
from repro.compile import (
    DISABLED,
    CompilationCache,
    NullCompilationCache,
    PersistentStore,
    cache as ambient_cache,
    compiling,
    install,
    key_digest,
    mapping_digest,
    regex_digest,
    symbols_digest,
    uninstall,
    word_digest,
)
from repro.compile import context as compile_context
from repro.doc.builder import call
from repro.regex.ast import Atom, Seq
from repro.rewriting.expansion import build_expansion
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe, problem_alphabet
from repro.workloads import newspaper
from tests.conftest import build_registry

WORD = ("title", "date", "Get_Temp", "TimeOut")


def newspaper_outputs():
    return {
        "Get_Temp": parse_regex("temp"),
        "TimeOut": parse_regex("(exhibit | performance)*"),
        "Get_Date": parse_regex("date"),
    }


def raw_target_dfa(target, alphabet):
    """The pre-cache pipeline: complete but unminimized."""
    return complete(determinize(glushkov_nfa(target), alphabet))


class TestDigests:
    def test_equal_structure_equal_digest(self):
        assert regex_digest(parse_regex("a.(b|c)*")) == regex_digest(
            parse_regex("a.(b|c)*")
        )

    def test_different_structure_different_digest(self):
        assert regex_digest(parse_regex("a.b")) != regex_digest(
            parse_regex("b.a")
        )
        assert regex_digest(parse_regex("a*")) != regex_digest(
            parse_regex("a")
        )

    def test_serialization_is_unambiguous(self):
        # An atom whose name *contains* a separator must not collide
        # with the sequence of its pieces — the length-prefixed
        # encoding guarantees it.
        assert regex_digest(Atom("ab")) != regex_digest(
            Seq((Atom("a"), Atom("b")))
        )

    def test_word_digest_is_order_sensitive(self):
        assert word_digest(("a", "b")) != word_digest(("b", "a"))
        assert word_digest(("ab",)) != word_digest(("a", "b"))

    def test_mapping_digest_is_order_insensitive(self):
        forward = {"f": "d1", "g": "d2"}
        backward = {"g": "d2", "f": "d1"}
        assert mapping_digest(forward) == mapping_digest(backward)

    def test_symbols_digest_is_set_like(self):
        assert symbols_digest(frozenset(["x", "y"])) == symbols_digest(
            ["y", "x"]
        )

    def test_key_digest_is_filename_safe(self):
        digest = key_digest(("comp", regex_digest(parse_regex("a")), "x"))
        assert digest.isalnum()


class TestInterning:
    def test_intern_collapses_equal_regexes(self):
        cc = CompilationCache()
        first, second = parse_regex("a.(b|c)"), parse_regex("a.(b|c)")
        assert first is not second
        assert cc.intern(first) is cc.intern(second)
        assert cc.stats().interned >= 1

    def test_digest_identity_fast_path(self):
        cc = CompilationCache()
        expr = parse_regex("(a|b)*.c")
        assert cc.digest(expr) == cc.digest(expr) == regex_digest(expr)

    def test_keys_are_digests(self):
        cc = CompilationCache()
        assert cc.regex_key(parse_regex("a")) == regex_digest(parse_regex("a"))
        assert cc.word_key(("a", "b")) == word_digest(("a", "b"))

    def test_null_cache_keys_are_structural(self):
        expr = parse_regex("a")
        assert DISABLED.regex_key(expr) is expr
        assert DISABLED.word_key(("a",)) == ("a",)


class TestPipeline:
    def test_artifacts_are_shared_by_content(self):
        cc = CompilationCache()
        target = parse_regex("title.date.temp.exhibit*")
        alphabet = problem_alphabet(WORD, newspaper_outputs(), target)
        assert cc.nfa(target) is cc.nfa(parse_regex("title.date.temp.exhibit*"))
        assert cc.target_dfa(target, alphabet) is cc.target_dfa(target, alphabet)
        assert cc.complement(target, alphabet) is cc.complement(target, alphabet)
        stats = cc.stats()
        assert stats.hits >= 3 and stats.misses >= 3

    def test_minimized_pipeline_preserves_language(self):
        cc = CompilationCache()
        for expression in (
            "title.date.temp.(TimeOut | exhibit*)",
            "a.(b|c)*.d",
            "(a|b).(a|b).(a|b)",
            "eps | a.a*",
        ):
            target = parse_regex(expression)
            alphabet = Alphabet.closure(regex_symbols(target))
            raw = raw_target_dfa(target, alphabet)
            minimized = cc.target_dfa(target, alphabet)
            assert language_equal(raw, minimized)
            assert minimized.n_states <= raw.n_states
            assert minimized.is_complete()
            assert language_equal(complement(raw), cc.complement(target, alphabet))

    def test_null_cache_same_artifacts_no_sharing(self):
        target = parse_regex("a.b*")
        alphabet = Alphabet.closure(regex_symbols(target))
        one = DISABLED.target_dfa(target, alphabet)
        two = DISABLED.target_dfa(target, alphabet)
        assert one is not two
        assert language_equal(one, two)
        assert DISABLED.stats().lookups == 0
        assert not DISABLED.enabled and not NullCompilationCache().enabled


class TestExpansionMemo:
    def test_expansion_is_shared(self):
        cc = CompilationCache()
        outputs = newspaper_outputs()
        first = build_expansion(WORD, outputs, k=1, compile_cache=cc)
        second = build_expansion(list(WORD), dict(outputs), k=1,
                                 compile_cache=cc)
        assert first is second

    def test_invocable_partition_splits_the_key(self):
        cc = CompilationCache()
        outputs = newspaper_outputs()
        everything = build_expansion(WORD, outputs, k=1, compile_cache=cc)
        restricted = build_expansion(
            WORD, outputs, k=1,
            invocable=lambda name: name != "TimeOut", compile_cache=cc,
        )
        assert everything is not restricted
        assert len(everything.fork_edges()) > len(restricted.fork_edges())

    def test_depth_splits_the_key(self):
        cc = CompilationCache()
        outputs = newspaper_outputs()
        assert build_expansion(WORD, outputs, k=1, compile_cache=cc) is not (
            build_expansion(WORD, outputs, k=2, compile_cache=cc)
        )

    def test_disabled_cache_builds_fresh(self):
        outputs = newspaper_outputs()
        first = build_expansion(WORD, outputs, k=1, compile_cache=DISABLED)
        second = build_expansion(WORD, outputs, k=1, compile_cache=DISABLED)
        assert first is not second
        assert first.size() == second.size()

    def test_analyses_agree_with_disabled_cache(self):
        outputs = newspaper_outputs()
        target = parse_regex("title.date.temp.(TimeOut | exhibit*)")
        shared = CompilationCache()
        for analyze in (analyze_safe, analyze_safe_lazy):
            cold = analyze(WORD, outputs, target, 1, compile_cache=DISABLED)
            warm = analyze(WORD, outputs, target, 1, compile_cache=shared)
            warm2 = analyze(WORD, outputs, target, 1, compile_cache=shared)
            assert cold.exists == warm.exists == warm2.exists is True
            assert [d.action for d in cold.preview_decisions()] == [
                d.action for d in warm.preview_decisions()
            ]


class TestLRU:
    def test_eviction_under_pressure(self):
        cc = CompilationCache(maxsize=4)
        alphabet = Alphabet.closure({"a", "b"})
        for index in range(10):
            cc.target_dfa(parse_regex("a" + ".a" * index), alphabet)
        stats = cc.stats()
        assert stats.entries <= 4
        assert stats.evictions > 0

    def test_evicted_artifacts_recompile_correctly(self):
        cc = CompilationCache(maxsize=2)
        alphabet = Alphabet.closure({"a", "b"})
        target = parse_regex("a.b")
        first = cc.target_dfa(target, alphabet)
        for index in range(6):  # flush the LRU
            cc.target_dfa(parse_regex("b" + ".b" * index), alphabet)
        again = cc.target_dfa(target, alphabet)
        assert language_equal(first, again)

    def test_stats_accounting_is_consistent(self):
        cc = CompilationCache(maxsize=8)
        alphabet = Alphabet.closure({"a"})
        for _ in range(3):
            cc.target_dfa(parse_regex("a*"), alphabet)
        stats = cc.stats()
        assert stats.lookups == stats.hits + stats.misses
        assert 0.0 <= stats.hit_rate <= 1.0
        assert "hit" in stats.summary()


class TestThreadSafety:
    WORKERS = 4  # mirrors REPRO_WORKERS=4, the shipped parallel setting

    def test_hammering_one_cache_from_four_threads(self):
        cc = CompilationCache(maxsize=16)  # small: eviction under load
        expressions = [
            parse_regex(text) for text in (
                "a.b*", "(a|b)*", "a.(b|c).d", "d*.a", "b|c|d",
                "(a.b)*", "a|eps", "c.c.c*",
            )
        ]
        alphabet = Alphabet.closure({"a", "b", "c", "d"})
        expected = {
            regex_digest(expr): DISABLED.target_dfa(expr, alphabet).n_states
            for expr in expressions
        }
        errors = []
        snapshots = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                snapshots.append(cc.stats())

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(150):
                    expr = rng.choice(expressions)
                    dfa = cc.target_dfa(expr, alphabet)
                    # Minimal DFAs are canonical in size: every thread
                    # must see an artifact of the unique minimal shape.
                    if dfa.n_states != expected[regex_digest(expr)]:
                        raise AssertionError("wrong artifact for %s" % expr)
                    comp = cc.complement(expr, alphabet)
                    if comp.n_states != dfa.n_states:
                        raise AssertionError("complement shape changed")
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(self.WORKERS)
        ]
        monitor = threading.Thread(target=sampler)
        monitor.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        monitor.join()
        assert not errors, errors[0]
        stats = cc.stats()
        assert stats.entries <= 16
        assert stats.lookups >= self.WORKERS * 150 * 2
        # Counters only ever grow, even while four threads race.
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert later.hits >= earlier.hits
            assert later.misses >= earlier.misses
            assert later.evictions >= earlier.evictions

    def test_interning_races_converge(self):
        cc = CompilationCache()
        results = [[] for _ in range(self.WORKERS)]

        def worker(slot):
            for index in range(100):
                expr = parse_regex("a.(b|c)*.d")
                results[slot].append(cc.intern(expr))

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        interned = {id(obj) for result in results for obj in result}
        assert len(interned) == 1  # one canonical instance, ever


class TestPersistence:
    def _compile_some(self, directory):
        cc = CompilationCache(persist_dir=directory)
        target = parse_regex("title.date.temp.exhibit*")
        alphabet = problem_alphabet(WORD, newspaper_outputs(), target)
        dfa = cc.target_dfa(target, alphabet)
        comp = cc.complement(target, alphabet)
        expansion = build_expansion(WORD, newspaper_outputs(), k=1,
                                    compile_cache=cc)
        return cc, target, alphabet, dfa, comp, expansion

    def test_round_trip_warm_start(self, tmp_path):
        directory = str(tmp_path / "artifacts")
        cc1, target, alphabet, dfa, comp, expansion = self._compile_some(
            directory
        )
        assert cc1.stats().persist_misses > 0  # first run was cold
        store = PersistentStore(directory)
        assert store.entry_count() >= 3

        cc2 = CompilationCache(persist_dir=directory)
        dfa2 = cc2.target_dfa(target, alphabet)
        comp2 = cc2.complement(target, alphabet)
        expansion2 = build_expansion(WORD, newspaper_outputs(), k=1,
                                     compile_cache=cc2)
        assert cc2.stats().persist_hits >= 3
        assert language_equal(dfa, dfa2)
        assert language_equal(comp, comp2)
        assert expansion2.size() == expansion.size()
        assert [e.guard for e in expansion2.edges] == [
            e.guard for e in expansion.edges
        ]

    def test_corrupted_files_fall_back_to_recompilation(self, tmp_path):
        directory = str(tmp_path / "artifacts")
        _cc, target, alphabet, dfa, _comp, _expansion = self._compile_some(
            directory
        )
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), "wb") as handle:
                handle.write(b"\x80garbage, not a pickle")

        cc = CompilationCache(persist_dir=directory)
        recompiled = cc.target_dfa(target, alphabet)
        assert language_equal(dfa, recompiled)
        stats = cc.stats()
        assert stats.persist_errors >= 1
        assert stats.persist_hits == 0

        # The bad file was overwritten with a fresh artifact: the next
        # process warm-starts again.
        cc2 = CompilationCache(persist_dir=directory)
        assert language_equal(dfa, cc2.target_dfa(target, alphabet))
        assert cc2.stats().persist_hits >= 1

    def test_wrong_version_or_kind_is_corruption(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        assert store.store("digest0", "dfa", {"ok": True})
        assert store.load("digest0", "dfa") == ({"ok": True}, False)
        assert store.load("digest0", "nfa") == (None, True)  # kind mismatch
        with open(os.path.join(str(tmp_path), "digest1.pkl"), "wb") as handle:
            pickle.dump(("repro-compile-cache", 999, "dfa", {}), handle)
        assert store.load("digest1", "dfa") == (None, True)
        assert store.load("missing", "dfa") == (None, False)


class TestSnapshots:
    def _warm_cache(self):
        cc = CompilationCache()
        target = parse_regex("title.date.temp.exhibit*")
        alphabet = problem_alphabet(WORD, newspaper_outputs(), target)
        dfa = cc.target_dfa(target, alphabet)
        comp = cc.complement(target, alphabet)
        return cc, target, alphabet, dfa, comp

    def test_export_import_round_trip(self):
        cc1, target, alphabet, dfa, comp = self._warm_cache()
        blob = cc1.export_snapshot()
        assert isinstance(blob, bytes) and blob

        cc2 = CompilationCache()
        added = cc2.import_snapshot(blob)
        assert added == cc1.stats().entries
        # The imported artifacts serve as hits, not rebuilds.
        assert language_equal(cc2.target_dfa(target, alphabet), dfa)
        assert language_equal(cc2.complement(target, alphabet), comp)
        stats = cc2.stats()
        assert stats.hits >= 2 and stats.misses == 0

    def test_existing_entries_win_and_import_is_idempotent(self):
        cc1, target, alphabet, _dfa, _comp = self._warm_cache()
        blob = cc1.export_snapshot()
        assert cc1.import_snapshot(blob) == 0  # everything already there

        cc2 = CompilationCache()
        local = cc2.target_dfa(target, alphabet)
        added = cc2.import_snapshot(blob)
        assert 0 < added < cc1.stats().entries
        assert cc2.target_dfa(target, alphabet) is local

    def test_malformed_blobs_raise_without_touching_store(self):
        cc = CompilationCache()
        for blob in (b"", b"junk", pickle.dumps(("wrong-magic", 1, []))):
            with pytest.raises(ValueError):
                cc.import_snapshot(blob)
        assert cc.stats().entries == 0

    def test_wrong_version_rejected(self):
        from repro.compile.persist import FORMAT_VERSION, dump_snapshot

        cc = CompilationCache()
        blob = pickle.dumps(
            ("repro-compile-snapshot", FORMAT_VERSION + 1, [])
        )
        with pytest.raises(ValueError):
            cc.import_snapshot(blob)
        assert cc.import_snapshot(dump_snapshot([])) == 0

    def test_import_respects_lru_bound(self):
        cc1, _target, _alphabet, _dfa, _comp = self._warm_cache()
        small = CompilationCache(maxsize=1)
        small.import_snapshot(cc1.export_snapshot())
        assert small.stats().entries == 1

    def test_null_cache_round_trip_is_empty(self):
        null = DISABLED
        blob = null.export_snapshot()
        assert null.import_snapshot(blob) == 0
        with pytest.raises(ValueError):
            null.import_snapshot(b"junk")


class TestContext:
    def test_ambient_cache_is_lazy_and_stable(self):
        uninstall()
        try:
            first = ambient_cache()
            assert first.enabled
            assert ambient_cache() is first
        finally:
            uninstall()

    def test_install_and_compiling_scope(self):
        mine = CompilationCache()
        previous = ambient_cache()
        install(mine)
        try:
            assert ambient_cache() is mine
            with compiling(DISABLED) as scoped:
                assert scoped is DISABLED
                assert ambient_cache() is DISABLED
            assert ambient_cache() is mine
        finally:
            install(previous)

    def test_env_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "off")
        uninstall()
        try:
            assert ambient_cache() is DISABLED
        finally:
            uninstall()

    def test_env_directory_enables_persistence(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "warm")
        monkeypatch.setenv("REPRO_COMPILE_CACHE", directory)
        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "7")
        uninstall()
        try:
            cc = ambient_cache()
            assert cc.enabled and cc.maxsize == 7
            assert cc._persist is not None
            assert cc._persist.directory == directory
        finally:
            uninstall()

    def test_env_size_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "not-a-number")
        uninstall()
        try:
            assert ambient_cache().maxsize == compile_context.DEFAULT_MAXSIZE
        finally:
            uninstall()


def wide_newspaper(n_exhibits):
    exhibits = [
        el("exhibit", el("title", "t%d" % index),
           call("Get_Date", el("title", "t%d" % index)))
        for index in range(n_exhibits)
    ]
    return Document(
        el("newspaper", el("title", "x"), el("date", "d"),
           el("temp", "21"), *exhibits)
    )


class TestEngineIntegration:
    """Sharing artifacts must never change results or accounting."""

    def _run(self, compile_cache, workers=1):
        engine = RewriteEngine(
            newspaper.schema_star3(), newspaper.schema_star(), k=1,
            workers=workers, compile_cache=compile_cache,
        )
        result = engine.rewrite(
            wide_newspaper(12), build_registry().make_invoker()
        )
        assert is_instance(
            result.document, newspaper.schema_star3(), newspaper.schema_star()
        )
        return (
            result.document.to_xml(), result.calls_made, result.mode_used,
            result.cache_hits, result.cache_misses, engine.cache_stats,
        )

    def test_shared_vs_cold_vs_parallel_identical(self):
        shared = CompilationCache()
        cold = self._run(DISABLED)
        warm = self._run(shared)
        rewarm = self._run(shared)  # second engine, same artifacts
        parallel = self._run(shared, workers=4)
        assert cold == warm == rewarm == parallel
        assert shared.stats().hits > 0

    def test_shared_cache_actually_avoids_compiles(self):
        shared = CompilationCache()
        self._run(shared)
        misses_after_first = shared.stats().misses
        self._run(shared)
        # The second engine compiled nothing new.
        assert shared.stats().misses == misses_after_first

    def test_enforcer_forwards_the_cache(self):
        from repro.axml.enforcement import SchemaEnforcer

        shared = CompilationCache()
        enforcer = SchemaEnforcer(
            newspaper.schema_star2(), newspaper.schema_star(), k=1,
            compile_cache=shared,
        )
        outcome = enforcer.enforce_document(
            newspaper.document(), build_registry().make_invoker()
        )
        assert outcome.ok
        assert not outcome.already_conformant
        assert shared.stats().lookups > 0

    def test_compat_check_uses_the_cache(self):
        from repro.schemarewrite import schema_safely_rewrites

        shared = CompilationCache()
        report = schema_safely_rewrites(
            newspaper.schema_star(), newspaper.schema_star2(),
            compile_cache=shared,
        )
        assert report.compatible
        assert shared.stats().lookups > 0
