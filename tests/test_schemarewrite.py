"""Unit tests for schema-to-schema safe rewriting (Section 6)."""

import pytest

from repro.errors import SchemaError
from repro.schema import SchemaBuilder, allow_all, deny
from repro.schemarewrite import schema_safely_rewrites
from repro.schemarewrite.compat import reachable_labels
from repro.workloads import newspaper


class TestPaperClaim:
    """Section 6: (*) safely rewrites into (**) but not into (***)."""

    def test_star_into_star2(self, schema_star, schema_star2):
        report = schema_safely_rewrites(schema_star, schema_star2, k=1)
        assert report.compatible

    def test_star_into_star3(self, schema_star, schema_star3):
        report = schema_safely_rewrites(schema_star, schema_star3, k=1)
        assert not report.compatible
        failing = [check.label for check in report.failed()]
        assert failing == ["newspaper"]

    def test_self_compatibility(self, schema_star):
        assert schema_safely_rewrites(schema_star, schema_star, k=1)

    def test_star2_into_star(self, schema_star, schema_star2):
        # (**) instances are also (*) instances: temp fits the choice.
        assert schema_safely_rewrites(schema_star2, schema_star, k=1)

    def test_star3_into_star2(self, schema_star2, schema_star3):
        assert schema_safely_rewrites(schema_star3, schema_star2, k=1)


class TestReachability:
    def test_reachable_from_newspaper(self, schema_star):
        labels, functions = reachable_labels(schema_star, "newspaper")
        assert labels == {
            "newspaper", "title", "date", "temp", "city", "exhibit",
        }
        assert functions == {"Get_Temp", "TimeOut", "Get_Date"}

    def test_unreachable_parts_ignored(self):
        sender = (
            SchemaBuilder()
            .element("root", "data")
            .element("island", "missing-target")  # never reachable
            .root("root")
            .build(strict=False)
        )
        receiver = SchemaBuilder().element("root", "data").build()
        report = schema_safely_rewrites(sender, receiver)
        assert report.compatible


class TestFailures:
    def test_label_missing_at_receiver(self):
        sender = (
            SchemaBuilder()
            .element("root", "extra")
            .element("extra", "data")
            .root("root")
            .build()
        )
        receiver = (
            SchemaBuilder().element("root", "data").build()
        )
        report = schema_safely_rewrites(sender, receiver)
        assert not report.compatible
        assert any(
            check.label == "extra" and not check.safe for check in report.checks
        )

    def test_signature_conflict_detected(self):
        sender = (
            SchemaBuilder()
            .element("root", "f | a")
            .element("a", "data")
            .function("f", "data", "a")
            .root("root")
            .build()
        )
        receiver = (
            SchemaBuilder()
            .element("root", "f | a")
            .element("a", "data")
            .function("f", "data", "a.a")  # different output type!
            .build()
        )
        report = schema_safely_rewrites(sender, receiver)
        assert not report.compatible
        assert report.signature_conflicts

    def test_missing_root_raises(self, schema_star2):
        sender = SchemaBuilder().element("a", "data").build()
        with pytest.raises(SchemaError):
            schema_safely_rewrites(sender, schema_star2)
        with pytest.raises(SchemaError):
            schema_safely_rewrites(sender, schema_star2, root="zzz")


class TestDepthAndPolicy:
    def chain_schemas(self):
        # Sender allows f (output: a | g), g (output: a); receiver wants a*.
        sender = (
            SchemaBuilder()
            .element("root", "f")
            .element("a", "data")
            .function("f", "data", "a | g")
            .function("g", "data", "a")
            .root("root")
            .build()
        )
        receiver = (
            SchemaBuilder()
            .element("root", "a")
            .element("a", "data")
            .build()
        )
        return sender, receiver

    def test_depth_matters(self):
        sender, receiver = self.chain_schemas()
        assert not schema_safely_rewrites(sender, receiver, k=1).compatible
        assert schema_safely_rewrites(sender, receiver, k=2).compatible

    def test_policy_restricts(self):
        sender, receiver = self.chain_schemas()
        report = schema_safely_rewrites(
            sender, receiver, k=2, policy=deny(["g"])
        )
        assert not report.compatible

    def test_report_rendering(self, schema_star, schema_star3):
        report = schema_safely_rewrites(schema_star, schema_star3)
        rendered = str(report)
        assert "NOT compatible" in rendered
        assert "newspaper" in rendered
