"""Unit tests for the `repro bench` runner (repro.obs.bench)."""

import copy
import json

import pytest

from repro.obs import bench as bench_mod
from repro.obs.bench import (
    BENCHES,
    bench_filename,
    compare_against,
    deterministic_view,
    diff_payloads,
    machine_fingerprint,
    run_bench,
    write_payload,
)


class TestRunBench:
    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown bench"):
            run_bench("nope")

    def test_payload_carries_the_conventions(self):
        payload = run_bench("quantile_sketch", smoke=True)
        assert payload["benchmark"] == "quantile_sketch"
        assert payload["smoke"] is True
        assert payload["machine"] == machine_fingerprint()
        assert payload["work"]  # a non-empty work-counter snapshot
        json.dumps(payload, sort_keys=True)  # JSON-serializable as-is

    def test_game_work_counters_are_byte_identical_across_runs(self):
        # The acceptance bar: two seeded invocations agree on every
        # deterministic value, byte for byte, wall-clock excluded.
        first = run_bench("game_work", smoke=True)
        second = run_bench("game_work", smoke=True)
        assert json.dumps(deterministic_view(first), sort_keys=True) == \
            json.dumps(deterministic_view(second), sort_keys=True)
        assert first["verdicts_equal"] is True
        for core in ("dict", "bitset"):
            assert any("stage=\"game\"" in key
                       for key in first["work"][core])
            assert any("stage=\"compile\"" in key
                       for key in first["work"][core])

    def test_compile_cache_bench_is_deterministic(self):
        first = run_bench("compile_cache", smoke=True)
        second = run_bench("compile_cache", smoke=True)
        assert deterministic_view(first) == deterministic_view(second)
        assert first["verdicts_stable"] is True
        assert first["cache_hits"] > 0  # the warm sweep hit the cache


class TestDeterministicView:
    def test_strips_wall_clock_and_machine(self):
        payload = {
            "benchmark": "x", "dict_seconds": 1.23, "cold_ns": 5,
            "overhead_fraction": 0.01, "machine": {"cpus": 8},
            "work": {"dict": {"pops": 4.0}, "warm_seconds": 9.9},
            "speedup": 11.0, "within_budget": True,
        }
        view = deterministic_view(payload)
        assert view == {"benchmark": "x", "work": {"dict": {"pops": 4.0}}}

    def test_preserves_counters_and_lists(self):
        payload = {"scenarios": ["a", "b"], "work": {"pops": 3.0}}
        assert deterministic_view(payload) == payload


class TestDiffPayloads:
    BASE = {
        "benchmark": "game_work", "smoke": True, "verdicts_equal": True,
        "dict_seconds": 0.5,
        "work": {"dict": {"pops": 100.0, "nodes": 10.0}},
    }

    def test_identical_payloads_have_no_regressions(self):
        assert diff_payloads(self.BASE, copy.deepcopy(self.BASE)) == []

    def test_counter_growth_beyond_threshold_flags(self):
        current = copy.deepcopy(self.BASE)
        current["work"]["dict"]["pops"] = 150.0
        (regression,) = diff_payloads(self.BASE, current, threshold=0.10)
        assert "pops" in regression and "150" in regression

    def test_counter_growth_within_threshold_passes(self):
        current = copy.deepcopy(self.BASE)
        current["work"]["dict"]["pops"] = 105.0
        assert diff_payloads(self.BASE, current, threshold=0.10) == []

    def test_improvements_never_flag(self):
        current = copy.deepcopy(self.BASE)
        current["work"]["dict"]["pops"] = 10.0
        assert diff_payloads(self.BASE, current) == []

    def test_wall_clock_changes_are_ignored(self):
        current = copy.deepcopy(self.BASE)
        current["dict_seconds"] = 500.0  # a 1000x slowdown: not our problem
        assert diff_payloads(self.BASE, current) == []

    def test_true_turning_false_flags(self):
        current = copy.deepcopy(self.BASE)
        current["verdicts_equal"] = False
        (regression,) = diff_payloads(self.BASE, current)
        assert "verdicts_equal" in regression

    def test_new_keys_do_not_flag(self):
        current = copy.deepcopy(self.BASE)
        current["work"]["bitset"] = {"pops": 1e9}
        assert diff_payloads(self.BASE, current) == []


class TestCompareAgainst:
    def test_missing_baseline_returns_none(self, tmp_path):
        payload = {"benchmark": "game_work", "smoke": True}
        assert compare_against(payload, str(tmp_path / "nope.json")) is None

    def test_smoke_flag_mismatch_skips_the_diff(self, tmp_path):
        baseline = {"benchmark": "game_work", "smoke": False,
                    "work": {"pops": 1.0}}
        path = write_payload(baseline, str(tmp_path))
        current = {"benchmark": "game_work", "smoke": True,
                   "work": {"pops": 1e9}}
        assert compare_against(current, path) is None

    def test_matching_smoke_flags_diff(self, tmp_path):
        baseline = {"benchmark": "game_work", "smoke": True,
                    "work": {"pops": 10.0}}
        path = write_payload(baseline, str(tmp_path))
        current = {"benchmark": "game_work", "smoke": True,
                   "work": {"pops": 100.0}}
        (regression,) = compare_against(current, path)
        assert "pops" in regression


class TestWritePayload:
    def test_writes_sorted_json_with_newline(self, tmp_path):
        payload = {"benchmark": "demo", "b": 2, "a": 1}
        path = write_payload(payload, str(tmp_path))
        assert path.endswith(bench_filename("demo"))
        text = (tmp_path / "BENCH_demo.json").read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == payload

    def test_every_bench_is_named(self):
        assert set(BENCHES) == {
            "game_work", "obs_overhead", "quantile_sketch", "compile_cache",
            "gateway_load", "incremental", "stream_enforce",
        }
