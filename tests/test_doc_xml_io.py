"""Unit tests for the Active XML serialization (Section 7 syntax)."""

import pytest

from repro.doc import Document, call, el, text
from repro.doc.xml_io import (
    INT_NS,
    document_from_xml,
    document_to_xml,
    node_from_xml,
    node_to_xml,
)
from repro.errors import DocumentParseError
from repro.workloads import newspaper


class TestSerialization:
    def test_function_node_uses_int_fun(self, doc):
        xml = doc.to_xml()
        assert "int:fun" in xml
        assert 'methodName="Get_Temp"' in xml
        assert 'endpointURL="http://www.forecast.com/soap"' in xml
        assert 'namespaceURI="urn:xmethods-weather"' in xml

    def test_namespace_declared_on_root(self, doc):
        xml = doc.to_xml()
        assert 'xmlns:int="%s"' % INT_NS in xml

    def test_params_wrapped(self, doc):
        xml = doc.to_xml()
        assert "<int:params>" in xml
        assert "<int:param>" in xml
        assert "<city>Paris</city>" in xml

    def test_empty_element_self_closes(self):
        assert node_to_xml(el("empty-el")) == "<empty-el/>"

    def test_text_escaped(self):
        xml = node_to_xml(el("a", "x < y & z"))
        assert "x &lt; y &amp; z" in xml

    def test_attribute_escaped(self):
        xml = node_to_xml(call("f", endpoint='http://x?a="1"'))
        assert "&quot;" in xml or "'" in xml


class TestRoundTrip:
    def test_newspaper_roundtrip(self, doc):
        assert Document.from_xml(doc.to_xml()) == doc

    def test_nested_calls_roundtrip(self):
        document = Document(
            el("root", call("Outer", call("Inner", el("leaf", "v"))))
        )
        assert Document.from_xml(document.to_xml()) == document

    def test_call_without_params_roundtrip(self):
        document = Document(el("root", call("NoArgs")))
        assert Document.from_xml(document.to_xml()) == document

    def test_data_param_roundtrip(self):
        document = Document(el("root", call("f", text("keyword"))))
        assert Document.from_xml(document.to_xml()) == document

    def test_compact_mode_parses_back(self, doc):
        xml = doc.to_xml(pretty=False)
        assert "\n" not in xml.splitlines()[1]
        assert Document.from_xml(xml) == doc


class TestPaperListing:
    """The exact XML listing printed in Section 7 must parse."""

    LISTING = """<?xml version="1.0"?>
<newspaper
 xmlns:int="http://www.activexml.com/ns/int">
 <title> The Sun </title>
 <date> 04/10/2002 </date>
 <int:fun
   endpointURL="http://www.forecast.com/soap"
   methodName="Get_Temp"
   namespaceURI="urn:xmethods-weather">
  <int:params>
    <int:param>
       <city>Paris</city>
    </int:param>
  </int:params>
 </int:fun>
 <int:fun
     endpointURL="http://www.timeout.com/paris"
     methodName="TimeOut"
     namespaceURI="urn:timeout-program">
  <int:params>
    <int:param> exhibits </int:param>
  </int:params>
 </int:fun>
</newspaper>"""

    def test_parses_to_figure_2a(self):
        document = document_from_xml(self.LISTING)
        assert document == newspaper.document()


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(DocumentParseError):
            node_from_xml("<a><b></a>")

    def test_fun_requires_method_name(self):
        xml = '<a xmlns:int="%s"><int:fun/></a>' % INT_NS
        with pytest.raises(DocumentParseError):
            node_from_xml(xml)

    def test_mixed_content_rejected(self):
        with pytest.raises(DocumentParseError):
            node_from_xml("<a>text<b/></a>")
        with pytest.raises(DocumentParseError):
            node_from_xml("<a><b/>tail</a>")

    def test_params_outside_fun_rejected(self):
        xml = '<a xmlns:int="%s"><int:params/></a>' % INT_NS
        with pytest.raises(DocumentParseError):
            node_from_xml(xml)

    def test_foreign_namespace_rejected(self):
        with pytest.raises(DocumentParseError):
            node_from_xml('<a xmlns="urn:other"><b/></a>')

    def test_param_with_two_trees_rejected(self):
        xml = (
            '<a xmlns:int="%s"><int:fun methodName="f"><int:params>'
            "<int:param><b/><c/></int:param>"
            "</int:params></int:fun></a>" % INT_NS
        )
        with pytest.raises(DocumentParseError):
            node_from_xml(xml)
