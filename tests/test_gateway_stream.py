"""The streaming exchange route: chunked wire framing end to end.

``POST /exchange`` with ``Content-Type: application/xml`` streams the
enforced document back with chunked framing and carries the receipt in
``X-Repro-*`` trailers.  These tests run a real gateway and speak raw
HTTP/1.1 over sockets: byte-identity with the JSON (DOM) route, chunked
request intake with its early size cap, failures surfacing in trailers
after a committed 200, and the memory block on ``/stats``.
"""

import asyncio

import pytest

from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.gateway.http import parse_chunked_response
from repro.gateway.loadgen import OBLIGATIONS, _scenario

SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML = _scenario()


def run(coro):
    return asyncio.run(coro)


async def _register(client: GatewayClient) -> None:
    reply = await client.register_peer(
        "alice", SENDER_XSD, obligations=OBLIGATIONS
    )
    assert reply.status == 201, reply.body
    reply = await client.register_peer("bob", RECEIVER_XSD)
    assert reply.status == 201, reply.body


@pytest.fixture
def gateway():
    with GatewayThread(GatewayConfig()) as harness:
        async def setup():
            client = GatewayClient(harness.host, harness.port)
            try:
                await _register(client)
            finally:
                await client.close()

        run(setup())
        yield harness


async def _raw(host, port, head: str, body: bytes) -> bytes:
    """One close-delimited request; returns the full response bytes."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        blob = b""
        while True:
            data = await asyncio.wait_for(reader.read(65536), timeout=10)
            if not data:
                return blob
            blob += data
            if b"\r\n0\r\n" in blob and blob.endswith(b"\r\n\r\n"):
                return blob  # terminal chunk + trailers seen
            head_part, sep, rest = blob.partition(b"\r\n\r\n")
            if sep and b"content-length:" in head_part.lower():
                for line in head_part.lower().split(b"\r\n"):
                    if line.startswith(b"content-length:"):
                        if len(rest) >= int(line.split(b":")[1]):
                            return blob
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _stream_head(query: str, length=None, chunked=False) -> str:
    lines = [
        "POST /exchange?%s HTTP/1.1" % query,
        "Host: gw",
        "Content-Type: application/xml",
        "Connection: close",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append("Content-Length: %d" % length)
    return "\r\n".join(lines) + "\r\n\r\n"


def _chunk_encode(data: bytes, size: int = 1000) -> bytes:
    out = b""
    for i in range(0, len(data), size):
        piece = data[i:i + size]
        out += b"%x\r\n" % len(piece) + piece + b"\r\n"
    return out + b"0\r\n\r\n"


async def _dom_reference(gateway):
    client = GatewayClient(gateway.host, gateway.port)
    try:
        reply = await client.exchange("alice", "bob", DOCUMENT_XML, seed=42)
    finally:
        await client.close()
    assert reply.status == 200, reply.body
    return reply.json()


class TestStreamedExchange:
    def test_matches_dom_route_bytes_and_receipt(self, gateway):
        async def go():
            dom = await _dom_reference(gateway)
            body = DOCUMENT_XML.encode("utf-8")
            blob = await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=bob&seed=42",
                             length=len(body)),
                body,
            )
            return dom, parse_chunked_response(blob)

        dom, (status, headers, body, trailers) = run(go())
        assert status == 200
        assert headers.get("transfer-encoding") == "chunked"
        assert body.decode("utf-8") == dom["document"]
        assert trailers.get("x-repro-ok") == "true"
        assert trailers.get("x-repro-conformant") == "false"
        assert trailers.get("x-repro-calls") == str(dom["calls"])
        assert "x-repro-cache-hits" in trailers
        assert "x-repro-cache-misses" in trailers

    def test_chunked_request_body(self, gateway):
        async def go():
            dom = await _dom_reference(gateway)
            body = DOCUMENT_XML.encode("utf-8")
            blob = await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=bob&seed=42",
                             chunked=True),
                _chunk_encode(body),
            )
            return dom, parse_chunked_response(blob)

        dom, (status, _headers, body, trailers) = run(go())
        assert status == 200
        assert body.decode("utf-8") == dom["document"]
        assert trailers.get("x-repro-ok") == "true"

    def test_oversized_chunked_upload_rejected_early(self, gateway):
        # The cap triggers on the declared chunk size, before any of the
        # data is read — an attacker cannot make the gateway buffer it.
        cap = GatewayConfig().max_body_bytes

        async def go():
            return await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=bob", chunked=True),
                b"%x\r\n" % (cap + 1),
            )

        blob = run(go())
        assert b"413" in blob.split(b"\r\n", 1)[0]

    def test_unparseable_body_fails_in_trailers(self, gateway):
        # The 200 is committed before enforcement runs; mid-stream
        # failure travels in the trailers and the body must be discarded.
        async def go():
            bad = b"<newspaper><unclosed>"
            return await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=bob", length=len(bad)),
                bad,
            )

        status, _headers, _body, trailers = parse_chunked_response(run(go()))
        assert status == 200
        assert trailers.get("x-repro-ok") == "false"
        assert "unparseable" in trailers.get("x-repro-error", "")

    def test_possible_mode_rejected(self, gateway):
        async def go():
            body = DOCUMENT_XML.encode("utf-8")
            return await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=bob&mode=possible",
                             length=len(body)),
                body,
            )

        assert b"400" in run(go()).split(b"\r\n", 1)[0]

    def test_unknown_peer_rejected(self, gateway):
        async def go():
            body = DOCUMENT_XML.encode("utf-8")
            return await _raw(
                gateway.host, gateway.port,
                _stream_head("sender=alice&receiver=nobody",
                             length=len(body)),
                body,
            )

        head = run(go()).split(b"\r\n", 1)[0]
        assert b"404" in head or b"400" in head


class TestStatsMemory:
    def test_stats_reports_peak_rss(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.request("GET", "/stats")
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 200
        memory = reply.json()["memory"]
        assert memory["peak_rss_bytes"] > 0
