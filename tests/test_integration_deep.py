"""Deeper integration tests: nested outputs, fault injection, peer chains."""

import pytest

from repro import (
    AXMLPeer,
    Document,
    FunctionSignature,
    PeerNetwork,
    RewriteEngine,
    SchemaBuilder,
    SchemaEnforcer,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    flaky_responder,
    is_instance,
    parse_regex,
    text,
)
from repro.doc.builder import call
from repro.errors import ServiceFault
from repro.workloads import newspaper


def fully_extensional_schema():
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.temp.exhibit*")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.date")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build(strict=False)
    )


def registry_with_intensional_exhibits():
    """TimeOut returns an exhibit that itself embeds a Get_Date call."""
    registry = ServiceRegistry()
    forecast = Service("http://forecast", "urn:w")
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    timeout = Service("http://timeout", "urn:t")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(
            (el("exhibit", el("title", "P"),
                call("Get_Date", el("title", "P"))),)
        ),
    )
    dates = Service("http://dates", "urn:d")
    dates.add_operation(
        "Get_Date",
        FunctionSignature(parse_regex("title"), parse_regex("date")),
        constant_responder((el("date", "04/12"),)),
    )
    registry.register(forecast).register(timeout).register(dates)
    return registry


class TestNestedIntensionalOutputs:
    def test_calls_inside_returned_subtrees_are_materialized(self):
        """The engine's top-down stage descends into elements returned by
        invoked calls: the Get_Date nested INSIDE TimeOut's exhibit must
        also be invoked when the target is fully extensional."""
        registry = registry_with_intensional_exhibits()
        target = fully_extensional_schema()
        engine = RewriteEngine(
            target, newspaper.schema_star(), k=1, mode="possible"
        )
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        assert is_instance(result.document, target)
        assert result.document.is_extensional()
        assert sorted(result.log.invoked) == ["Get_Date", "Get_Temp", "TimeOut"]

    def test_nested_call_kept_when_target_allows(self):
        registry = registry_with_intensional_exhibits()
        target = newspaper.schema_star3()  # exhibit = title.(Get_Date | date)
        engine = RewriteEngine(
            target, newspaper.schema_star(), k=1, mode="possible"
        )
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        assert is_instance(result.document, target, newspaper.schema_star())
        # Get_Date may stay: only the outer two calls fire.
        assert sorted(result.log.invoked) == ["Get_Temp", "TimeOut"]
        assert result.document.function_count() == 1


class TestFaultInjection:
    def make_flaky_registry(self, fail_every):
        registry = ServiceRegistry()
        forecast = Service("http://forecast", "urn:w")
        forecast.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            flaky_responder(
                constant_responder((el("temp", "15"),)), fail_every
            ),
        )
        timeout = Service("http://timeout", "urn:t")
        timeout.add_operation(
            "TimeOut",
            FunctionSignature(
                parse_regex("data"), parse_regex("(exhibit | performance)*")
            ),
            constant_responder(()),
        )
        registry.register(forecast).register(timeout)
        return registry

    def test_fault_becomes_enforcement_error(self):
        registry = self.make_flaky_registry(fail_every=1)
        enforcer = SchemaEnforcer(
            newspaper.schema_star2(), newspaper.schema_star(), k=1
        )
        outcome = enforcer.enforce_document(
            newspaper.document(), registry.make_invoker()
        )
        assert not outcome.ok
        assert "outage" in outcome.error

    def test_fault_becomes_failed_receipt(self):
        registry = self.make_flaky_registry(fail_every=1)
        alice = AXMLPeer("alice", newspaper.schema_star())
        for service in registry.services.values():
            alice.registry.register(service)
        bob = AXMLPeer("bob", newspaper.schema_star2())
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", newspaper.schema_star2())
        alice.repository.store("front", newspaper.document())
        receipt = network.send("alice", "bob", "front")
        assert not receipt.accepted
        assert "outage" in receipt.error
        assert "front" not in bob.repository

    def test_second_attempt_succeeds_when_service_recovers(self):
        registry = self.make_flaky_registry(fail_every=2)  # fails 2nd call
        enforcer = SchemaEnforcer(
            newspaper.schema_star2(), newspaper.schema_star(), k=1
        )
        first = enforcer.enforce_document(
            newspaper.document(), registry.make_invoker()
        )
        assert first.ok  # call #1 succeeds
        second = enforcer.enforce_document(
            newspaper.document(), registry.make_invoker()
        )
        assert not second.ok  # call #2 faults


class TestPeerChain:
    def test_three_peer_relay(self):
        """A → B under (**), then B re-exports to C fully extensional:
        the remaining TimeOut call is materialized at the second hop."""
        registry = registry_with_intensional_exhibits()
        star, star2 = newspaper.schema_star(), newspaper.schema_star2()
        extensional = fully_extensional_schema()

        alice = AXMLPeer("alice", star)
        bob = AXMLPeer("bob", star2, mode="possible")
        carol = AXMLPeer("carol", extensional)
        for service in registry.services.values():
            alice.registry.register(service)
            bob.registry.register(service)

        network = PeerNetwork()
        for peer in (alice, bob, carol):
            network.add_peer(peer)
        network.agree("alice", "bob", star2)
        network.agree("bob", "carol", extensional)

        alice.repository.store("front", newspaper.document())
        first = network.send("alice", "bob", "front")
        assert first.accepted and first.calls_materialized == 1

        second = network.send("bob", "carol", "front")
        assert second.accepted
        # Bob had to fire TimeOut and the nested Get_Date.
        assert second.calls_materialized == 2
        final = carol.repository.get("front")
        assert final.is_extensional()
        assert is_instance(final, extensional)

    def test_wire_bytes_shrink_along_the_chain(self):
        registry = registry_with_intensional_exhibits()
        star, star2 = newspaper.schema_star(), newspaper.schema_star2()
        extensional = fully_extensional_schema()
        alice = AXMLPeer("alice", star)
        bob = AXMLPeer("bob", star2, mode="possible")
        carol = AXMLPeer("carol", extensional)
        for service in registry.services.values():
            alice.registry.register(service)
            bob.registry.register(service)
        network = PeerNetwork()
        for peer in (alice, bob, carol):
            network.add_peer(peer)
        network.agree("alice", "bob", star2)
        network.agree("bob", "carol", extensional)
        alice.repository.store("front", newspaper.document())
        r1 = network.send("alice", "bob", "front")
        r2 = network.send("bob", "carol", "front")
        # Materialized exhibits are compact; the verbose int:fun wrappers
        # dominate wire size, so bytes drop at each materialization hop.
        assert r2.bytes_on_wire < r1.bytes_on_wire
