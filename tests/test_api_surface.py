"""The public API surface stays importable and coherent."""

import repro


class TestPublicSurface:
    def test_every_all_entry_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_subpackage_alls_resolve(self):
        import repro.automata
        import repro.axml
        import repro.doc
        import repro.regex
        import repro.rewriting
        import repro.schema
        import repro.schemarewrite
        import repro.services
        import repro.xschema

        for module in (
            repro.doc, repro.regex, repro.automata, repro.schema,
            repro.rewriting, repro.schemarewrite, repro.services,
            repro.xschema, repro.axml,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__, name,
                )

    def test_version(self):
        assert repro.__version__ == "1.0.0"
