"""Unit tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    install,
    metrics,
    observing,
    render_span_dicts,
    spans_from_jsonl,
    tracer,
    uninstall,
)
from repro.obs.metrics import TIME_BUCKETS
from repro.services.resilience import SimulatedClock


class TestSpans:
    def test_nesting_and_ids_are_deterministic(self):
        t = Tracer(clock=SimulatedClock())
        with t.span("exchange", sender="alice") as outer:
            t.clock.sleep(1.0)
            with t.span("document", mode="safe") as inner:
                t.clock.sleep(0.5)
            outer.set(accepted=True)
        spans = {span.name: span for span in t.finished()}
        assert spans["exchange"].span_id == 1
        assert spans["exchange"].parent_id is None
        assert spans["document"].span_id == 2
        assert spans["document"].parent_id == 1
        assert spans["document"].duration == 0.5
        assert spans["exchange"].duration == 1.5
        assert spans["exchange"].attributes["accepted"] is True

    def test_identical_runs_produce_identical_traces(self):
        def run():
            t = Tracer(clock=SimulatedClock())
            with t.span("document"):
                t.clock.sleep(0.25)
                with t.span("node", word="a.b"):
                    t.clock.sleep(0.125)
                t.event("retry", delay=0.5)
            out = io.StringIO()
            t.export_jsonl(out)
            return out.getvalue()

        assert run() == run()

    def test_children_finish_before_parents_in_sink(self):
        t = Tracer(clock=SimulatedClock())
        with t.span("parent"):
            with t.span("child"):
                pass
        names = [span.name for span in t.finished()]
        assert names == ["child", "parent"]

    def test_events_attach_to_current_span(self):
        t = Tracer(clock=SimulatedClock())
        with t.span("invoke") as span:
            t.clock.sleep(2.0)
            t.event("fault", kind="transient")
        assert len(span.events) == 1
        event = span.events[0]
        assert event.name == "fault"
        assert event.time == 2.0
        assert event.attributes == {"kind": "transient"}

    def test_exception_marks_span_and_propagates(self):
        t = Tracer(clock=SimulatedClock())
        with pytest.raises(ValueError):
            with t.span("node"):
                raise ValueError("boom")
        (span,) = t.finished()
        assert span.attributes["error"] == "boom"
        assert span.end is not None

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(clock=SimulatedClock(), capacity=3)
        for index in range(5):
            with t.span("s%d" % index):
                pass
        assert t.dropped == 2
        assert [span.name for span in t.finished()] == ["s2", "s3", "s4"]

    def test_profiling_hook_sees_every_finished_span(self):
        seen = []
        t = Tracer(clock=SimulatedClock(), on_span_end=seen.append)
        with t.span("a"):
            with t.span("b"):
                pass
        assert [span.name for span in seen] == ["b", "a"]


class TestJsonlRoundTrip:
    def test_export_and_reparse(self, tmp_path):
        t = Tracer(clock=SimulatedClock())
        with t.span("document", mode="safe"):
            t.clock.sleep(1.0)
            with t.span("node", word="title"):
                t.clock.sleep(0.5)
        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(str(path)) == 2
        spans = spans_from_jsonl(path.read_text())
        assert [span["name"] for span in spans] == ["document", "node"]
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        assert spans[1]["duration"] == 0.5
        assert spans[0]["attributes"] == {"mode": "safe"}

    def test_rendered_tree_matches_live_rendering(self):
        t = Tracer(clock=SimulatedClock())
        with t.span("document"):
            with t.span("node", word="a"):
                pass
            with t.span("node", word="b"):
                pass
        out = io.StringIO()
        t.export_jsonl(out)
        rendered = render_span_dicts(spans_from_jsonl(out.getvalue()))
        assert rendered == t.render_tree()
        assert "├─ node" in rendered and "└─ node" in rendered

    def test_orphan_spans_render_as_roots(self):
        spans = [
            {"span_id": 7, "parent_id": 3, "name": "stray",
             "duration": 0.5, "attributes": {}},
        ]
        assert render_span_dicts(spans).startswith("stray")


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("calls", "calls made").inc(function="f")
        registry.counter("calls").inc(2.0, function="f")
        registry.gauge("depth").set(4)
        registry.histogram("sizes").observe(3)
        registry.histogram("sizes").observe(70)
        assert registry.counter("calls").value(function="f") == 3.0
        assert registry.gauge("depth").value() == 4.0
        assert registry.histogram("sizes").count() == 2
        assert registry.histogram("sizes").sum() == 73.0

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_calls_total", "Calls").inc(function="Get_Temp")
        registry.histogram("repro_sizes", "Sizes", (1.0, 10.0)).observe(5)
        text = registry.to_prometheus()
        assert "# HELP repro_calls_total Calls" in text
        assert "# TYPE repro_calls_total counter" in text
        assert 'repro_calls_total{function="Get_Temp"} 1' in text
        assert 'repro_sizes_bucket{le="1"} 0' in text
        assert 'repro_sizes_bucket{le="10"} 1' in text
        assert 'repro_sizes_bucket{le="+Inf"} 1' in text
        assert "repro_sizes_sum 5" in text
        assert "repro_sizes_count 1" in text

    def test_jsonl_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(3, mode="safe")
        registry.gauge("g").set(2.5)
        registry.histogram("h", "sizes", (1.0, 5.0)).observe(4)
        rebuilt = MetricsRegistry.from_jsonl(registry.to_jsonl())
        assert rebuilt.to_jsonl() == registry.to_jsonl()
        assert rebuilt.to_prometheus() == registry.to_prometheus()
        assert rebuilt.counter("c").value(mode="safe") == 3.0
        assert rebuilt.histogram("h").count() == 1

    def test_summary_is_human_readable(self):
        registry = MetricsRegistry()
        registry.counter("repro_calls_total").inc(2, function="f")
        registry.histogram("repro_sizes").observe(10)
        summary = registry.summary()
        assert 'repro_calls_total{function="f"}: 2' in summary
        assert "repro_sizes: count=1 sum=10 mean=10" in summary

    def test_histogram_overflow_lands_in_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "sizes", (1.0, 5.0))
        histogram.observe(3)
        histogram.observe(1000)  # above every finite bound
        key = ()
        assert histogram.counts[key] == [0, 1, 2]  # le=1, le=5, le=+Inf
        assert histogram.count() == 2
        text = registry.to_prometheus()
        assert 'h_bucket{le="5"} 1' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_histogram_quantiles_from_sketch(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value), mode="safe")
        assert histogram.quantile(0.5, mode="safe") == pytest.approx(
            50.5, rel=0.05
        )
        estimates = histogram.quantiles(mode="safe")
        assert set(estimates) == {0.5, 0.95, 0.99}
        # An unseen label set has no sketch: quantiles are None.
        assert histogram.quantile(0.5, mode="possible") is None

    def test_jsonl_round_trip_with_labeled_histograms(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "sizes", (1.0, 5.0))
        for mode, values in (("safe", [0.5, 3.0, 99.0]),
                             ("possible", [2.0, 4.0])):
            for value in values:
                histogram.observe(value, mode=mode)
        rebuilt = MetricsRegistry.from_jsonl(registry.to_jsonl())
        assert rebuilt.to_jsonl() == registry.to_jsonl()
        again = rebuilt.histogram("h")
        assert again.count(mode="safe") == 3
        assert again.count(mode="possible") == 2
        # The +Inf slot and the quantile sketch both survive the trip.
        assert again.counts[(("mode", "safe"),)][-1] == 3
        assert again.quantiles(mode="safe") == histogram.quantiles(mode="safe")

    def test_from_jsonl_accepts_legacy_records_without_inf_slot(self):
        # Records written before the explicit overflow bucket carry one
        # count per finite bound; the cumulative +Inf slot is the total.
        legacy = (
            '{"buckets": [1.0, 5.0], "count": 3, "counts": [1, 2], '
            '"help": "", "labels": {}, "name": "h", "sum": 9.0, '
            '"type": "histogram"}\n'
        )
        registry = MetricsRegistry.from_jsonl(legacy)
        histogram = registry.histogram("h")
        assert histogram.counts[()] == [1, 2, 3]
        assert histogram.count() == 3
        assert histogram.quantile(0.5) is None  # no sketch to restore

    def test_summary_shows_quantiles_for_single_series(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.histogram("h").observe(float(value))
        summary = registry.summary()
        assert "p50=" in summary and "p95=" in summary and "p99=" in summary
        # A second label set makes quantiles non-aggregatable: hidden.
        registry.histogram("h").observe(1.0, mode="x")
        assert "p50=" not in registry.summary()

    def test_span_observer_bridges_durations(self):
        registry = MetricsRegistry()
        t = Tracer(clock=SimulatedClock(), on_span_end=registry.span_observer())
        with t.span("document"):
            t.clock.sleep(0.01)
        assert registry.counter("repro_spans_total").value(name="document") == 1
        histogram = registry.histogram("repro_span_seconds")
        assert histogram.count(name="document") == 1
        assert histogram.sum(name="document") == pytest.approx(0.01)
        assert histogram.buckets == tuple(sorted(TIME_BUCKETS))


class TestNullObjects:
    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", word="w")
        with span as inner:
            assert inner is span
            inner.set(foo=1)
        NULL_TRACER.event("fault")
        assert NULL_TRACER.finished() == ()
        assert NULL_TRACER.export_jsonl(io.StringIO()) == 0
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_metrics_are_inert(self):
        NULL_METRICS.counter("c", "help").inc(5, label="x")
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.histogram("h", buckets=(1.0,)).observe(2)
        assert NULL_METRICS.to_prometheus() == ""
        assert NULL_METRICS.names() == []
        assert not NULL_METRICS.enabled

    def test_defaults_are_null(self):
        uninstall()
        assert isinstance(tracer(), NullTracer)
        assert isinstance(metrics(), NullMetricsRegistry)


class TestContext:
    def test_install_and_uninstall(self):
        t, m = Tracer(clock=SimulatedClock()), MetricsRegistry()
        install(t, m)
        try:
            assert tracer() is t
            assert metrics() is m
        finally:
            uninstall()
        assert isinstance(tracer(), NullTracer)

    def test_install_bridges_tracer_to_metrics(self):
        t, m = Tracer(clock=SimulatedClock()), MetricsRegistry()
        install(t, m)
        try:
            with t.span("node"):
                t.clock.sleep(0.5)
            assert m.counter("repro_spans_total").value(name="node") == 1
        finally:
            uninstall()

    def test_bridge_is_wired_once_per_pair(self):
        t, m = Tracer(clock=SimulatedClock()), MetricsRegistry()
        install(t, m)
        install(t, m)  # idempotent: re-install must not double-count
        try:
            with t.span("node"):
                pass
            assert m.counter("repro_spans_total").value(name="node") == 1
        finally:
            uninstall()

    def test_observing_restores_previous_state(self):
        t = Tracer(clock=SimulatedClock())
        with observing(t):
            assert tracer() is t
            with t.span("inner"):
                pass
        assert isinstance(tracer(), NullTracer)
        assert len(t.finished()) == 1

    def test_observing_creates_defaults(self):
        with observing() as (t, m):
            assert t.enabled and m.enabled
            with t.span("x"):
                pass
            assert m.counter("repro_spans_total").value(name="x") == 1


class TestConcurrency:
    """Regression: the tracer and metrics are shared across the
    scheduler's worker threads — parenting must stay per-thread and
    counters must not lose increments."""

    def test_concurrent_spans_never_interleave_parents(self):
        import threading

        t = Tracer(clock=SimulatedClock())
        n = 8
        barrier = threading.Barrier(n)

        def worker(idx):
            with t.span("outer", idx=idx):
                barrier.wait(timeout=10)  # all outers open at once
                with t.span("inner", idx=idx):
                    barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        spans = t.finished()
        assert len(spans) == 2 * n
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name == "inner":
                parent = by_id[span.parent_id]
                # each inner hangs off *its own thread's* outer, never
                # a concurrently open span of another thread
                assert parent.name == "outer"
                assert parent.attributes["idx"] == span.attributes["idx"]
            else:
                assert span.parent_id is None

    def test_threads_do_not_inherit_the_main_threads_span(self):
        import threading

        t = Tracer(clock=SimulatedClock())
        recorded = []
        with t.span("main-work"):

            def worker():
                with t.span("detached") as span:
                    pass
                recorded.append(span)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=10)
        (detached,) = [s for s in t.finished() if s.name == "detached"]
        assert detached.parent_id is None

    def test_explicit_parent_id_crosses_threads(self):
        import threading

        t = Tracer(clock=SimulatedClock())
        with t.span("wave") as wave:
            wave_id = wave.span_id

            def worker():
                with t.span("task", parent_id=wave_id):
                    pass

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        tasks = [s for s in t.finished() if s.name == "task"]
        assert len(tasks) == 4
        assert all(s.parent_id == wave_id for s in tasks)

    def test_counters_and_histograms_lose_no_updates(self):
        import threading

        m = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                m.counter("c", "test").inc(kind="x")
                m.histogram("h", "test").observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert m.counter("c", "test").value(kind="x") == n_threads * per_thread
        assert m.histogram("h", "test").count() == n_threads * per_thread
