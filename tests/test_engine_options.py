"""Tests for the engine's configuration knobs: eager pre-pass, eager vs
lazy solver, and rewrite_forest as a standalone entry point."""

import pytest

from repro import RewriteEngine, is_instance, parse_regex
from repro.doc import call, el, text
from repro.workloads import newspaper


class TestEagerPrePass:
    def test_document_level_mixed_approach(self, schema_star, registry):
        """With an eager predicate, the engine pre-materializes TimeOut
        before solving, making the otherwise-unsafe (***) reachable."""
        target = newspaper.schema_star3()
        plain = RewriteEngine(target, schema_star, k=1)
        assert not plain.can_rewrite(newspaper.document())

        mixed = RewriteEngine(
            target, schema_star, k=1,
            eager=lambda name: name == "TimeOut",
        )
        result = mixed.rewrite(newspaper.document(), registry.make_invoker())
        assert is_instance(result.document, target, schema_star)
        assert sorted(result.log.invoked) == ["Get_Temp", "TimeOut"]
        assert result.mode_used == "safe"  # no possible-fallback needed

    def test_eager_predicate_scoped_by_name(self, schema_star, registry):
        engine = RewriteEngine(
            newspaper.schema_star(), schema_star,
            eager=lambda name: name == "Get_Temp",
        )
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        # Get_Temp fires in the pre-pass even though (*) would keep it.
        assert result.log.invoked == ["Get_Temp"]
        assert is_instance(result.document, newspaper.schema_star(), schema_star)


class TestSolverSelection:
    @pytest.mark.parametrize("lazy", [True, False])
    def test_same_results_either_solver(self, lazy, schema_star, registry):
        engine = RewriteEngine(
            newspaper.schema_star2(), schema_star, k=1, lazy=lazy
        )
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        assert result.log.invoked == ["Get_Temp"]

    @pytest.mark.parametrize("lazy", [True, False])
    def test_same_refusals_either_solver(self, lazy, schema_star):
        engine = RewriteEngine(
            newspaper.schema_star3(), schema_star, k=1, lazy=lazy
        )
        assert not engine.can_rewrite(newspaper.document())


class TestRewriteForestEntryPoint:
    def test_forest_against_explicit_type(self, schema_star, registry):
        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        forest = (call("Get_Temp", el("city", "Paris")),)
        rewritten = engine.rewrite_forest(
            forest, parse_regex("temp"), registry.make_invoker()
        )
        assert [n.label for n in rewritten] == ["temp"]

    def test_forest_with_multiple_trees(self, schema_star, registry):
        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        forest = (
            el("title", "t"),
            el("date", "d"),
            call("Get_Temp", el("city", "P")),
            call("TimeOut", text("x")),
        )
        rewritten = engine.rewrite_forest(
            forest,
            parse_regex("title.date.temp.(TimeOut | exhibit*)"),
            registry.make_invoker(),
        )
        symbols = [getattr(n, "label", getattr(n, "name", None))
                   for n in rewritten]
        assert symbols == ["title", "date", "temp", "TimeOut"]

    def test_forest_stats_threaded(self, schema_star, registry):
        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        stats = {"words": 0, "product": 0, "mode": "safe"}
        from repro.rewriting.plan import InvocationLog

        log = InvocationLog()
        engine.rewrite_forest(
            (el("temp", "1"),), parse_regex("temp"),
            registry.make_invoker(), log=log, stats=stats,
        )
        assert stats["words"] >= 1
        assert not log.records
