"""Unit tests for the resilient invocation layer (retries, breakers, clocks).

Covers the fault taxonomy (and its survival across the SOAP round-trip),
retry/backoff accounting, the per-endpoint circuit breaker state machine,
deadlines/budgets/timeouts on simulated clocks, and the guarantee that the
whole layer is deterministic under a fixed jitter seed.
"""

import pytest

from repro import (
    CircuitBreaker,
    FunctionSignature,
    ResiliencePolicy,
    ResilientInvoker,
    Service,
    ServiceRegistry,
    SimulatedClock,
    call,
    constant_responder,
    el,
    flaky_responder,
    latency_responder,
    outage_responder,
    parse_regex,
)
from repro.errors import (
    FunctionUnavailableError,
    PermanentFault,
    ServiceFault,
    TransientFault,
)
from repro.services.resilience import CLOSED, HALF_OPEN, OPEN, is_transient


SIG = FunctionSignature(parse_regex("city"), parse_regex("temp"))
TEMP = (el("temp", "15"),)


def registry_with(handler, operation="Get_Temp"):
    service = Service("http://www.forecast.com/soap", "urn:xmethods-weather")
    service.add_operation(operation, SIG, handler)
    return ServiceRegistry().register(service), service


class TestFaultTaxonomy:
    def test_typed_faults_answer_for_themselves(self):
        assert is_transient(TransientFault("busy"))
        assert not is_transient(PermanentFault("bad request"))

    def test_plain_faults_classified_by_code(self):
        assert is_transient(ServiceFault("boom"))  # default: Server
        assert is_transient(ServiceFault("boom", fault_code="Server"))
        assert not is_transient(ServiceFault("no", fault_code="Client"))
        assert not is_transient(
            ServiceFault("gone", fault_code="Server.Unavailable")
        )
        assert not is_transient(
            ServiceFault("never", fault_code="Server.Permanent")
        )

    def test_function_unavailable_is_permanent(self):
        fault = FunctionUnavailableError("f", "ep", "dead")
        assert isinstance(fault, PermanentFault)
        assert fault.fault_code == "Server.Unavailable"
        assert not is_transient(fault)

    def test_taxonomy_survives_soap_round_trip(self):
        def transient(_params):
            raise TransientFault("come back later")

        registry, _service = registry_with(transient)
        with pytest.raises(TransientFault):
            registry.invoke(call("Get_Temp", el("city", "Paris")))

    def test_permanent_code_survives_soap_round_trip(self):
        # outage_responder can script permanent rejections by fault code;
        # the client-side typed class is reconstructed from the wire code.
        handler = outage_responder(
            constant_responder(TEMP), [(1, 99)], fault_code="Client"
        )
        registry, _service = registry_with(handler)
        with pytest.raises(PermanentFault):
            registry.invoke(call("Get_Temp", el("city", "Paris")))


class TestServiceFaultWrapping:
    """Satellite fix: arbitrary handler exceptions become SOAP faults."""

    def test_raw_exception_becomes_server_fault(self):
        def broken(_params):
            raise ValueError("handler bug")

        _registry, service = registry_with(broken)
        with pytest.raises(ServiceFault) as exc_info:
            service.invoke("Get_Temp", (el("city", "Paris"),))
        assert exc_info.value.fault_code == "Server"
        assert "handler bug" in str(exc_info.value)
        assert service.calls[-1].faulted

    def test_raw_exception_crosses_soap_boundary_as_fault(self):
        def broken(_params):
            raise RuntimeError("oops")

        registry, _service = registry_with(broken)
        with pytest.raises(ServiceFault) as exc_info:
            registry.invoke(call("Get_Temp", el("city", "Paris")))
        assert "oops" in str(exc_info.value)
        # Classified as retriable: the server crashed, the request was fine.
        assert is_transient(exc_info.value)


class TestRetries:
    def test_retry_recovers_within_budget(self):
        registry, service = registry_with(
            flaky_responder(constant_responder(TEMP), fail_every=2)
        )
        invoker = registry.make_invoker(resilience=ResiliencePolicy())

        fc = call("Get_Temp", el("city", "Paris"))
        assert [n.label for n in invoker(fc)] == ["temp"]  # call #1 fine
        assert [n.label for n in invoker(fc)] == ["temp"]  # #2 faults, #3 ok

        report = invoker.report
        assert report.calls == 2
        assert report.attempts == 3
        assert report.retries == 1
        assert report.transient_faults == 1
        assert report.recovered_calls == 1
        assert report.backoff_seconds > 0
        assert report.faults_by_function == {"Get_Temp": 1}
        assert report.retries_by_function == {"Get_Temp": 1}
        # The service saw all three physical attempts, one faulted.
        assert len(service.calls) == 3
        assert [record.faulted for record in service.calls] == [
            False, True, False,
        ]

    def test_permanent_fault_is_not_retried(self):
        def reject(_params):
            raise ServiceFault("malformed city", fault_code="Client")

        registry, service = registry_with(reject)
        invoker = registry.make_invoker(resilience=ResiliencePolicy())
        with pytest.raises(FunctionUnavailableError):
            invoker(call("Get_Temp", el("city", "Paris")))
        assert invoker.report.attempts == 1
        assert invoker.report.retries == 0
        assert invoker.report.permanent_faults == 1
        assert len(service.calls) == 1

    def test_exhausted_retries_mark_function_dead(self):
        registry, service = registry_with(
            flaky_responder(constant_responder(TEMP), fail_every=1)
        )
        policy = ResiliencePolicy(max_attempts=3, breaker_threshold=99)
        invoker = registry.make_invoker(resilience=policy)
        fc = call("Get_Temp", el("city", "Paris"))
        with pytest.raises(FunctionUnavailableError) as exc_info:
            invoker(fc)
        assert "retries exhausted" in exc_info.value.reason
        assert invoker.report.attempts == 3
        assert invoker.report.dead_functions == ["Get_Temp"]

        # A later ask for the same function fails fast: the service is
        # not touched again within this exchange.
        with pytest.raises(FunctionUnavailableError):
            invoker(fc)
        assert len(service.calls) == 3
        assert invoker.report.calls == 2


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        assert breaker.state == CLOSED and breaker.allow(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == OPEN and breaker.opens == 1
        assert not breaker.allow(3.0)  # still cooling down
        assert breaker.allow(7.0)  # cooldown elapsed: probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_failure(7.5)  # failed probe reopens instantly
        assert breaker.state == OPEN and breaker.opens == 2
        assert breaker.allow(13.0)
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.consecutive_failures == 0

    def test_breaker_opens_and_shields_the_endpoint(self):
        service = Service("http://www.forecast.com/soap")
        service.add_operation(
            "Get_Temp", SIG,
            flaky_responder(constant_responder(TEMP), fail_every=1),
        )
        service.add_operation("Get_Humidity", SIG, constant_responder(TEMP))
        registry = ServiceRegistry().register(service)
        policy = ResiliencePolicy(
            max_attempts=2, breaker_threshold=2, breaker_cooldown=60.0
        )
        invoker = registry.make_invoker(resilience=policy)

        with pytest.raises(FunctionUnavailableError):
            invoker(call("Get_Temp", el("city", "Paris")))
        assert invoker.report.breaker_opens == 1
        breaker = invoker.breaker_for("http://www.forecast.com/soap")
        assert breaker.state == OPEN

        # A *different* function on the same endpoint is rejected fast:
        # both attempts bounce off the open breaker, no service call.
        calls_before = len(service.calls)
        with pytest.raises(FunctionUnavailableError):
            invoker(call("Get_Humidity", el("city", "Paris")))
        assert len(service.calls) == calls_before
        assert invoker.report.breaker_rejections == 2

    def test_half_open_probe_recovers(self):
        registry, service = registry_with(
            outage_responder(constant_responder(TEMP), [(1, 2)])
        )
        policy = ResiliencePolicy(
            max_attempts=4, breaker_threshold=2, breaker_cooldown=0.01
        )
        invoker = registry.make_invoker(resilience=policy)
        forest = invoker(call("Get_Temp", el("city", "Paris")))
        assert [n.label for n in forest] == ["temp"]
        report = invoker.report
        assert report.attempts == 3  # fault, fault (opens), probe succeeds
        assert report.breaker_opens == 1
        assert report.recovered_calls == 1
        breaker = invoker.breaker_for("http://www.forecast.com/soap")
        assert breaker.state == CLOSED


class TestDeadlinesAndBudgets:
    def test_call_timeout_observes_injected_latency(self):
        clock = SimulatedClock()
        handler = latency_responder(
            constant_responder(TEMP),
            lambda index: 5.0 if index == 1 else 0.0,
            clock,
        )
        registry, _service = registry_with(handler)
        policy = ResiliencePolicy(call_timeout=1.0)
        invoker = registry.make_invoker(resilience=policy, clock=clock)
        forest = invoker(call("Get_Temp", el("city", "Paris")))
        assert [n.label for n in forest] == ["temp"]
        assert invoker.report.timeouts == 1
        assert invoker.report.retries == 1
        assert invoker.report.recovered_calls == 1

    def test_document_deadline_expires(self):
        clock = SimulatedClock()
        handler = latency_responder(constant_responder(TEMP), 1.0, clock)
        registry, _service = registry_with(handler)
        policy = ResiliencePolicy(document_deadline=0.5)
        invoker = registry.make_invoker(resilience=policy, clock=clock)
        fc = call("Get_Temp", el("city", "Paris"))
        invoker(fc)  # first call finishes (started inside the deadline)
        with pytest.raises(FunctionUnavailableError) as exc_info:
            invoker(fc)
        assert "deadline" in exc_info.value.reason
        assert invoker.report.deadline_expirations == 1

    def test_call_budget_caps_physical_attempts(self):
        registry, service = registry_with(
            flaky_responder(constant_responder(TEMP), fail_every=1)
        )
        policy = ResiliencePolicy(
            max_attempts=10, call_budget=2, breaker_threshold=99
        )
        invoker = registry.make_invoker(resilience=policy)
        with pytest.raises(FunctionUnavailableError) as exc_info:
            invoker(call("Get_Temp", el("city", "Paris")))
        assert "budget" in exc_info.value.reason
        assert invoker.report.budget_denials == 1
        assert len(service.calls) == 2


class TestDeterminism:
    def run_once(self, jitter_seed):
        registry, _service = registry_with(
            flaky_responder(constant_responder(TEMP), fail_every=2)
        )
        policy = ResiliencePolicy(jitter_seed=jitter_seed)
        invoker = registry.make_invoker(resilience=policy)
        fc = call("Get_Temp", el("city", "Paris"))
        for _ in range(4):
            invoker(fc)
        return invoker.report

    def test_same_seed_same_backoffs(self):
        first, second = self.run_once(0), self.run_once(0)
        assert first.backoff_seconds == second.backoff_seconds
        assert first.retries == second.retries == 3

    def test_different_seed_different_jitter(self):
        assert self.run_once(0).backoff_seconds != self.run_once(1).backoff_seconds


class TestResponderValidation:
    def test_outage_windows_validated(self):
        with pytest.raises(ValueError):
            outage_responder(constant_responder(TEMP), [(0, 2)])
        with pytest.raises(ValueError):
            outage_responder(constant_responder(TEMP), [(3, 2)])

    def test_flaky_cadence_validated(self):
        with pytest.raises(ValueError):
            flaky_responder(constant_responder(TEMP), fail_every=0)

    def test_latency_constant_delay_advances_clock(self):
        clock = SimulatedClock()
        handler = latency_responder(constant_responder(TEMP), 2.5, clock)
        assert handler(()) == TEMP
        assert clock.now() == 2.5


class TestClocks:
    def test_simulated_clock_sleep_is_instant_but_counted(self):
        clock = SimulatedClock(start=10.0)
        clock.sleep(3.0)
        clock.sleep(-1.0)  # negative sleeps are ignored
        assert clock.now() == 13.0


class TestJitterIsPerCall:
    """The backoff RNG is derived from ``(jitter_seed, call
    fingerprint)``, not shared — so the jitter a given call sees does
    not depend on which other calls ran first, on which thread it ran,
    or on the worker count of the scheduler above."""

    @staticmethod
    def fail_first_attempt_per_city():
        """Fault the first attempt of each distinct city, then answer."""
        import threading

        seen = set()
        lock = threading.Lock()

        def responder(params):
            city = params[0].children[0].value
            with lock:
                if city not in seen:
                    seen.add(city)
                    raise TransientFault("cold cache for %s" % city)
            return TEMP

        return responder

    def backoffs(self, order):
        registry, _service = registry_with(self.fail_first_attempt_per_city())
        invoker = registry.make_invoker(
            resilience=ResiliencePolicy(jitter_seed=7)
        )
        for city in order:
            invoker(call("Get_Temp", el("city", city)))
        return invoker.report

    def test_backoff_total_is_order_invariant(self):
        cities = ["Paris", "London", "Rome", "Berlin"]
        forward = self.backoffs(cities)
        backward = self.backoffs(list(reversed(cities)))
        assert forward.retries == backward.retries == 4
        # the four per-call delays are identical; only the float
        # summation order differs between the two runs
        assert forward.backoff_seconds == pytest.approx(
            backward.backoff_seconds, rel=1e-12
        )

    def test_distinct_calls_get_distinct_jitter(self):
        paris = self.backoffs(["Paris"]).backoff_seconds
        rome = self.backoffs(["Rome"]).backoff_seconds
        assert paris != rome

    def test_backoffs_identical_across_worker_counts(self):
        from repro import RewriteEngine
        from repro.workloads import newspaper

        def run(workers):
            registry = ServiceRegistry()
            service = Service(
                newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS
            )
            service.add_operation(
                "Get_Temp", SIG, self.fail_first_attempt_per_city()
            )
            registry.register(service)
            invoker = registry.make_invoker(
                resilience=ResiliencePolicy(jitter_seed=7)
            )
            engine = RewriteEngine(
                newspaper.wide_schema_star2(8),
                newspaper.wide_schema_star(8),
                k=1,
                workers=workers,
            )
            result = engine.rewrite(newspaper.wide_document(8), invoker)
            return result.document.to_xml(), invoker.report

        # eight unique cities, each faulting exactly once: the same
        # eight per-call jitters are drawn whatever the interleaving
        sequential_xml, sequential = run(1)
        parallel_xml, parallel = run(8)
        assert parallel_xml == sequential_xml
        assert parallel.retries == sequential.retries == 8
        assert parallel.backoff_seconds == pytest.approx(
            sequential.backoff_seconds, rel=1e-12
        )
