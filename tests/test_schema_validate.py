"""Unit tests for instance validation (Definition 3)."""

import pytest

from repro.doc import Document, call, el, text
from repro.schema import SchemaBuilder, is_instance, validate
from repro.schema.validate import is_output_instance, word_matches
from repro.workloads import newspaper


class TestPaperClaims:
    """Instance-of relations stated in Section 2."""

    def test_figure_2a_is_instance_of_star(self, doc, schema_star):
        assert is_instance(doc, schema_star)

    def test_figure_2a_not_instance_of_star2(self, doc, schema_star2):
        assert not is_instance(doc, schema_star2)

    def test_materialized_is_instance_of_star2(self, schema_star2):
        assert is_instance(newspaper.materialized_document(), schema_star2)

    def test_materialized_not_instance_of_star3(self, schema_star3):
        # TimeOut is still intensional; (***) demands exhibit* only.
        assert not is_instance(newspaper.materialized_document(), schema_star3)


class TestViolations:
    def test_report_lists_every_violation(self, schema_star):
        bad = Document(
            el(
                "newspaper",
                el("title", "t"),
                el("date", "d"),
                el("temp", "1"),
                el("exhibit", el("title", "x")),  # missing date part
            )
        )
        report = validate(bad, schema_star)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert "content" in kinds
        # The exhibit violation carries its path.
        assert any(v.path == (3,) for v in report.violations)

    def test_undeclared_label_strict_vs_lenient(self, schema_star):
        odd = Document(el("newspaper", el("mystery")))
        strict = validate(odd, schema_star, strict=True)
        assert any(v.kind == "undeclared-label" for v in strict.violations)
        lenient = validate(odd, schema_star, strict=False)
        assert all(v.kind != "undeclared-label" for v in lenient.violations)

    def test_undeclared_function_strict(self, schema_star):
        odd = Document(el("newspaper", call("Nobody_Knows")))
        report = validate(odd, schema_star, strict=True)
        assert any(v.kind == "undeclared-function" for v in report.violations)

    def test_function_input_checked(self, schema_star):
        # Get_Temp expects a city parameter, not a date.
        odd = Document(el("city", "x"))
        bad_call = Document(
            el("newspaper",
               el("title", "t"), el("date", "d"),
               call("Get_Temp", el("date", "today")),
               el("exhibit", el("title", "x"), el("date", "d")))
        )
        report = validate(bad_call, schema_star)
        assert any(v.kind == "input" for v in report.violations)

    def test_data_leaf_positions(self):
        schema = SchemaBuilder().element("a", "data").build()
        assert is_instance(Document(el("a", "value")), schema)
        assert not is_instance(Document(el("a")), schema)  # data required
        assert not is_instance(Document(el("a", el("a", "x"))), schema)

    def test_violation_rendering(self, schema_star2, doc):
        report = validate(doc, schema_star2)
        rendered = str(report)
        assert "content" in rendered and "newspaper" not in rendered.split()[0]


class TestSenderSchemaFallback:
    def test_sender_supplies_unknown_signatures(self, schema_star):
        target = (
            SchemaBuilder()
            .element("newspaper", "title.date.(Get_Temp | temp)")
            .element("title", "data")
            .element("date", "data")
            .element("temp", "data")
            .element("city", "data")
            .build(strict=False)
        )
        document = Document(
            el("newspaper", el("title", "t"), el("date", "d"),
               call("Get_Temp", el("city", "Paris")))
        )
        # Target does not declare Get_Temp's signature; sender does.
        assert not is_instance(document, target, strict=True)
        assert is_instance(document, target, sender_schema=schema_star)


class TestPatternValidation:
    def test_pattern_matches_conforming_function(self, doc):
        schema = newspaper.pattern_schema()
        assert is_instance(doc, schema)

    def test_pattern_rejects_by_predicate(self, doc):
        schema = newspaper.pattern_schema(lambda name: name != "Get_Temp")
        assert not is_instance(doc, schema)

    def test_pattern_rejects_by_signature(self, doc):
        schema = newspaper.pattern_schema()
        # A call whose declared signature is not city -> temp.
        other = doc.replace((2,), call("TimeOut", text("x")))
        assert not is_instance(other, schema)


class TestWordMatches:
    def test_plain_word(self, schema_star):
        expr = schema_star.type_of("newspaper")
        assert word_matches(
            ("title", "date", "temp"), expr, schema_star
        )
        assert not word_matches(("title",), expr, schema_star)

    def test_empty_word_against_star(self, schema_star):
        assert word_matches((), schema_star.signature_of("TimeOut").output_type,
                            schema_star)


class TestOutputInstance:
    def test_output_instance_of_timeout(self, schema_star):
        forest = (
            el("exhibit", el("title", "P"), el("date", "d")),
            el("exhibit", el("title", "Q"), call("Get_Date", el("title", "Q"))),
        )
        assert is_output_instance(forest, "TimeOut", schema_star)

    def test_wrong_root_word_rejected(self, schema_star):
        assert not is_output_instance(
            (el("temp", "15"),), "TimeOut", schema_star
        )

    def test_invalid_subtree_rejected(self, schema_star):
        forest = (el("exhibit", el("title", "only")),)  # missing date part
        assert not is_output_instance(forest, "TimeOut", schema_star)

    def test_unknown_function_rejected(self, schema_star):
        assert not is_output_instance((), "Mystery", schema_star)
