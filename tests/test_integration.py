"""Integration tests: whole-paper scenarios end to end."""

import pytest

from repro import (
    RewriteEngine,
    SchemaEnforcer,
    is_instance,
)
from repro.errors import NoSafeRewritingError
from repro.workloads import scenarios


class TestSearchEngine:
    """Section 3's recursive Get_More handles, bounded by k."""

    def test_never_safe_whatever_k(self):
        # The adversary can always return one more Get_More handle, so a
        # SAFE rewriting into plain url* does not exist at any depth —
        # the paper's motivation for possible rewriting.
        scenario = scenarios.search_engine(pages=3, per_page=2)
        for k in (1, 3, 6):
            engine = RewriteEngine(
                scenario.exchange_schema, scenario.sender_schema, k=k
            )
            assert not engine.can_rewrite(scenario.document)

    def test_insufficient_depth_fails_at_runtime(self):
        from repro.errors import RewriteExecutionError

        scenario = scenarios.search_engine(pages=3, per_page=2)
        engine = RewriteEngine(
            scenario.exchange_schema, scenario.sender_schema, k=2,
            mode="possible",
        )
        # A rewriting MAY exist (the service might return no handle)...
        assert engine.can_rewrite(scenario.document)
        # ...but this service serves 3 pages, which k=2 cannot chase.
        with pytest.raises(RewriteExecutionError):
            engine.rewrite(scenario.document, scenario.registry.make_invoker())

    def test_full_materialization_with_sufficient_k(self):
        scenario = scenarios.search_engine(pages=3, per_page=2)
        engine = RewriteEngine(
            scenario.exchange_schema,
            scenario.sender_schema,
            k=scenario.recommended_k,
            mode="possible",
        )
        result = engine.rewrite(
            scenario.document, scenario.registry.make_invoker()
        )
        assert is_instance(
            result.document, scenario.exchange_schema, scenario.sender_schema
        )
        assert result.document.is_extensional()
        urls = [n for n in result.document.root.children]
        assert len(urls) == 6
        assert result.log.invoked == ["Search", "Get_More", "Get_More"]
        assert [r.depth for r in result.log.records] == [1, 2, 3]


class TestAuction:
    def test_prices_materialized_for_buyers(self):
        scenario = scenarios.auction_site(listings=4)
        engine = RewriteEngine(
            scenario.exchange_schema, scenario.sender_schema, k=1
        )
        result = engine.rewrite(
            scenario.document, scenario.registry.make_invoker()
        )
        assert is_instance(result.document, scenario.exchange_schema)
        assert result.log.invoked == ["Get_Quote", "Get_Quote"]

    def test_sender_schema_compatibility_precheck(self):
        from repro import schema_safely_rewrites

        scenario = scenarios.auction_site()
        report = schema_safely_rewrites(
            scenario.sender_schema, scenario.exchange_schema, k=1
        )
        assert report.compatible


class TestServiceDirectory:
    def test_calls_stay_intensional(self):
        scenario = scenarios.service_directory(entries=3)
        engine = RewriteEngine(
            scenario.exchange_schema,
            scenario.sender_schema,
            k=1,
            policy=scenario.policy,
        )
        result = engine.rewrite(
            scenario.document, scenario.registry.make_invoker()
        )
        assert result.document.function_count() == 3  # probes kept
        assert not result.log.records
        assert scenario.registry.total_calls() == 0  # never fired

    def test_materializing_against_directory_schema_fails(self):
        # A receiver demanding `provider.status` cannot be served without
        # invoking the (non-invocable) probes.
        from repro import SchemaBuilder

        scenario = scenarios.service_directory(entries=1)
        strict_receiver = (
            SchemaBuilder()
            .element("directory", "entry*")
            .element("entry", "provider.status")
            .element("provider", "data")
            .element("status", "data")
            .function("Probe", "", "status")
            .root("directory")
            .build()
        )
        engine = RewriteEngine(
            strict_receiver, scenario.sender_schema, k=1, policy=scenario.policy
        )
        with pytest.raises(NoSafeRewritingError):
            engine.rewrite(scenario.document, scenario.registry.make_invoker())

        # Lifting the restriction makes it work.
        permissive = RewriteEngine(strict_receiver, scenario.sender_schema, k=1)
        result = permissive.rewrite(
            scenario.document, scenario.registry.make_invoker()
        )
        assert is_instance(result.document, strict_receiver)


class TestEnforcerScenarios:
    def test_enforce_forest_on_service_results(self):
        """A provided service returning intensional results, enforced
        against the caller's WSDL_int expectations."""
        scenario = scenarios.auction_site(listings=2)
        from repro import parse_regex

        enforcer = SchemaEnforcer(
            scenario.exchange_schema, scenario.sender_schema
        )
        listing = scenario.document.root.children[0]  # intensional listing
        outcome = enforcer.enforce_forest(
            (listing,), parse_regex("listing"),
            scenario.registry.make_invoker(),
        )
        assert outcome.ok
        assert outcome.forest[0].children[1].label == "price"


class TestCrossFormatPipeline:
    """XML Schema_int text -> compiled schema -> rewriting -> XML wire."""

    def test_full_pipeline(self, registry, schema_star, doc):
        from repro import (
            Document,
            compile_xschema,
            parse_xschema,
            schema_to_xschema,
        )

        # Publish (**) as XML Schema_int, re-parse it, use it as target.
        from repro.workloads import newspaper

        text = schema_to_xschema(newspaper.schema_star2())
        target = compile_xschema(parse_xschema(text))

        engine = RewriteEngine(target, schema_star, k=1)
        result = engine.rewrite(doc, registry.make_invoker())

        wire = result.document.to_xml()
        delivered = Document.from_xml(wire)
        assert is_instance(delivered, target, schema_star)
