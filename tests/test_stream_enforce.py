"""Single-pass streaming enforcement against the DOM pipeline.

The invariant under test everywhere: for any input and any deterministic
invoker, ``enforce_stream`` writes **byte-identical** output to the
parse → rewrite → serialize path, with the same receipt (calls, cache
hits/misses, conformance verdict) — while holding only the root-to-
cursor spine plus one buffered sibling run.
"""

import pytest

from repro.axml.enforcement import SchemaEnforcer
from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.doc.nodes import FunctionCall
from repro.rewriting.engine import RewriteEngine
from repro.stream.enforce import stream_rewrite
from repro.workloads import newspaper
from tests.conftest import build_registry


def _stream(enforcer, xml, invoker, chunk_size=7):
    """Feed `xml` in small chunks; return (outcome, collected bytes)."""
    chunks = [xml[i:i + chunk_size] for i in range(0, len(xml), chunk_size)]
    parts = []
    outcome = enforcer.enforce_stream(iter(chunks), invoker, parts.append)
    return outcome, "".join(parts)


class TestByteIdentity:
    def test_rewrite_matches_dom_bytes_and_receipt(
        self, doc, schema_star, schema_star2, registry
    ):
        dom = SchemaEnforcer(schema_star2, schema_star)
        dom_outcome = dom.enforce_document(doc, registry.make_invoker())
        assert dom_outcome.ok and dom_outcome.calls_made == 1

        streamed = SchemaEnforcer(schema_star2, schema_star)
        outcome, xml = _stream(
            streamed, doc.to_xml(), registry.make_invoker()
        )
        assert outcome.ok
        assert xml == dom_outcome.document.to_xml()
        assert outcome.calls_made == dom_outcome.calls_made
        assert outcome.cache_hits == dom_outcome.cache_hits
        assert outcome.cache_misses == dom_outcome.cache_misses
        assert outcome.already_conformant is False

    def test_conformant_document_streams_unchanged(
        self, doc, schema_star, registry
    ):
        enforcer = SchemaEnforcer(schema_star, schema_star)
        outcome, xml = _stream(
            enforcer, doc.to_xml(), registry.make_invoker()
        )
        assert outcome.ok and outcome.already_conformant
        assert outcome.calls_made == 0
        assert xml == doc.to_xml()

    def test_error_carries_the_dom_message(
        self, doc, schema_star, schema_star3, registry
    ):
        dom = SchemaEnforcer(schema_star3, schema_star)  # safe mode
        dom_outcome = dom.enforce_document(doc, registry.make_invoker())
        assert not dom_outcome.ok

        streamed = SchemaEnforcer(schema_star3, schema_star)
        outcome, _partial = _stream(
            streamed, doc.to_xml(), registry.make_invoker()
        )
        assert not outcome.ok
        assert outcome.error == dom_outcome.error

    def test_malformed_input_raises_like_from_xml(self, schema_star, registry):
        from repro.errors import DocumentParseError

        enforcer = SchemaEnforcer(schema_star, schema_star)
        with pytest.raises(DocumentParseError, match="malformed XML"):
            enforcer.enforce_stream(
                "<newspaper><title>", registry.make_invoker(),
                lambda s: None,
            )


class TestModes:
    def test_possible_mode_is_rejected(self, doc, schema_star2, schema_star):
        enforcer = SchemaEnforcer(schema_star2, schema_star, mode="possible")
        with pytest.raises(ValueError, match="safe/auto"):
            enforcer.enforce_stream(doc.to_xml(), lambda fc: (), lambda s: None)

    def test_auto_mode_streams(self, doc, schema_star, schema_star2, registry):
        enforcer = SchemaEnforcer(schema_star2, schema_star, mode="auto")
        outcome, xml = _stream(
            enforcer, doc.to_xml(), registry.make_invoker()
        )
        dom = SchemaEnforcer(schema_star2, schema_star, mode="auto")
        dom_outcome = dom.enforce_document(doc, registry.make_invoker())
        assert outcome.ok
        assert xml == dom_outcome.document.to_xml()


class TestBoundedBuffering:
    """Output leaves before input ends; buffers track one sibling run."""

    def _magazine(self, articles):
        kids = []
        for i in range(articles):
            kids.append(el("article",
                           el("title", "t%d" % i),
                           el("date", "d%d" % i)))
        return Document(el("magazine", *kids))

    def _schema(self):
        from repro.schema.model import SchemaBuilder

        return (
            SchemaBuilder()
            .element("magazine", "article*")
            .element("article", "title.date")
            .element("title", "data")
            .element("date", "data")
            .root("magazine")
            .build()
        )

    def test_emission_interleaves_with_parsing(self):
        schema = self._schema()
        engine = RewriteEngine(schema, schema)
        doc = self._magazine(50)
        writes = []
        result = stream_rewrite(
            engine, doc.to_xml(), lambda fc: (), writes.append
        )
        assert "".join(writes) == doc.to_xml()
        # Settled articles leave as they close: many incremental writes,
        # and never more than a couple of articles buffered at once.
        assert len(writes) > 50
        assert result.peak_buffered <= 3
        assert result.peak_depth == 3  # magazine > article > title

    def test_pending_call_buffers_only_the_suffix(self, registry):
        # A function child blocks emission of what follows it, but the
        # prefix before the call still streams out eagerly.
        from repro.schema.model import SchemaBuilder

        schema = (
            SchemaBuilder()
            .element("magazine", "article*")
            .element("article", "title.date")
            .element("title", "data")
            .element("date", "data")
            .element("city", "data")
            .element("temp", "data")
            .function("Get_Temp", "city", "temp")
            .root("magazine")
            .build()
        )
        target = (
            SchemaBuilder()
            .element("magazine", "article*.temp")
            .element("article", "title.date")
            .element("title", "data")
            .element("date", "data")
            .element("city", "data")
            .element("temp", "data")
            .function("Get_Temp", "city", "temp")
            .root("magazine")
            .build()
        )
        articles = [
            el("article", el("title", "t%d" % i), el("date", "d"))
            for i in range(20)
        ]
        doc = Document(el(
            "magazine", *articles,
            call("Get_Temp", el("city", "Paris"),
                 endpoint="http://www.forecast.com/soap",
                 namespace="urn:xmethods-weather"),
        ))
        engine = RewriteEngine(target, schema)
        writes = []
        result = stream_rewrite(
            engine, doc.to_xml(), registry.make_invoker(), writes.append
        )
        dom_engine = RewriteEngine(target, schema)
        dom = dom_engine.rewrite(doc, registry.make_invoker())
        assert "".join(writes) == dom.document.to_xml()
        assert result.calls_made == 1
        # The 20 settled articles streamed while the call was pending.
        assert len(writes) > 20


class TestCli:
    @pytest.fixture
    def files(self, tmp_path):
        from repro.xschema.writer import schema_to_xschema

        doc_path = tmp_path / "doc.xml"
        doc_path.write_text(newspaper.document().to_xml())
        star = tmp_path / "star.xsd"
        star.write_text(schema_to_xschema(newspaper.schema_star()))
        star2 = tmp_path / "star2.xsd"
        star2.write_text(schema_to_xschema(newspaper.schema_star2()))
        return {"doc": str(doc_path), "star": str(star),
                "star2": str(star2), "dir": tmp_path}

    def test_stream_matches_per_call_dom_run(self, files, capsys):
        from repro.cli import main

        out_dom = files["dir"] / "dom.xml"
        out_stream = files["dir"] / "stream.xml"
        # --workers 2 selects the per-call-seeded invoker, the sampling
        # discipline --stream always uses.
        assert main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--seed", "7", "--workers", "2", "-o", str(out_dom),
        ]) == 0
        assert main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--seed", "7", "--stream", "-o", str(out_stream),
        ]) == 0
        assert out_stream.read_text() == out_dom.read_text()

    def test_stream_refuses_possible_mode(self, files, capsys):
        from repro.cli import main

        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--stream", "--mode", "possible",
        ])
        assert code == 2
        assert "safe/auto" in capsys.readouterr().err

    def test_stream_failure_removes_partial_output(self, files, tmp_path):
        from repro.cli import main
        from repro.xschema.writer import schema_to_xschema

        star3 = tmp_path / "star3.xsd"
        star3.write_text(schema_to_xschema(newspaper.schema_star3()))
        out = tmp_path / "partial.xml"
        code = main([
            "rewrite", files["doc"], files["star"], str(star3),
            "--stream", "-o", str(out),
        ])
        assert code == 1
        assert not out.exists()

    def test_stream_parse_failure_removes_partial_output(self, files, tmp_path):
        from repro.cli import main

        broken = tmp_path / "broken.xml"
        broken.write_text("<newspaper><title>")
        out = tmp_path / "partial.xml"
        code = main([
            "rewrite", str(broken), files["star"], files["star2"],
            "--stream", "-o", str(out),
        ])
        assert code == 2
        assert not out.exists()
