"""Unit tests for DTD import/export."""

import pytest

from repro.automata.ops import language_equal, regex_to_dfa
from repro.automata.symbols import Alphabet, DATA
from repro.errors import SchemaError
from repro.regex.ast import Atom
from repro.schema.dtd import parse_dtd, schema_to_dtd
from repro.workloads import newspaper

NEWSPAPER_DTD = """
<!ELEMENT newspaper (title,date,(Get_Temp|temp),(TimeOut|exhibit*))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT temp (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT exhibit (title,(Get_Date|date))>
<!-- repro:function Get_Temp (city) : (temp) -->
<!-- repro:function TimeOut (#none) : ((exhibit|performance)*) -->
<!-- repro:function Get_Date (title) : (date) -->
"""


class TestParseDtd:
    def test_newspaper_dtd_matches_schema_star(self):
        # TimeOut's input is `data` in the paper; spell it as an element
        # here since DTDs have no data keyword in positions.
        dtd = NEWSPAPER_DTD.replace("(#none)", "(query)") + \
            "\n<!ELEMENT query (#PCDATA)>"
        schema = parse_dtd(dtd)
        star = newspaper.schema_star()
        alphabet = Alphabet.closure(
            star.alphabet_symbols(), schema.alphabet_symbols()
        )
        assert language_equal(
            regex_to_dfa(schema.type_of("newspaper"), alphabet),
            regex_to_dfa(star.type_of("newspaper"), alphabet),
        )
        assert schema.root == "newspaper"
        assert str(schema.signature_of("Get_Temp")) == "city -> temp"

    def test_pcdata_is_data(self):
        schema = parse_dtd("<!ELEMENT a (#PCDATA)>")
        assert schema.type_of("a") == Atom(DATA)

    def test_empty_and_any(self):
        schema = parse_dtd("<!ELEMENT a EMPTY>\n<!ELEMENT b ANY>")
        from repro.regex.ast import AnySymbol, Epsilon, Star

        assert isinstance(schema.type_of("a"), Epsilon)
        b = schema.type_of("b")
        assert isinstance(b, Star) and isinstance(b.item, AnySymbol)

    def test_occurrence_operators(self):
        schema = parse_dtd("<!ELEMENT a (b?,c+,d*)>\n<!ELEMENT b EMPTY>"
                           "\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>")
        from repro.regex.ops import matches

        expr = schema.type_of("a")
        assert matches(expr, ["c"])
        assert matches(expr, ["b", "c", "c", "d"])
        assert not matches(expr, ["b", "d"])

    def test_nested_groups(self):
        schema = parse_dtd("<!ELEMENT a ((b|c),(d,e)*)>"
                           "\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>"
                           "\n<!ELEMENT d EMPTY>\n<!ELEMENT e EMPTY>")
        from repro.regex.ops import matches

        assert matches(schema.type_of("a"), ["b", "d", "e", "d", "e"])

    def test_explicit_root(self):
        schema = parse_dtd("<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>", root="b")
        assert schema.root == "b"
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a EMPTY>", root="zzz")

    def test_mixed_content_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a (#PCDATA|b)*>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a EMPTY>\n<!ELEMENT a EMPTY>")

    def test_empty_dtd_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!-- nothing here -->")

    def test_garbage_content_model_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a (b,,c)>")
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a (b>")


class TestRoundTrip:
    def test_schema_to_dtd_and_back(self):
        star = newspaper.schema_star()
        dtd = schema_to_dtd(star)
        assert "<!ELEMENT newspaper" in dtd
        assert "repro:function Get_Temp" in dtd
        back = parse_dtd(dtd, root="newspaper")
        alphabet = Alphabet.closure(
            star.alphabet_symbols(), back.alphabet_symbols()
        )
        for label, expr in star.label_types.items():
            assert language_equal(
                regex_to_dfa(expr, alphabet),
                regex_to_dfa(back.type_of(label), alphabet),
            ), label
        for name, signature in star.functions.items():
            assert language_equal(
                regex_to_dfa(signature.output_type, alphabet),
                regex_to_dfa(back.signature_of(name).output_type, alphabet),
            ), name

    def test_inexpressible_features_raise(self):
        from repro.schema import SchemaBuilder

        bounded = SchemaBuilder().element("a", "b{2,4}").build(strict=False)
        with pytest.raises(SchemaError):
            schema_to_dtd(bounded)
        embedded_any = SchemaBuilder().element("a", "b.any").build(strict=False)
        with pytest.raises(SchemaError):
            schema_to_dtd(embedded_any)
