"""Unit tests for XML Schema_int: parser, compiler and writer (Section 7)."""

import pytest

from repro.automata.ops import language_equal, regex_to_dfa
from repro.automata.symbols import Alphabet, DATA
from repro.errors import XMLSchemaIntError
from repro.regex.ast import AnySymbol, Atom
from repro.regex.parser import parse_regex
from repro.xschema import compile_xschema, parse_xschema, schema_to_xschema

PAPER_SCHEMA = """
<schema xmlns="http://www.w3.org/2001/XMLSchema" root="newspaper">
  <element name="newspaper">
    <complexType>
      <sequence>
        <element ref="title"/>
        <element ref="date"/>
        <choice>
          <functionPattern ref="Forecast"/>
          <element ref="temp"/>
        </choice>
        <choice>
          <function ref="TimeOut"/>
          <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
        </choice>
      </sequence>
    </complexType>
  </element>
  <element name="title" type="string"/>
  <element name="date" type="string"/>
  <element name="temp" type="string"/>
  <element name="city" type="string"/>
  <element name="exhibit">
    <complexType>
      <sequence>
        <element ref="title"/>
        <element ref="date"/>
      </sequence>
    </complexType>
  </element>
  <function id="TimeOut" methodName="TimeOut"
            endpointURL="http://www.timeout.com/paris"
            namespaceURI="urn:timeout-program">
    <params><param><data/></param></params>
    <return>
      <choice minOccurs="0" maxOccurs="unbounded">
        <element ref="exhibit"/>
        <element ref="performance"/>
      </choice>
    </return>
  </function>
  <element name="performance" type="string"/>
  <functionPattern id="Forecast">
    <params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return>
  </functionPattern>
</schema>
"""


class TestParser:
    def test_paper_schema_parses(self):
        parsed = parse_xschema(PAPER_SCHEMA)
        assert parsed.root == "newspaper"
        assert set(parsed.functions) == {"TimeOut"}
        assert set(parsed.patterns) == {"Forecast"}
        assert "newspaper" in parsed.elements

    def test_function_soap_coordinates(self):
        parsed = parse_xschema(PAPER_SCHEMA)
        timeout = parsed.functions["TimeOut"]
        assert timeout.endpoint == "http://www.timeout.com/paris"
        assert timeout.namespace == "urn:timeout-program"

    def test_pattern_predicate_coordinates_default_none(self):
        parsed = parse_xschema(PAPER_SCHEMA)
        forecast = parsed.patterns["Forecast"]
        assert forecast.predicate_endpoint is None

    def test_local_element_declarations_hoisted(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a">
            <complexType><sequence>
              <element name="b" type="string"/>
            </sequence></complexType>
          </element>
        </schema>"""
        parsed = parse_xschema(source)
        assert "b" in parsed.elements

    def test_conflicting_local_declarations_rejected(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a">
            <complexType><sequence>
              <element name="b" type="string"/>
              <element name="b"><complexType><sequence>
                <element ref="a"/>
              </sequence></complexType></element>
            </sequence></complexType>
          </element>
        </schema>"""
        with pytest.raises(XMLSchemaIntError):
            parse_xschema(source)

    def test_named_type_reference(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <complexType name="pair">
            <sequence><element ref="x"/><element ref="x"/></sequence>
          </complexType>
          <element name="x" type="string"/>
          <element name="p" type="pair"/>
        </schema>"""
        compiled = compile_xschema(parse_xschema(source))
        assert str(compiled.label_types["p"]) == "x.x"

    def test_import_merging(self):
        imported = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="shared" type="string"/>
        </schema>"""
        main = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <import schemaLocation="lib.xsd"/>
          <element name="root">
            <complexType><sequence><element ref="shared"/></sequence></complexType>
          </element>
        </schema>"""
        parsed = parse_xschema(main, loader=lambda loc: imported)
        assert "shared" in parsed.elements

    def test_import_without_loader_fails(self):
        main = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <import schemaLocation="lib.xsd"/>
        </schema>"""
        with pytest.raises(XMLSchemaIntError):
            parse_xschema(main)

    @pytest.mark.parametrize(
        "snippet,message_part",
        [
            ("<element/>", "name"),
            ("<banana/>", "banana"),
            ('<element name="a"><complexType>'
             '<all><element ref="b" maxOccurs="2"/></all>'
             "</complexType></element>", "all"),
            ('<function><params/></function>', "id"),
            ('<functionPattern/>', "id"),
            ('<element name="a"><complexType><sequence>'
             '<element ref="b" minOccurs="3" maxOccurs="2"/>'
             "</sequence></complexType></element>", "maxOccurs"),
        ],
    )
    def test_rejects(self, snippet, message_part):
        source = (
            '<schema xmlns="http://www.w3.org/2001/XMLSchema">%s</schema>'
            % snippet
        )
        with pytest.raises(XMLSchemaIntError) as info:
            parse_xschema(source)
        assert message_part in str(info.value)


class TestCompiler:
    def test_compiled_types_match_simple_schemas(self, schema_star):
        compiled = compile_xschema(parse_xschema(PAPER_SCHEMA))
        # tau(newspaper) with Forecast instead of Get_Temp (Section 2.1).
        assert str(compiled.label_types["newspaper"]) == (
            "title.date.(Forecast | temp).(TimeOut | exhibit*)"
        )
        assert compiled.label_types["title"] == Atom(DATA)

    def test_occurs_become_repeats(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a">
            <complexType><sequence>
              <element ref="b" minOccurs="2" maxOccurs="4"/>
            </sequence></complexType>
          </element>
          <element name="b" type="string"/>
        </schema>"""
        compiled = compile_xschema(parse_xschema(source))
        assert str(compiled.label_types["a"]) == "b{2,4}"

    def test_wildcard_with_exclusions(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a">
            <complexType><sequence>
              <any except="secret internal"/>
            </sequence></complexType>
          </element>
        </schema>"""
        compiled = compile_xschema(parse_xschema(source))
        expr = compiled.label_types["a"]
        assert isinstance(expr, AnySymbol)
        assert expr.exclude == frozenset({"secret", "internal"})

    def test_dangling_function_ref_rejected(self):
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="a">
            <complexType><sequence><function ref="ghost"/></sequence></complexType>
          </element>
        </schema>"""
        with pytest.raises(XMLSchemaIntError):
            compile_xschema(parse_xschema(source))

    def test_predicate_resolver_wired(self):
        calls = []

        def resolver(decl):
            calls.append(decl.name)
            return lambda name: name == "OnlyMe"

        compiled = compile_xschema(parse_xschema(PAPER_SCHEMA), resolver)
        assert calls == ["Forecast"]
        pattern = compiled.patterns["Forecast"]
        signature = pattern.signature
        assert pattern.admits("OnlyMe", signature)
        assert not pattern.admits("Other", signature)


class TestWriterRoundTrip:
    def roundtrip(self, schema):
        return compile_xschema(parse_xschema(schema_to_xschema(schema)))

    @pytest.mark.parametrize(
        "maker", ["schema_star", "schema_star2", "schema_star3"]
    )
    def test_language_preserved(self, maker, request):
        schema = request.getfixturevalue(maker)
        back = self.roundtrip(schema)
        alphabet = Alphabet.closure(
            schema.alphabet_symbols(), back.alphabet_symbols()
        )
        for label, expr in schema.label_types.items():
            assert language_equal(
                regex_to_dfa(expr, alphabet),
                regex_to_dfa(back.label_types[label], alphabet),
            ), label
        for name, signature in schema.functions.items():
            assert language_equal(
                regex_to_dfa(signature.output_type, alphabet),
                regex_to_dfa(back.functions[name].output_type, alphabet),
            ), name

    def test_root_preserved(self, schema_star):
        assert self.roundtrip(schema_star).root == "newspaper"

    def test_patterns_preserved(self):
        from repro.workloads import newspaper

        back = self.roundtrip(newspaper.pattern_schema())
        assert "Forecast" in back.patterns

    def test_wildcards_roundtrip(self):
        from repro.schema import SchemaBuilder

        schema = (
            SchemaBuilder()
            .element("a", "any*")
            .build()
        )
        back = self.roundtrip(schema)
        alphabet = Alphabet.closure({"a", "zz"})
        assert language_equal(
            regex_to_dfa(schema.label_types["a"], alphabet),
            regex_to_dfa(back.label_types["a"], alphabet),
        )
