"""Unit tests for possible rewriting (Figure 9)."""

import pytest

from repro.doc import call, el, text
from repro.errors import NoPossibleRewritingError, RewriteExecutionError
from repro.regex.parser import parse_regex
from repro.rewriting.possible import analyze_possible, execute_possible
from repro.rewriting.safe import analyze_safe

WORD = ("title", "date", "Get_Temp", "TimeOut")
R3 = parse_regex("title.date.temp.exhibit*")


def children():
    return (
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris")),
        call("TimeOut", text("exhibits")),
    )


class TestPaperExamples:
    def test_possible_into_star3(self, newspaper_outputs):
        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)
        assert analysis.exists

    def test_witness_is_a_target_word(self, newspaper_outputs):
        from repro.regex.ops import matches

        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)
        witness = analysis.witness()
        assert matches(R3, list(witness))

    def test_execution_invokes_both_calls(self, newspaper_outputs):
        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)

        def lucky(fc):
            if fc.name == "Get_Temp":
                return (el("temp", "15"),)
            return (el("exhibit", el("title", "P"), el("date", "d")),)

        new, log = execute_possible(analysis, children(), lucky)
        assert sorted(log.invoked) == ["Get_Temp", "TimeOut"]
        assert [getattr(n, "label", None) for n in new] == [
            "title", "date", "temp", "exhibit",
        ]

    def test_unlucky_outputs_fail_after_trying(self, newspaper_outputs):
        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)

        def unlucky(fc):
            if fc.name == "Get_Temp":
                return (el("temp", "15"),)
            return (el("performance"),)  # the paper's failure case

        with pytest.raises(RewriteExecutionError):
            execute_possible(analysis, children(), unlucky)

    def test_side_effects_of_backtracked_calls_are_logged(self, newspaper_outputs):
        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)
        served = []

        def unlucky(fc):
            served.append(fc.name)
            if fc.name == "Get_Temp":
                return (el("temp", "15"),)
            return (el("performance"),)

        with pytest.raises(RewriteExecutionError):
            execute_possible(analysis, children(), unlucky)
        assert "TimeOut" in served  # the call DID happen


class TestRelationToSafe:
    @pytest.mark.parametrize(
        "word,outputs,target",
        [
            (WORD, None, "title.date.temp.(TimeOut | exhibit*)"),
            (("f",), {"f": "a"}, "a"),
            (("a", "b"), {}, "a.b"),
        ],
    )
    def test_safe_implies_possible(self, word, outputs, target, newspaper_outputs):
        outs = newspaper_outputs if outputs is None else {
            k: parse_regex(v) for k, v in outputs.items()
        }
        target_regex = parse_regex(target)
        assert analyze_safe(word, outs, target_regex, k=1).exists
        assert analyze_possible(word, outs, target_regex, k=1).exists

    def test_possible_but_not_safe(self, newspaper_outputs):
        assert not analyze_safe(WORD, newspaper_outputs, R3, k=1).exists
        assert analyze_possible(WORD, newspaper_outputs, R3, k=1).exists


class TestImpossible:
    def test_word_that_cannot_match(self):
        analysis = analyze_possible(("x",), {}, parse_regex("y"), k=1)
        assert not analysis.exists
        with pytest.raises(NoPossibleRewritingError):
            analysis.witness()
        with pytest.raises(NoPossibleRewritingError):
            execute_possible(analysis, (el("x"),), lambda fc: ())

    def test_output_type_disjoint_from_target(self):
        analysis = analyze_possible(
            ("f",), {"f": parse_regex("a")}, parse_regex("b"), k=1
        )
        assert not analysis.exists

    def test_depth_limit_blocks_possibility(self):
        outputs = {"f": parse_regex("g"), "g": parse_regex("a")}
        assert not analyze_possible(("f",), outputs, parse_regex("a"), k=1).exists
        assert analyze_possible(("f",), outputs, parse_regex("a"), k=2).exists


class TestBacktrackingSearch:
    def test_retry_other_fork_option_on_failure(self):
        # Target: f | a.  f returns b (never a) — invoking fails at run
        # time, but keeping f matches the target, and keep is tried first.
        analysis = analyze_possible(
            ("f",), {"f": parse_regex("a | b")}, parse_regex("f | a"), k=1
        )
        new, log = execute_possible(
            analysis, (call("f"),), lambda fc: (el("b"),)
        )
        assert isinstance(new[0], type(call("f")))
        assert not log.records  # keep needed no invocation

    def test_invoke_tried_after_keep_fails(self):
        # Target a only: keep cannot match, invoke must be tried.
        analysis = analyze_possible(
            ("f",), {"f": parse_regex("a | b")}, parse_regex("a"), k=1
        )
        new, log = execute_possible(
            analysis, (call("f"),), lambda fc: (el("a"),)
        )
        assert new[0].label == "a"
        assert log.invoked == ["f"]

    def test_backtracked_call_flagged(self):
        # Two calls; the second can't succeed, forcing backtracking over
        # the first's invocation: target = (a.c) | (f.c)
        outputs = {"f": parse_regex("a"), "g": parse_regex("b | c")}
        analysis = analyze_possible(
            ("f", "g"), outputs, parse_regex("(a.c) | (f.b)"), k=1
        )
        calls = {"g": 0}

        def invoker(fc):
            if fc.name == "f":
                return (el("a"),)
            calls["g"] += 1
            # First answer c (works with a.c), so no backtracking needed
            # on this path; make g return b first to force backtracking.
            return (el("b"),) if calls["g"] == 1 else (el("c"),)

        new, log = execute_possible(analysis, (call("f"), call("g")), invoker)
        # Some branch failed and was retried; at least one backtracked
        # record or a successful completion must exist.
        assert new  # completed

    def test_invocation_budget(self, newspaper_outputs):
        analysis = analyze_possible(
            ("f",), {"f": parse_regex("a | b")}, parse_regex("a"), k=1
        )
        with pytest.raises(RewriteExecutionError):
            execute_possible(
                analysis, (call("f"),), lambda fc: (el("a"),),
                max_invocations=0,
            )

    def test_statistics_populated(self, newspaper_outputs):
        analysis = analyze_possible(WORD, newspaper_outputs, R3, k=1)
        assert analysis.stats.product_nodes > 0
        assert analysis.stats.expansion_states == 10
