"""Unit tests for the type-expression parser."""

import pytest

from repro.automata.symbols import DATA
from repro.errors import RegexSyntaxError
from repro.regex.ast import Alt, AnySymbol, Atom, Empty, Epsilon, Repeat, Seq, Star
from repro.regex.parser import parse_regex


class TestBasics:
    def test_single_atom(self):
        assert parse_regex("title") == Atom("title")

    def test_sequence(self):
        expr = parse_regex("title.date")
        assert isinstance(expr, Seq)
        assert len(expr.items) == 2

    def test_choice(self):
        expr = parse_regex("Get_Temp | temp")
        assert isinstance(expr, Alt)
        assert len(expr.options) == 2

    def test_star(self):
        assert isinstance(parse_regex("exhibit*"), Star)

    def test_plus_and_opt(self):
        plus = parse_regex("a+")
        assert isinstance(plus, Repeat) and plus.low == 1 and plus.high is None
        opt = parse_regex("a?")
        assert isinstance(opt, Repeat) and opt.low == 0 and opt.high == 1

    def test_bounded_repetition(self):
        expr = parse_regex("a{2,5}")
        assert isinstance(expr, Repeat)
        assert (expr.low, expr.high) == (2, 5)

    def test_unbounded_repetition(self):
        expr = parse_regex("a{3,}")
        assert isinstance(expr, Repeat)
        assert (expr.low, expr.high) == (3, None)

    def test_empty_string_is_epsilon(self):
        assert isinstance(parse_regex(""), Epsilon)
        assert isinstance(parse_regex("   "), Epsilon)

    def test_keywords(self):
        assert parse_regex("data") == Atom(DATA)
        assert isinstance(parse_regex("any"), AnySymbol)
        assert isinstance(parse_regex("eps"), Epsilon)
        assert isinstance(parse_regex("empty"), Empty)

    def test_names_with_underscores_and_dashes(self):
        assert parse_regex("Get_Temp") == Atom("Get_Temp")
        assert parse_regex("a-b") == Atom("a-b")


class TestPaperExpressions:
    """Every type expression written out in the paper must parse."""

    @pytest.mark.parametrize(
        "text",
        [
            "title.date.(Get_Temp | temp).(TimeOut | exhibit*)",
            "title.(Get_Date | date)",
            "(exhibit | performance)*",
            "title.date.temp.(TimeOut | exhibit*)",
            "title.date.temp.exhibit*",
            "title.date.(Forecast | temp).(TimeOut | exhibit*)",
            "Get_Exhibit*",
            "city",
            "temp",
            "data",
        ],
    )
    def test_parses(self, text):
        parse_regex(text)

    def test_roundtrip_through_str(self):
        text = "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"
        expr = parse_regex(text)
        assert parse_regex(str(expr)) == expr


class TestPrecedence:
    def test_star_binds_tighter_than_seq(self):
        expr = parse_regex("a.b*")
        assert isinstance(expr, Seq)
        assert isinstance(expr.items[1], Star)

    def test_seq_binds_tighter_than_alt(self):
        expr = parse_regex("a.b | c")
        assert isinstance(expr, Alt)
        assert isinstance(expr.options[0], Seq)

    def test_parentheses_override(self):
        expr = parse_regex("a.(b | c)")
        assert isinstance(expr, Seq)
        assert isinstance(expr.items[1], Alt)

    def test_star_on_group(self):
        expr = parse_regex("(a.b)*")
        assert isinstance(expr, Star)
        assert isinstance(expr.item, Seq)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a..b",
            "a |",
            "(a",
            "a)",
            "*a",
            "a{2,1}",
            "a{,2}",
            "a b",  # missing '.' separator
            ".a",
            "|a",
            "a{x,2}",
            "a%b",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(RegexSyntaxError):
            parse_regex(text)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as info:
            parse_regex("a.%")
        assert info.value.text == "a.%"
