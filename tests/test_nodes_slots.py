"""The interned document core: ``__slots__`` nodes, hash-consed symbols.

Document nodes dominate allocations on large exchanges; these tests pin
the two memory properties the streaming pipeline relies on — no
per-instance ``__dict__`` (slots) and one shared string object per
recurring label / function name / attribute name (interning) — plus an
allocation regression bound measured with tracemalloc.
"""

import pytest

from repro.doc.builder import el
from repro.doc.nodes import Element, FunctionCall, Text
from repro.obs.memory import traced_peak


class TestSlots:
    @pytest.mark.parametrize("node", [
        Text("v"),
        Element("a"),
        FunctionCall("F"),
    ], ids=["text", "element", "function-call"])
    def test_no_instance_dict(self, node):
        with pytest.raises(AttributeError):
            node.__dict__

    @pytest.mark.parametrize("node", [
        Text("v"),
        Element("a"),
        FunctionCall("F"),
    ], ids=["text", "element", "function-call"])
    def test_no_arbitrary_attributes(self, node):
        with pytest.raises((AttributeError, TypeError)):
            node.extra = 1


class TestInterning:
    def test_equal_labels_share_one_string(self):
        labels = [("lab" + "el-%d" % 7) for _ in range(3)]  # distinct objects
        assert labels[0] is not labels[1]
        elements = [Element(label) for label in labels]
        assert elements[0].label is elements[1].label is elements[2].label

    def test_function_names_are_interned(self):
        a = FunctionCall("Get" + "_Temp")
        b = FunctionCall("Get_" + "Temp")
        assert a.name is b.name

    def test_attribute_names_are_interned(self):
        a = Element("a", attributes=(("att" + "r-x", "1"),))
        b = Element("b", attributes=(("attr" + "-x", "2"),))
        assert a.attributes[0][0] is b.attributes[0][0]

    def test_parsed_documents_share_label_storage(self):
        from repro.doc.xml_io import node_from_xml

        root = node_from_xml("<m><article><t>x</t></article>"
                             "<article><t>y</t></article></m>")
        first, second = root.children
        assert first.label is second.label
        assert first.children[0].label is second.children[0].label


class TestAllocationRegression:
    N = 5_000

    def test_tree_allocation_stays_bounded(self):
        def build():
            return el("magazine", *[
                el("article", el("title", "t-%d" % i))
                for i in range(self.N)
            ])

        _root, peak = traced_peak(build)
        nodes = 3 * self.N + self.N  # article + title + text, plus strings
        # Slots + interning keep a node far under 500 bytes on average;
        # the pre-slots dataclasses with per-node label copies measured
        # well above this bound.
        assert peak < 500 * nodes, "allocated %d bytes for %d nodes" % (
            peak, nodes
        )
