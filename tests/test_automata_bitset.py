"""The bitset automata core against the dict reference pipeline.

Three layers of cross-validation, mirroring how the core is wired in:

- **Construction identity** — ``bit_minimize(bit_determinize(nfa))``
  viewed back as a dict DFA must be *byte-identical* to
  ``minimize_hopcroft(determinize(nfa))``.  The compilation cache's
  ``target_dfa_view``/``complement_view`` lean on this: bitset-core
  analyses hand executors dict views whose state numbering matches what
  the dict core would have produced.
- **Decision procedures** — ``bit_subset``/``bit_intersects`` and the
  antichain inclusion check must agree with the complement-and-intersect
  reference on a fuzzed corpus (500 seeded pairs for the antichain, per
  the acceptance bar).
- **Solvers** — safe/lazy/possible verdicts under ``using_core`` must
  match the dict solvers on fuzzed word problems, with the lazy
  exploration bound intact.
"""

from __future__ import annotations

import pickle

import pytest

from repro.automata.bitset import (
    BitDFA,
    antichain_language_subset,
    bit_complement,
    bit_determinize,
    bit_intersects,
    bit_minimize,
    bit_subset,
    from_dfa,
    iter_bits,
)
from repro.automata.core import BITSET, DICT, active_core, using_core
from repro.automata.dfa import complement, determinize, minimize_hopcroft
from repro.automata.glushkov import glushkov_nfa
from repro.automata.ops import intersects, language_subset
from repro.automata.symbols import Alphabet, regex_symbols
from repro.conformance.fuzzer import fuzz_word_scenario
from repro.regex.parser import parse_regex
from repro.rewriting.bitgame import PNodeBitSet
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe

#: Representative sources: paper examples, bounded repeats, wildcards,
#: nullable languages, and the empty language.
SOURCES = [
    "a",
    "a.b.c",
    "a*",
    "(a | b)*.c",
    "a?.b?",
    "a{0,3}.b",
    "(a.b){1,2}",
    "(any*).a",
    "any",
    "title.date.temp.(TimeOut | exhibit*)",
    "(exhibit.performance?){0,8}",
    "a.b{2,2}",
]

ALPHABET = Alphabet.closure(
    {"a", "b", "c", "title", "date", "temp", "TimeOut", "exhibit",
     "performance", "#data"}
)


def _sources():
    return [parse_regex(source) for source in SOURCES]


def _dict_pipeline(regex, alphabet):
    return minimize_hopcroft(determinize(glushkov_nfa(regex), alphabet))


def _bit_pipeline(regex, alphabet):
    return bit_minimize(bit_determinize(glushkov_nfa(regex), alphabet))


# ---------------------------------------------------------------------------
# Construction identity
# ---------------------------------------------------------------------------


class TestPipelineIdentity:
    @pytest.mark.parametrize("source", SOURCES)
    def test_minimized_view_is_byte_identical(self, source):
        regex = parse_regex(source)
        reference = _dict_pipeline(regex, ALPHABET)
        view = _bit_pipeline(regex, ALPHABET).to_dfa()
        assert view.initial == reference.initial
        assert view.accepting == reference.accepting
        assert view.transitions == reference.transitions
        assert view.alphabet.symbols == reference.alphabet.symbols

    @pytest.mark.parametrize("source", SOURCES)
    def test_complement_view_is_byte_identical(self, source):
        regex = parse_regex(source)
        reference = complement(_dict_pipeline(regex, ALPHABET))
        view = bit_complement(_bit_pipeline(regex, ALPHABET)).to_dfa()
        assert view.initial == reference.initial
        assert view.accepting == reference.accepting
        assert view.transitions == reference.transitions

    def test_fuzzed_targets_roundtrip(self):
        """The identity holds on 60 fuzzer-drawn targets, not just the pins."""
        for seed in range(60):
            scenario = fuzz_word_scenario(seed)
            alphabet = Alphabet.closure(regex_symbols(scenario.target))
            reference = _dict_pipeline(scenario.target, alphabet)
            view = _bit_pipeline(scenario.target, alphabet).to_dfa()
            assert view.transitions == reference.transitions, (
                "seed %d: bitset pipeline diverged from dict pipeline" % seed
            )
            assert view.accepting == reference.accepting

    @pytest.mark.parametrize("source", SOURCES)
    def test_from_dfa_preserves_language(self, source):
        regex = parse_regex(source)
        reference = _dict_pipeline(regex, ALPHABET)
        bd = from_dfa(reference)
        for seed in range(8):
            scenario = fuzz_word_scenario(seed)
            word = tuple(ALPHABET.canon(s) for s in scenario.word)
            assert bd.accepts(word) == reference.accepts(word)

    def test_pickle_roundtrip_drops_caches(self):
        bd = _bit_pipeline(parse_regex("(a | b)*.c"), ALPHABET)
        bd.pred()  # populate the lazy predecessor cache
        clone = pickle.loads(pickle.dumps(bd))
        assert clone == bd
        assert clone.to_dfa().transitions == bd.to_dfa().transitions


# ---------------------------------------------------------------------------
# Decision procedures
# ---------------------------------------------------------------------------


class TestDecisionProcedures:
    def _pairs(self):
        compiled = [(s, _dict_pipeline(parse_regex(s), ALPHABET)) for s in SOURCES]
        for left_source, left in compiled:
            for right_source, right in compiled:
                yield left_source, left, right_source, right

    def test_bit_subset_matches_reference(self):
        with using_core(DICT):
            for ls, left, rs, right in self._pairs():
                expected = language_subset(left, right, minimized=True)
                assert bit_subset(from_dfa(left), from_dfa(right)) == expected, (
                    "subset(%s, %s)" % (ls, rs)
                )

    def test_bit_intersects_matches_reference(self):
        with using_core(DICT):
            for ls, left, rs, right in self._pairs():
                expected = intersects(left, right, minimized=True)
                assert bit_intersects(from_dfa(left), from_dfa(right)) == expected, (
                    "intersects(%s, %s)" % (ls, rs)
                )

    def test_ops_dispatch_agrees_across_cores(self):
        """`language_subset` answers identically under both cores."""
        compiled = [_dict_pipeline(parse_regex(s), ALPHABET) for s in SOURCES]
        for left in compiled:
            for right in compiled:
                with using_core(DICT):
                    expected = language_subset(left, right, minimized=True)
                with using_core(BITSET):
                    assert language_subset(left, right, minimized=True) == expected

    def test_antichain_cross_validation_500_seeds(self):
        """Antichain inclusion vs complement-and-intersect on 500 pairs.

        Each seeded pair draws two fuzzer targets (stars included); the
        right side stays a Glushkov NFA for the antichain — no subset
        construction, no complement — yet the verdict must match the
        dict core's reference on every pair.
        """
        disagreements = []
        for seed in range(500):
            left_regex = fuzz_word_scenario(seed).target
            right_regex = fuzz_word_scenario(seed + 10_000).target
            alphabet = Alphabet.closure(
                regex_symbols(left_regex), regex_symbols(right_regex)
            )
            with using_core(DICT):
                expected = language_subset(
                    _dict_pipeline(left_regex, alphabet),
                    _dict_pipeline(right_regex, alphabet),
                    minimized=True,
                )
            got = antichain_language_subset(
                _bit_pipeline(left_regex, alphabet),
                glushkov_nfa(right_regex),
                alphabet,
            )
            if got != expected:
                disagreements.append(seed)
        assert not disagreements, (
            "antichain disagreed with complement-and-intersect on seeds %r"
            % disagreements[:10]
        )

    def test_antichain_counterexample_direction(self):
        """A strict superset on the left must come back ``False``."""
        left = parse_regex("a*")
        right = parse_regex("a{0,3}")
        alphabet = Alphabet.closure({"a"})
        assert not antichain_language_subset(
            _bit_pipeline(left, alphabet), glushkov_nfa(right), alphabet
        )
        assert antichain_language_subset(
            _bit_pipeline(right, alphabet), glushkov_nfa(left), alphabet
        )


# ---------------------------------------------------------------------------
# Solver agreement under the core switch
# ---------------------------------------------------------------------------


class TestSolverAgreement:
    def _verdicts(self, scenario):
        kwargs = dict(k=scenario.k)
        safe = analyze_safe(
            scenario.word, scenario.output_types, scenario.target, **kwargs
        )
        lazy = analyze_safe_lazy(
            scenario.word, scenario.output_types, scenario.target, **kwargs
        )
        possible = analyze_possible(
            scenario.word, scenario.output_types, scenario.target, **kwargs
        )
        return safe, lazy, possible

    @pytest.mark.parametrize("seed", range(0, 40))
    def test_verdicts_match_dict_core(self, seed):
        scenario = fuzz_word_scenario(seed)
        with using_core(DICT):
            d_safe, d_lazy, d_possible = self._verdicts(scenario)
        with using_core(BITSET):
            b_safe, b_lazy, b_possible = self._verdicts(scenario)
        assert b_safe.exists == d_safe.exists
        assert b_lazy.exists == d_lazy.exists
        assert b_possible.exists == d_possible.exists
        # Safe implies lazy-safe implies possible, on both cores.
        if b_safe.exists:
            assert b_lazy.exists
        if b_lazy.exists:
            assert b_possible.exists
        # The lazy solver never explores more than the eager one.
        assert b_lazy.stats.product_explored <= b_safe.stats.product_explored

    @pytest.mark.parametrize("seed", [3, 7, 11, 19])
    def test_marked_sets_agree_on_executor_region(self, seed):
        """Bitset marking agrees with dict marking on explored nodes.

        The executor only inspects nodes the dict solver explored; on
        those, is_marked must coincide so plans and previews match.
        """
        scenario = fuzz_word_scenario(seed)
        with using_core(DICT):
            reference = analyze_safe(
                scenario.word, scenario.output_types, scenario.target,
                k=scenario.k,
            )
        with using_core(BITSET):
            analysis = analyze_safe(
                scenario.word, scenario.output_types, scenario.target,
                k=scenario.k,
            )
        for node in reference.explored:
            assert analysis.is_marked(node) == reference.is_marked(node), node


# ---------------------------------------------------------------------------
# The core switch and the PNodeBitSet view
# ---------------------------------------------------------------------------


class TestCoreSwitch:
    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOMATA_CORE", raising=False)
        assert active_core() == DICT

    def test_env_selects_bitset(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOMATA_CORE", "bitset")
        assert active_core() == BITSET

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOMATA_CORE", "simd")
        with pytest.raises(ValueError):
            active_core()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOMATA_CORE", "bitset")
        with using_core(DICT):
            assert active_core() == DICT
        assert active_core() == BITSET

    def test_override_restores_on_exit(self):
        before = active_core()
        with using_core(BITSET):
            assert active_core() == BITSET
        assert active_core() == before


class TestPNodeBitSet:
    def _set(self):
        return PNodeBitSet({0: 0b101, 2: 0b10})

    def test_membership(self):
        nodes = self._set()
        assert (0, 0) in nodes
        assert (0, 2) in nodes
        assert (2, 1) in nodes
        assert (0, 1) not in nodes
        assert (1, 0) not in nodes

    def test_len_and_iter(self):
        nodes = self._set()
        assert len(nodes) == 3
        assert sorted(nodes) == [(0, 0), (0, 2), (2, 1)]

    def test_bool_and_mask(self):
        assert self._set()
        assert not PNodeBitSet({})
        assert not PNodeBitSet({4: 0})
        assert self._set().mask(0) == 0b101
        assert self._set().mask(7) == 0


class TestIterBits:
    def test_enumerates_set_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1)) == [0]
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        big = (1 << 200) | (1 << 63) | 1
        assert list(iter_bits(big)) == [0, 63, 200]
