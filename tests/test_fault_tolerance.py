"""Integration tests: fault tolerance across the whole exchange stack.

The acceptance scenario of the resilient invocation layer: a wide
newspaper front page whose weather provider faults on every third call.
Without the layer the exchange aborts; with the default policy it
completes, deterministically, and the transfer receipt records exactly
what the recovery cost.  Plus: AUTO-mode graceful degradation around a
dead provider, retries composed with possible-mode backtracking, and the
receiver-side validation fix (receiver's vocabulary, not the sender's).
"""

import pytest

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    ResiliencePolicy,
    ResilientInvoker,
    RewriteEngine,
    SchemaBuilder,
    Service,
    ServiceFault,
    call,
    constant_responder,
    el,
    flaky_responder,
    outage_responder,
    parse_regex,
    text,
)
from repro.doc.document import Document
from repro.workloads import newspaper

WIDTH = 8


def wide_network(resilience=None, fail_every=3):
    """Alice (wide schema-*) sends to Bob (wide schema-**) over a flaky
    forecast provider: every ``fail_every``-th Get_Temp call faults."""
    star = newspaper.wide_schema_star(WIDTH)
    star2 = newspaper.wide_schema_star2(WIDTH)
    alice = AXMLPeer("alice", star, resilience=resilience)
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        flaky_responder(constant_responder((el("temp", "15"),)), fail_every),
    )
    alice.registry.register(forecast)
    bob = AXMLPeer("bob", star2)
    network = PeerNetwork()
    network.add_peer(alice)
    network.add_peer(bob)
    network.agree("alice", "bob", star2)
    alice.repository.store("front", newspaper.wide_document(WIDTH))
    return network, bob


class TestAcceptanceScenario:
    """ISSUE acceptance: the exchange that aborts today completes under
    ResilientInvoker defaults, with exact counts on the receipt."""

    def test_plain_exchange_aborts_on_the_third_call(self):
        network, _bob = wide_network(resilience=None)
        receipt = network.send("alice", "bob", "front")
        assert not receipt.accepted
        assert "simulated outage" in receipt.error
        assert receipt.fault_report is None
        assert receipt.retries == 0

    def test_resilient_exchange_completes(self):
        network, bob = wide_network(resilience=ResiliencePolicy())
        receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        assert receipt.calls_materialized == WIDTH
        # Every third physical attempt faulted: 8 calls, 3 of them
        # retried once each (attempts 3, 6 and 9 of 11 fault).
        assert receipt.retries == 3
        assert receipt.faults == 3
        assert receipt.breaker_opens == 0
        report = receipt.fault_report
        assert report is not None
        assert (report.calls, report.attempts) == (WIDTH, 11)
        assert report.recovered_calls == 3
        assert report.summary() == (
            "8 call(s), 11 attempt(s), 3 retries, 3 fault(s)"
        )
        delivered = bob.repository.get("front")
        assert delivered.is_extensional()

    def test_resilient_exchange_is_deterministic(self):
        def run():
            network, bob = wide_network(resilience=ResiliencePolicy())
            receipt = network.send("alice", "bob", "front")
            return receipt, bob.repository.get("front").to_xml()

        first, first_xml = run()
        second, second_xml = run()
        assert first_xml == second_xml
        assert (first.retries, first.faults) == (second.retries, second.faults)
        assert (
            first.fault_report.backoff_seconds
            == second.fault_report.backoff_seconds
        )

    def test_fresh_invoker_per_exchange(self):
        # Receipts must not accumulate counts across transfers: the peer
        # builds a fresh ResilientInvoker per enforcement pass.
        network, _bob = wide_network(resilience=ResiliencePolicy())
        first = network.send("alice", "bob", "front")
        second = network.send("alice", "bob", "front")
        assert first.accepted and second.accepted
        assert second.fault_report.calls == WIDTH
        assert second.fault_report is not first.fault_report


class TestGracefulDegradation:
    """AUTO mode re-analyzes with a dead function marked non-invocable."""

    def build(self):
        schema = (
            SchemaBuilder()
            .element("root", "(Get_Temp.temp) | (temp.TimeOut)")
            .element("temp", "data")
            .element("performance", "data")
            .element("city", "data")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(temp | performance)")
            .root("root")
            .build(strict=False)
        )
        engine = RewriteEngine(target_schema=schema, mode="auto")
        target = parse_regex("(Get_Temp.temp) | (temp.TimeOut)")
        forest = (call("Get_Temp", el("city", "Paris")), call("TimeOut", text("x")))
        return engine, target, forest

    def test_dead_function_triggers_replanning(self):
        engine, target, forest = self.build()

        def raw(fc):
            if fc.name == "Get_Temp":
                raise ServiceFault("provider down")
            return (el("temp", "21"),)

        invoker = ResilientInvoker(raw, ResiliencePolicy(max_attempts=2))
        stats = {"words": 0, "product": 0, "mode": "safe"}
        out = engine.rewrite_forest(forest, target, invoker, stats=stats)
        # The safe plan (invoke Get_Temp, keep TimeOut) dies with the
        # provider; the degraded plan keeps Get_Temp intensional and
        # invokes TimeOut instead — matching the target's first branch.
        word = [getattr(n, "label", None) or n.name for n in out]
        assert word == ["Get_Temp", "temp"]
        assert stats["dead"] == {"Get_Temp"}
        assert stats["degradations"] == 1
        assert stats["mode"] == "possible"
        assert invoker.report.dead_functions == ["Get_Temp"]

    def test_degradation_reported_on_document_rewrite(self):
        engine, target, forest = self.build()
        document = Document(el("root", *forest))

        def raw(fc):
            if fc.name == "Get_Temp":
                raise ServiceFault("provider down")
            return (el("temp", "21"),)

        invoker = ResilientInvoker(raw, ResiliencePolicy(max_attempts=2))
        result = engine.rewrite(document, invoker)
        assert result.degraded
        assert result.degraded_functions == ("Get_Temp",)

    def test_no_degradation_outside_auto_mode(self):
        engine, target, forest = self.build()
        engine.mode = "safe"

        def raw(fc):
            raise ServiceFault("provider down")

        invoker = ResilientInvoker(raw, ResiliencePolicy(max_attempts=2))
        from repro.errors import FunctionUnavailableError

        with pytest.raises(FunctionUnavailableError):
            engine.rewrite_forest(forest, target, invoker)


class TestBacktrackingComposition:
    """Retries compose with possible-mode backtracking: faulted attempts
    are retried in place and side effects are not double-counted."""

    def build_engine(self):
        schema = (
            SchemaBuilder()
            .element("root", "exhibit*")
            .element("exhibit", "data")
            .function("TimeOut", "data", "exhibit*")
            .root("root")
            .build(strict=False)
        )
        return RewriteEngine(target_schema=schema, mode="possible")

    def test_faulted_branch_is_retried_not_recounted(self):
        engine = self.build_engine()
        service = Service("http://www.timeout.com/paris")
        service.add_operation(
            "TimeOut",
            FunctionSignature(parse_regex("data"), parse_regex("exhibit*")),
            outage_responder(
                constant_responder((el("exhibit", "Picasso"),)), [(1, 1)]
            ),
        )
        from repro import ServiceRegistry

        registry = ServiceRegistry().register(service)
        invoker = registry.make_invoker(resilience=ResiliencePolicy())
        forest = (call("TimeOut", text("x")),)
        result = engine.rewrite(Document(el("root", *forest)), invoker)
        assert result.mode_used == "possible"
        # One logical invocation (retried once); the log has exactly one
        # useful record — the faulted attempt produced no phantom entry.
        assert invoker.report.calls == 1
        assert invoker.report.attempts == 2
        assert invoker.report.retries == 1
        assert len(result.log.records) == 1
        assert not result.log.records[0].backtracked
        # The service saw both physical attempts, the first faulted.
        assert [record.faulted for record in service.calls] == [True, False]


class TestReceiverSchemaValidation:
    """Satellite fix: the receiver validates with *its own* vocabulary."""

    def diverging_network(self):
        # The sender privately declares an extra label ("rumor") that the
        # agreement's content model never references but the wire format
        # could smuggle through if the receiver validated with the
        # sender's vocabulary instead of its own.
        sender_schema = (
            SchemaBuilder()
            .element("news", "story*")
            .element("story", "data")
            .element("rumor", "data")
            .root("news")
            .build(strict=False)
        )
        receiver_schema = (
            SchemaBuilder()
            .element("news", "story*")
            .element("story", "data")
            .root("news")
            .build(strict=False)
        )
        agreement = (
            SchemaBuilder()
            .element("news", "story*")
            .element("story", "data")
            .root("news")
            .build(strict=False)
        )
        alice = AXMLPeer("alice", sender_schema)
        bob = AXMLPeer("bob", receiver_schema)
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", agreement)
        return network, alice, bob

    def test_conformant_document_accepted(self):
        network, alice, bob = self.diverging_network()
        alice.repository.store(
            "wire", Document(el("news", el("story", "all good")))
        )
        receipt = network.send("alice", "bob", "wire")
        assert receipt.accepted
        assert bob.repository.get("wire").root_symbol == "news"

    def test_validation_uses_receiver_vocabulary(self):
        from repro.schema.validate import validate

        network, alice, bob = self.diverging_network()
        agreement = network.agreements[("alice", "bob")]
        smuggled = Document(el("news", el("story", "ok"), el("rumor", "!")))
        # Against the *sender's* vocabulary the extra label is declared;
        # against the receiver's it is not — the network must side with
        # the receiver (defense in depth).
        assert not validate(smuggled, agreement, bob.schema).ok
