"""Brute-force oracle for the safe-rewriting game (k=1, finite outputs).

Definition 5 defines safety recursively over single rewrite steps.  For
k=1 and *star-free* output types the quantification is finite, so it can
be evaluated directly as a game tree:

- at a call we choose: keep it, or invoke it and then win for EVERY
  output word the type admits (adaptively — the continuation may depend
  on which output came back);
- at a plain symbol there is no choice;
- at the end, the produced word must be in the target language.

The automata algorithm must agree with this oracle on every randomly
generated instance; its possible-rewriting sibling must agree with the
`any` variant.  This is the most direct check that the marking game
implements the paper's semantics.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.regex import ast
from repro.regex.ops import enumerate_words, matches
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe

SYMBOLS = ("a", "b", "c")


def finite_regexes(symbols=SYMBOLS, max_leaves=4):
    """Star-free regexes: their languages are finite and enumerable."""
    leaves = st.sampled_from([ast.atom(s) for s in symbols] + [ast.EPSILON])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: ast.seq(*p)),
            st.tuples(children, children).map(lambda p: ast.alt(*p)),
            children.map(ast.opt),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


@st.composite
def oracle_problems(draw):
    n = draw(st.integers(1, 3))
    word = []
    outputs = {}
    for i in range(n):
        if draw(st.booleans()):
            word.append(draw(st.sampled_from(SYMBOLS)))
        else:
            name = "q%d" % i
            outputs[name] = draw(finite_regexes())
            word.append(name)
    target = draw(finite_regexes(max_leaves=6))
    return tuple(word), outputs, target


def oracle(word, outputs, target, universal: bool) -> bool:
    """Direct game-tree evaluation of Definition 5 at k=1.

    ``universal=True`` evaluates safety (win against every output);
    ``False`` evaluates possibility (win for some output).
    """
    output_words = {
        name: tuple(enumerate_words(expr, 8))
        for name, expr in outputs.items()
    }

    def rec(i: int, produced: tuple) -> bool:
        if i == len(word):
            return matches(target, list(produced))
        symbol = word[i]
        if symbol not in outputs:
            return rec(i + 1, produced + (symbol,))
        keep = rec(i + 1, produced + (symbol,))
        if keep:
            return True
        candidates = output_words[symbol]
        quantifier = all if universal else any
        return quantifier(
            rec(i + 1, produced + out) for out in candidates
        )

    return rec(0, ())


class TestOracleAgreement:
    @given(oracle_problems())
    @settings(max_examples=200, deadline=None)
    def test_safe_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=True)
        got = analyze_safe(word, outputs, target, k=1).exists
        assert got == expected, (word, str(target))

    @given(oracle_problems())
    @settings(max_examples=200, deadline=None)
    def test_lazy_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=True)
        got = analyze_safe_lazy(word, outputs, target, k=1).exists
        assert got == expected

    @given(oracle_problems())
    @settings(max_examples=150, deadline=None)
    def test_possible_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=False)
        got = analyze_possible(word, outputs, target, k=1).exists
        assert got == expected
