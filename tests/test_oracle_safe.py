"""Brute-force oracle for the safe-rewriting game (k=1, finite outputs).

Definition 5 defines safety recursively over single rewrite steps.  For
k=1 and *star-free* output types the quantification is finite, so it can
be evaluated directly as a game tree:

- at a call we choose: keep it, or invoke it and then win for EVERY
  output word the type admits (adaptively — the continuation may depend
  on which output came back);
- at a plain symbol there is no choice;
- at the end, the produced word must be in the target language.

The automata algorithm must agree with this oracle on every randomly
generated instance; its possible-rewriting sibling must agree with the
`any` variant.  This is the most direct check that the marking game
implements the paper's semantics.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.regex import ast
from repro.regex.ops import enumerate_words, matches
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe

SYMBOLS = ("a", "b", "c")


def finite_regexes(symbols=SYMBOLS, max_leaves=4):
    """Star-free regexes: their languages are finite and enumerable."""
    leaves = st.sampled_from([ast.atom(s) for s in symbols] + [ast.EPSILON])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: ast.seq(*p)),
            st.tuples(children, children).map(lambda p: ast.alt(*p)),
            children.map(ast.opt),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


@st.composite
def oracle_problems(draw):
    n = draw(st.integers(1, 3))
    word = []
    outputs = {}
    for i in range(n):
        if draw(st.booleans()):
            word.append(draw(st.sampled_from(SYMBOLS)))
        else:
            name = "q%d" % i
            outputs[name] = draw(finite_regexes())
            word.append(name)
    target = draw(finite_regexes(max_leaves=6))
    return tuple(word), outputs, target


def oracle(word, outputs, target, universal: bool) -> bool:
    """Direct game-tree evaluation of Definition 5 at k=1.

    ``universal=True`` evaluates safety (win against every output);
    ``False`` evaluates possibility (win for some output).
    """
    output_words = {
        name: tuple(enumerate_words(expr, 8))
        for name, expr in outputs.items()
    }

    def rec(i: int, produced: tuple) -> bool:
        if i == len(word):
            return matches(target, list(produced))
        symbol = word[i]
        if symbol not in outputs:
            return rec(i + 1, produced + (symbol,))
        keep = rec(i + 1, produced + (symbol,))
        if keep:
            return True
        candidates = output_words[symbol]
        quantifier = all if universal else any
        return quantifier(
            rec(i + 1, produced + out) for out in candidates
        )

    return rec(0, ())


@st.composite
def nested_problems(draw):
    """Problems whose call outputs may mention calls: k=2 territory.

    Output types stay star-free (finite languages) so the reference
    interpreter's enumeration is exhaustive and agreement with the
    automata solvers is a hard requirement, not a sampled one.
    """
    n_calls = draw(st.integers(1, 2))
    names = tuple("q%d" % (i + 1) for i in range(n_calls))
    outputs = {}
    for name in names:
        symbols = SYMBOLS + (names if draw(st.booleans()) else ())
        outputs[name] = draw(finite_regexes(symbols=symbols))
    word = tuple(
        draw(st.sampled_from(SYMBOLS + names))
        for _ in range(draw(st.integers(1, 3)))
    )
    target = draw(finite_regexes(symbols=SYMBOLS + names, max_leaves=6))
    k = draw(st.sampled_from((1, 2)))
    return word, outputs, target, k


class TestReferenceInterpreterAgreement:
    """The conformance reference interpreter vs. the automata stack, k≤2.

    The k=1 classes below check the solvers against a *local* game tree;
    these check them against the shipped executable specification
    (:mod:`repro.conformance.reference`), including depth-2 nesting where
    invoked calls return further calls.
    """

    @given(nested_problems())
    @settings(max_examples=150, deadline=None)
    def test_safe_matches_reference(self, problem):
        from repro.conformance.reference import reference_safe

        word, outputs, target, k = problem
        verdict = reference_safe(word, outputs, target, k)
        assert verdict.exact, "star-free outputs must enumerate exactly"
        got = analyze_safe(word, outputs, target, k).exists
        assert got == verdict.exists, (word, k, str(target))

    @given(nested_problems())
    @settings(max_examples=150, deadline=None)
    def test_lazy_matches_reference(self, problem):
        from repro.conformance.reference import reference_safe

        word, outputs, target, k = problem
        verdict = reference_safe(word, outputs, target, k)
        got = analyze_safe_lazy(word, outputs, target, k).exists
        assert got == verdict.exists, (word, k, str(target))

    @given(nested_problems())
    @settings(max_examples=150, deadline=None)
    def test_possible_matches_reference(self, problem):
        from repro.conformance.reference import reference_possible

        word, outputs, target, k = problem
        verdict = reference_possible(word, outputs, target, k)
        assert verdict.exact
        got = analyze_possible(word, outputs, target, k).exists
        assert got == verdict.exists, (word, k, str(target))

    @given(nested_problems())
    @settings(max_examples=100, deadline=None)
    def test_safe_implies_possible(self, problem):
        from repro.conformance.reference import (
            reference_possible,
            reference_safe,
        )

        word, outputs, target, k = problem
        if reference_safe(word, outputs, target, k).exists:
            assert reference_possible(word, outputs, target, k).exists

    def test_reference_game_tree_agrees_with_local_oracle(self):
        # The two independent oracles (this file's k=1 game tree and the
        # shipped reference interpreter) must agree with each other too.
        from repro.conformance.reference import (
            reference_possible,
            reference_safe,
        )

        word = ("q0", "a", "q1")
        outputs = {
            "q0": ast.alt(ast.atom("a"), ast.atom("b")),
            "q1": ast.seq(ast.atom("b"), ast.opt(ast.atom("c"))),
        }
        target = ast.seq(
            ast.alt(ast.atom("a"), ast.atom("b")),
            ast.atom("a"),
            ast.atom("b"),
            ast.opt(ast.atom("c")),
        )
        assert reference_safe(word, outputs, target, 1).exists == oracle(
            word, outputs, target, universal=True
        )
        assert reference_possible(word, outputs, target, 1).exists == oracle(
            word, outputs, target, universal=False
        )


class TestOracleAgreement:
    @given(oracle_problems())
    @settings(max_examples=200, deadline=None)
    def test_safe_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=True)
        got = analyze_safe(word, outputs, target, k=1).exists
        assert got == expected, (word, str(target))

    @given(oracle_problems())
    @settings(max_examples=200, deadline=None)
    def test_lazy_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=True)
        got = analyze_safe_lazy(word, outputs, target, k=1).exists
        assert got == expected

    @given(oracle_problems())
    @settings(max_examples=150, deadline=None)
    def test_possible_analysis_equals_game_tree(self, problem):
        word, outputs, target = problem
        expected = oracle(word, outputs, target, universal=False)
        got = analyze_possible(word, outputs, target, k=1).exists
        assert got == expected
