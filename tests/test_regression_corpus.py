"""A table-driven corpus of word-rewriting problems with known answers.

Each case pins the expected outcome of safe (LTR), possible, and — where
interesting — the RTL direction and the optimal worst-case cost.  All
solvers must agree with the table *and* with each other; the corpus is
the first place to add a regression when a bug is found.
"""

import math
import os

import pytest

from repro.regex.parser import parse_regex
from repro.rewriting.direction import RTL, analyze_safe_directed
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.optimal import strategy_values
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe


class Case:
    def __init__(self, name, word, outputs, target, k=1,
                 safe=None, possible=None, rtl_safe=None, cost=None):
        self.name = name
        self.word = tuple(word.split(".")) if word else ()
        self.outputs = {
            fname: parse_regex(expr) for fname, expr in outputs.items()
        }
        self.target = parse_regex(target)
        self.k = k
        self.safe = safe
        self.possible = possible
        self.rtl_safe = rtl_safe
        self.cost = cost


CORPUS = [
    # -- plain words, no calls -------------------------------------------
    Case("identity", "a.b", {}, "a.b", safe=True, possible=True, cost=0),
    Case("mismatch", "a.b", {}, "b.a", safe=False, possible=False,
         rtl_safe=False),
    Case("empty-into-star", "", {}, "a*", safe=True, possible=True, cost=0),
    Case("empty-into-atom", "", {}, "a", safe=False, possible=False),
    Case("longer-than-target", "a.a.a", {}, "a{1,2}", safe=False,
         possible=False),
    # -- single calls -----------------------------------------------------
    Case("forced-invoke", "f", {"f": "a"}, "a", safe=True, possible=True,
         cost=1),
    Case("forced-keep", "f", {"f": "a"}, "f", safe=True, possible=True,
         cost=0),
    Case("either-works", "f", {"f": "a"}, "f | a", safe=True, possible=True,
         cost=0),
    Case("adversarial-choice", "f", {"f": "a | b"}, "a", safe=False,
         possible=True, rtl_safe=False),
    Case("adversarial-covered", "f", {"f": "a | b"}, "a | b", safe=True,
         possible=True, cost=1),
    Case("empty-output-ok", "f", {"f": "a*"}, "a*", safe=True,
         possible=True),
    Case("output-disjoint", "f", {"f": "a"}, "b", safe=False,
         possible=False, rtl_safe=False),
    Case("star-output-into-bounded", "f", {"f": "a*"}, "a{1,2}",
         safe=False, possible=True),
    # -- sequencing -------------------------------------------------------
    Case("two-calls-both-forced", "f.g", {"f": "a", "g": "b"}, "a.b",
         safe=True, possible=True, cost=2),
    Case("mixed-keep-invoke", "f.g", {"f": "a", "g": "b"}, "a.g",
         safe=True, possible=True, cost=1),
    Case("call-stretches-word", "f", {"f": "a.a.a"}, "a.a.a",
         safe=True, possible=True, cost=1),
    # Keeping gives f.a, invoking gives a.a.a — neither fits a.a.
    Case("call-cannot-fit", "f.a", {"f": "a.a"}, "a.a",
         safe=False, possible=False, rtl_safe=False),
    Case("call-kept-fits-prefix", "f.a", {"f": "a.a"}, "f.a",
         safe=True, possible=True, cost=0),
    # -- depth ------------------------------------------------------------
    Case("depth-1-insufficient", "f", {"f": "g", "g": "a"}, "a", k=1,
         safe=False, possible=False),
    Case("depth-2-sufficient", "f", {"f": "g", "g": "a"}, "a", k=2,
         safe=True, possible=True, cost=2),
    Case("k-zero-freezes", "f", {"f": "a"}, "a", k=0, safe=False,
         possible=False),
    Case("k-zero-identity", "f", {"f": "a"}, "f", k=0, safe=True,
         possible=True, cost=0),
    # -- knowledge ordering (direction-sensitive) -------------------------
    Case("needs-late-knowledge", "f.g",
         {"f": "c", "g": "a | b"}, "(c.a) | (f.b)",
         safe=False, possible=True, rtl_safe=True),
    Case("needs-early-knowledge", "f.g",
         {"f": "a | b", "g": "c"}, "(a.c) | (b.g)",
         safe=True, possible=True, rtl_safe=False, cost=2),
    # -- recursion at the boundary -----------------------------------------
    Case("unbounded-handles-never-safe", "f",
         {"f": "a*.f?"}, "a*", k=4, safe=False, possible=True),
    Case("self-feeding-but-closing", "f",
         {"f": "a | f"}, "a", k=3, safe=False, possible=True),
    # -- nondeterministic targets ------------------------------------------
    Case("nondet-target-safe", "a.a", {}, "(a|b)*.a", safe=True,
         possible=True, cost=0),
    Case("nondet-target-with-call", "f.a", {"f": "a | b"}, "(a|b)*.a",
         safe=True, possible=True),
]


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
class TestCorpus:
    def test_safe_matches_table(self, case):
        if case.safe is None:
            return
        analysis = analyze_safe(case.word, case.outputs, case.target, case.k)
        assert analysis.exists is case.safe, case.name

    def test_lazy_agrees_with_eager(self, case):
        eager = analyze_safe(case.word, case.outputs, case.target, case.k)
        lazy = analyze_safe_lazy(
            case.word, case.outputs, case.target, case.k, early_exit=False
        )
        assert eager.exists == lazy.exists, case.name

    def test_possible_matches_table(self, case):
        if case.possible is None:
            return
        analysis = analyze_possible(
            case.word, case.outputs, case.target, case.k
        )
        assert analysis.exists is case.possible, case.name

    def test_safe_implies_possible(self, case):
        safe = analyze_safe(case.word, case.outputs, case.target, case.k)
        if safe.exists:
            assert analyze_possible(
                case.word, case.outputs, case.target, case.k
            ).exists, case.name

    def test_rtl_matches_table(self, case):
        if case.rtl_safe is None:
            return
        analysis = analyze_safe_directed(
            case.word, case.outputs, case.target, case.k, direction=RTL
        )
        assert analysis.exists is case.rtl_safe, case.name

    def test_optimal_cost_matches_table(self, case):
        if case.cost is None:
            return
        analysis = analyze_safe(case.word, case.outputs, case.target, case.k)
        assert analysis.exists, case.name
        values = strategy_values(analysis)
        assert values[analysis.initial] == case.cost, case.name


# ---------------------------------------------------------------------------
# The reference interpreter against the table (independent oracle)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", CORPUS, ids=lambda case: case.name)
class TestReferenceInterpreterOnCorpus:
    """The conformance reference interpreter must reproduce the table.

    Exact verdicts (star-free outputs) are hard requirements; bounded
    verdicts on starred outputs are only checked for the safe ⇒ possible
    implication.
    """

    def test_reference_safe_matches_table(self, case):
        from repro.conformance.reference import reference_safe

        if case.safe is None:
            return
        verdict = reference_safe(case.word, case.outputs, case.target, case.k)
        if verdict.exact:
            assert verdict.exists is case.safe, case.name

    def test_reference_possible_matches_table(self, case):
        from repro.conformance.reference import reference_possible

        if case.possible is None:
            return
        verdict = reference_possible(
            case.word, case.outputs, case.target, case.k
        )
        if verdict.exact:
            assert verdict.exists is case.possible, case.name


# ---------------------------------------------------------------------------
# The JSON corpus: every frozen entry must replay clean
# ---------------------------------------------------------------------------

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _corpus_entries():
    from repro.conformance.corpus import corpus_paths

    return corpus_paths(CORPUS_DIR)


@pytest.mark.parametrize(
    "path", _corpus_entries(), ids=lambda path: os.path.basename(path)
)
class TestJsonCorpusReplay:
    """Replay every ``tests/corpus/*.json`` entry through the harness.

    Each entry is a once-interesting scenario (paper examples, fuzzed
    regressions) frozen with its full data — schemas, document, knobs —
    so replays survive generator changes.  A failing replay means a
    solver or an engine configuration drifted.
    """

    def test_entry_replays_without_disagreement(self, path):
        from repro.conformance.corpus import load_entry, replay_entry

        entry = load_entry(path)
        disagreements = replay_entry(entry)
        assert disagreements == [], "\n".join(
            str(d) for d in disagreements
        )

    def test_entry_round_trips_through_serialization(self, path):
        from repro.conformance.corpus import (
            document_entry,
            document_scenario_from_entry,
            edit_entry,
            edit_scenario_from_entry,
            load_entry,
            word_entry,
            word_scenario_from_entry,
        )

        entry = load_entry(path)
        if entry["kind"] == "word":
            scenario = word_scenario_from_entry(entry)
            again = word_entry(scenario, note=entry.get("note", ""))
        elif entry["kind"] == "edits":
            scenario = edit_scenario_from_entry(entry)
            again = edit_entry(scenario, note=entry.get("note", ""))
        else:
            scenario = document_scenario_from_entry(entry)
            again = document_entry(scenario, note=entry.get("note", ""))
        assert again == entry


def test_json_corpus_is_seeded():
    # The shipped corpus starts at ten entries and only ever grows.
    assert len(_corpus_entries()) >= 10
