"""Smoke tests: every shipped example must run end to end.

Examples are documentation that executes; these tests keep them honest
as the library evolves.  Each example's ``main()`` is imported and run
with stdout captured (and checked for its key claims).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, capsys, argv=None, monkeypatch=None):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(EXAMPLES_DIR, name + ".py")
    )
    module = importlib.util.module_from_spec(spec)
    if argv is not None and monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [name] + argv)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "invoked ['Get_Temp']" in out
        assert "correctly refused" in out
        assert "Possible rewriting into (***)" in out

    def test_newspaper_portal(self, capsys):
        out = run_example("newspaper_portal", capsys)
        assert "archive" in out and "browser" in out and "printer" in out
        # The materialization spectrum: archive ships 0 calls, printer 2.
        lines = [l for l in out.splitlines() if l.startswith(("archive", "printer"))]
        assert any("0" in l for l in lines if l.startswith("archive"))

    def test_secure_exchange(self, capsys):
        out = run_example("secure_exchange", capsys)
        assert "sender invoked: ['Get_Temp']" in out
        assert "rejected (pattern predicate fails)" in out
        assert "probes fired: 0" in out

    def test_search_engine(self, capsys):
        out = run_example("search_engine", capsys)
        assert "Safe rewriting possible (even with k=10)? False" in out
        assert "failed at run time" in out
        assert "success: 6 urls" in out

    def test_schema_compatibility(self, capsys):
        out = run_example("schema_compatibility", capsys)
        assert "compatible" in out and "NOT compatible" in out
        assert "newspaper: NOT safe" in out

    def test_data_integration(self, capsys):
        out = run_example("data_integration", capsys)
        assert "mediator" in out and "warehouse" in out
        assert "negotiator (intensional preference) picks: mediator" in out
        assert "providers of product*: ['Get_Products']" in out

    def test_render_figures(self, capsys, tmp_path, monkeypatch):
        out = run_example(
            "render_figures", capsys, argv=[str(tmp_path)],
            monkeypatch=monkeypatch,
        )
        assert out.count("wrote") == 7
        assert (tmp_path / "fig6_product_star2.dot").exists()
