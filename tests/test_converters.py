"""Unit tests for automatic converters (conclusion extension)."""

import pytest

from repro import (
    Document,
    DropElement,
    MapData,
    RenameLabel,
    SchemaBuilder,
    SchemaEnforcer,
    Unwrap,
    Wrap,
    call,
    convert_document,
    el,
    is_instance,
    text,
)
from repro.rewriting.converters import convert_forest


def celsius_to_fahrenheit(value: str) -> str:
    return "%.0f" % (float(value) * 9 / 5 + 32)


class TestIndividualConverters:
    def test_rename(self):
        doc = Document(el("a", el("temperature", "20")))
        out = convert_document(doc, (RenameLabel("temperature", "temp"),))
        assert out.root.children[0].label == "temp"

    def test_map_data_celsius_to_fahrenheit(self):
        doc = Document(el("a", el("temp", "20")))
        out = convert_document(
            doc, (MapData("temp", celsius_to_fahrenheit),)
        )
        assert out.root.children[0].children[0].value == "68"

    def test_map_data_skips_non_leaf(self):
        doc = Document(el("a", el("temp", el("deep", "20"))))
        out = convert_document(doc, (MapData("temp", celsius_to_fahrenheit),))
        assert out == doc

    def test_unwrap(self):
        doc = Document(el("a", el("wrapper", el("x"), el("y"))))
        out = convert_document(doc, (Unwrap("wrapper"),))
        assert [c.label for c in out.root.children] == ["x", "y"]

    def test_wrap(self):
        doc = Document(el("a", el("x")))
        out = convert_document(doc, (Wrap("x", "box"),))
        box = out.root.children[0]
        assert box.label == "box" and box.children[0].label == "x"

    def test_wrap_does_not_rewrap_its_output(self):
        doc = Document(el("a", el("x")))
        out = convert_document(doc, (Wrap("x", "x-box"),))
        assert out.root.children[0].label == "x-box"
        assert out.root.children[0].children[0].label == "x"

    def test_drop(self):
        doc = Document(el("a", el("junk"), el("keep")))
        out = convert_document(doc, (DropElement("junk"),))
        assert [c.label for c in out.root.children] == ["keep"]

    def test_function_parameters_converted_too(self):
        doc = Document(el("a", call("f", el("temperature", "5"))))
        out = convert_document(doc, (RenameLabel("temperature", "temp"),))
        assert out.root.children[0].params[0].label == "temp"

    def test_root_must_survive(self):
        doc = Document(el("junk"))
        with pytest.raises(ValueError):
            convert_document(doc, (DropElement("junk"),))

    def test_pipeline_order_matters(self):
        forest = convert_forest(
            (el("temperature", "20"),),
            (RenameLabel("temperature", "temp"),
             MapData("temp", celsius_to_fahrenheit)),
        )
        assert forest[0].children[0].value == "68"


class TestEnforcerIntegration:
    def schemas(self):
        sender = (
            SchemaBuilder()
            .element("report", "temperature")
            .element("temperature", "data")
            .build()
        )
        receiver = (
            SchemaBuilder()
            .element("report", "temp")
            .element("temp", "data")
            .build()
        )
        return sender, receiver

    def test_converters_rescue_the_exchange(self):
        sender, receiver = self.schemas()
        doc = Document(el("report", el("temperature", "20")))
        plain = SchemaEnforcer(receiver, sender)
        assert not plain.enforce_document(doc, lambda fc: ()).ok

        converting = SchemaEnforcer(
            receiver, sender,
            converters=(RenameLabel("temperature", "temp"),
                        MapData("temp", celsius_to_fahrenheit)),
        )
        outcome = converting.enforce_document(doc, lambda fc: ())
        assert outcome.ok
        assert is_instance(outcome.document, receiver)
        assert outcome.document.root.children[0].children[0].value == "68"

    def test_useless_converters_still_report_error(self):
        sender, receiver = self.schemas()
        doc = Document(el("report", el("temperature", "20")))
        enforcer = SchemaEnforcer(
            receiver, sender, converters=(DropElement("nothing"),)
        )
        outcome = enforcer.enforce_document(doc, lambda fc: ())
        assert not outcome.ok
        assert outcome.error
