"""Unit tests for the one-unambiguity (XML Schema determinism) check."""

import pytest

from repro.regex.ast import AnySymbol, atom, seq
from repro.regex.determinism import find_ambiguity, is_one_unambiguous
from repro.regex.parser import parse_regex


class TestOneUnambiguous:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a.b.c",
            "(a | b)*",
            "a*.b",
            "a?.b",
            "title.date.(Get_Temp | temp).(TimeOut | exhibit*)",
            "title.date.temp.exhibit*",
            "a{2,4}",  # nested-optional unfolding keeps counting deterministic
            "a{0,3}.b",
            "(a.b)*",
        ],
    )
    def test_deterministic(self, text):
        assert is_one_unambiguous(parse_regex(text))

    @pytest.mark.parametrize(
        "text",
        [
            "(a.b) | (a.c)",  # classic lookahead ambiguity
            "a*.a",
            "(a | a.b)",
            "(a.b)* . a",
            "(a|b)*.a.(a|b)",  # the exponential-complement family
        ],
    )
    def test_nondeterministic(self, text):
        assert not is_one_unambiguous(parse_regex(text))

    def test_witness_is_reported(self):
        witness = find_ambiguity(parse_regex("(a.b) | (a.c)"))
        assert witness is not None
        state, guard_a, guard_b = witness
        assert guard_a == "a" and guard_b == "a"

    def test_two_wildcards_always_overlap(self):
        expr = seq(AnySymbol().opt(), AnySymbol())
        assert not is_one_unambiguous(expr)

    def test_wildcard_vs_excluded_symbol_no_overlap(self):
        # (any \ {a})? . a  is deterministic: 'a' can only be the second atom.
        expr = seq(AnySymbol(frozenset({"a"})).opt(), atom("a"))
        assert is_one_unambiguous(expr)

    def test_wildcard_vs_other_symbol_overlaps(self):
        expr = seq(AnySymbol().opt(), atom("a"))
        assert not is_one_unambiguous(expr)
