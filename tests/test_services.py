"""Unit tests for the simulated Web-service fabric."""

import random

import pytest

from repro import (
    AccessControlList,
    FunctionSignature,
    Service,
    ServiceRegistry,
    adversarial_responder,
    call,
    constant_responder,
    el,
    flaky_responder,
    parse_regex,
    sampling_responder,
    scripted_responder,
    text,
)
from repro.errors import (
    AccessDeniedError,
    ServiceFault,
    UnknownServiceError,
)
from repro.services.predicates import in_acl, uddif
from repro.services.soap import (
    decode_request,
    decode_response,
    encode_fault,
    encode_request,
    encode_response,
    raise_if_fault,
)


SIG = FunctionSignature(parse_regex("city"), parse_regex("temp"))


def make_service(**kwargs):
    service = Service("http://forecast.example.com", "urn:weather", **kwargs)
    service.add_operation(
        "Get_Temp", SIG, constant_responder((el("temp", "15"),)),
        side_effect_free=True,
    )
    return service


class TestService:
    def test_invoke_records_calls(self):
        service = make_service()
        out = service.invoke("Get_Temp", (el("city", "Paris"),))
        assert out == (el("temp", "15"),)
        assert service.call_count() == 1
        assert service.calls[0].param_symbols == ("city",)
        assert service.calls[0].output_symbols == ("temp",)

    def test_unknown_operation(self):
        with pytest.raises(UnknownServiceError):
            make_service().invoke("Nope", ())

    def test_validate_io_rejects_bad_params(self):
        service = make_service(validate_io=True)
        with pytest.raises(ServiceFault) as info:
            service.invoke("Get_Temp", (el("date", "x"),))
        assert info.value.fault_code == "Client"
        assert service.calls[0].faulted

    def test_validate_io_rejects_lying_handler(self):
        service = Service("http://x", validate_io=True)
        service.add_operation(
            "f", SIG, constant_responder((el("oops"),))
        )
        with pytest.raises(ServiceFault):
            service.invoke("f", (el("city", "P"),))

    def test_accounting_reset(self):
        service = make_service()
        service.invoke("Get_Temp", (el("city", "P"),))
        service.reset_accounting()
        assert service.call_count() == 0


class TestSoap:
    def test_request_roundtrip(self):
        params = (el("city", "Paris"), call("Nested", text("x")))
        xml = encode_request("Get_Temp", "urn:weather", params)
        envelope = decode_request(xml)
        assert envelope.operation == "Get_Temp"
        assert envelope.namespace == "urn:weather"
        assert envelope.forest == params

    def test_response_roundtrip(self):
        results = (el("temp", "15"),)
        xml = encode_response("Get_Temp", "urn:weather", results)
        envelope = decode_response(xml)
        assert envelope.operation == "Get_TempResponse"
        assert envelope.forest == results

    def test_data_param_roundtrip(self):
        xml = encode_request("TimeOut", "urn:t", (text("exhibits"),))
        envelope = decode_request(xml)
        assert envelope.forest == (text("exhibits"),)

    def test_fault_roundtrip(self):
        xml = encode_fault("Server", "boom & bust")
        envelope = decode_response(xml)
        assert envelope.is_fault
        with pytest.raises(ServiceFault) as info:
            raise_if_fault(envelope)
        assert "boom & bust" in str(info.value)

    def test_intensional_result_travels(self):
        results = (call("More", text("handle")),)
        envelope = decode_response(encode_response("Search", "urn:s", results))
        assert envelope.forest == results


class TestRegistry:
    def test_resolution_by_endpoint_then_name(self):
        registry = ServiceRegistry()
        service = make_service()
        registry.register(service)
        by_endpoint = call("Get_Temp", endpoint="http://forecast.example.com")
        by_name = call("Get_Temp")
        assert registry.resolve(by_endpoint)[0] is service
        assert registry.resolve(by_name)[0] is service
        with pytest.raises(UnknownServiceError):
            registry.resolve(call("Unknown"))

    def test_invoke_roundtrips_soap(self):
        registry = ServiceRegistry()
        registry.register(make_service())
        out = registry.invoke(call("Get_Temp", el("city", "Paris")))
        assert out == (el("temp", "15"),)

    def test_faults_propagate_through_soap(self):
        registry = ServiceRegistry()
        service = Service("http://x")
        service.add_operation(
            "f", SIG, flaky_responder(constant_responder((el("temp", "1"),)), 1)
        )
        registry.register(service)
        with pytest.raises(ServiceFault):
            registry.invoke(call("f"))

    def test_acl_enforced(self):
        registry = ServiceRegistry()
        registry.register(make_service())
        registry.acl = AccessControlList().grant("alice", "Get_Temp")
        assert registry.invoke(call("Get_Temp", el("city", "P")), "alice")
        with pytest.raises(AccessDeniedError):
            registry.invoke(call("Get_Temp", el("city", "P")), "bob")
        with pytest.raises(AccessDeniedError):
            registry.invoke(call("Get_Temp", el("city", "P")), None)

    def test_acl_public_functions(self):
        acl = AccessControlList().make_public("Get_Temp")
        assert acl.allows(None, "Get_Temp")
        assert acl.allowed_functions("anyone") == frozenset({"Get_Temp"})

    def test_acl_revoke(self):
        acl = AccessControlList().grant("alice", "f")
        acl.revoke("alice", "f")
        assert not acl.allows("alice", "f")

    def test_uddif_predicate_is_live(self):
        registry = ServiceRegistry()
        predicate = uddif(registry)
        assert not predicate("Get_Temp")
        registry.register(make_service())
        assert predicate("Get_Temp")

    def test_in_acl_predicate(self):
        acl = AccessControlList().grant("alice", "f")
        assert in_acl(acl, "alice")("f")
        assert not in_acl(acl, "bob")("f")

    def test_signature_lookup(self):
        registry = ServiceRegistry()
        registry.register(make_service())
        assert registry.signature_of("Get_Temp") == SIG
        assert registry.signature_of("missing") is None

    def test_total_calls(self):
        registry = ServiceRegistry()
        registry.register(make_service())
        registry.invoke(call("Get_Temp", el("city", "P")))
        registry.invoke(call("Get_Temp", el("city", "P")))
        assert registry.total_calls() == 2
        registry.reset_accounting()
        assert registry.total_calls() == 0


class TestResponders:
    def test_sampling_conforms_to_output_type(self, schema_star):
        from repro.schema.validate import is_output_instance

        handler = sampling_responder(schema_star, "TimeOut", seed=5)
        for _ in range(10):
            forest = handler(())
            assert is_output_instance(forest, "TimeOut", schema_star)

    def test_adversarial_prefers_avoided_symbols(self, schema_star):
        from repro.doc.nodes import symbol_of

        handler = adversarial_responder(
            schema_star, "TimeOut", avoid=("performance",), seed=1
        )
        hits = 0
        for _ in range(10):
            forest = handler(())
            if any(symbol_of(n) == "performance" for n in forest):
                hits += 1
        assert hits >= 8  # overwhelmingly adversarial

    def test_scripted_sequence(self):
        handler = scripted_responder([(el("a"),), (el("b"),)])
        assert handler(())[0].label == "a"
        assert handler(())[0].label == "b"
        assert handler(())[0].label == "b"  # repeats last

    def test_scripted_exhaustion_faults(self):
        handler = scripted_responder([(el("a"),)], repeat_last=False)
        handler(())
        with pytest.raises(ServiceFault):
            handler(())

    def test_scripted_requires_nonempty(self):
        with pytest.raises(ValueError):
            scripted_responder([])

    def test_flaky_fails_every_n(self):
        handler = flaky_responder(constant_responder((el("a"),)), fail_every=2)
        handler(())
        with pytest.raises(ServiceFault):
            handler(())
        handler(())

    def test_flaky_validates_n(self):
        with pytest.raises(ValueError):
            flaky_responder(constant_responder(()), 0)


class TestWsdl:
    def test_wsdl_roundtrip(self, schema_star):
        from repro.services.wsdl import parse_wsdl, service_to_wsdl

        service = make_service()
        wsdl = service_to_wsdl(service, vocabulary=schema_star)
        description = parse_wsdl(wsdl)
        assert description.endpoint == "http://forecast.example.com"
        assert description.namespace == "urn:weather"
        assert str(description.signatures["Get_Temp"].output_type) == "temp"

    def test_wsdl_without_vocabulary(self):
        from repro.services.wsdl import parse_wsdl, service_to_wsdl

        wsdl = service_to_wsdl(make_service())
        description = parse_wsdl(wsdl)
        assert "Get_Temp" in description.signatures

    def test_wsdl_rejects_garbage(self):
        from repro.errors import XMLSchemaIntError
        from repro.services.wsdl import parse_wsdl

        with pytest.raises(XMLSchemaIntError):
            parse_wsdl("<not-wsdl/>")
        with pytest.raises(XMLSchemaIntError):
            parse_wsdl("<<<")
