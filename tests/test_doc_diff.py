"""Unit tests for structural document diffing."""

import pytest

from repro import Document, call, el, text
from repro.doc.diff import diff_documents, diff_forests
from repro.workloads import newspaper


class TestDiff:
    def test_equal_documents_have_no_edits(self, doc):
        assert diff_documents(doc, doc) == []

    def test_text_change(self):
        a = Document(el("a", el("t", "old")))
        b = Document(el("a", el("t", "new")))
        edits = diff_documents(a, b)
        assert len(edits) == 1
        assert edits[0].kind == "replaced"
        assert edits[0].path == (0, 0)
        assert "old" in edits[0].detail and "new" in edits[0].detail

    def test_label_change_is_one_edit(self):
        a = Document(el("a", el("x", el("deep"))))
        b = Document(el("a", el("y", el("deep"))))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["replaced"]

    def test_attribute_change(self):
        a = Document(el("a", attrs={"v": "1"}))
        b = Document(el("a", attrs={"v": "2"}))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["attributes"]

    def test_insertion_does_not_cascade(self):
        a = Document(el("a", el("x"), el("y"), el("z")))
        b = Document(el("a", el("x"), el("new"), el("y"), el("z")))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["inserted"]
        assert edits[0].path == (1,)

    def test_materialization_diff(self, registry, schema_star):
        """Rewriting Figure 2.a into (**) shows as one call removed and
        one temp element inserted."""
        from repro import RewriteEngine

        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        edits = diff_documents(newspaper.document(), result.document)
        assert len(edits) == 1
        assert edits[0].kind == "replaced"
        assert edits[0].path == (2,)
        assert "Get_Temp" in edits[0].detail and "temp" in edits[0].detail

    def test_call_rename(self):
        a = Document(el("a", call("f", text("x"))))
        b = Document(el("a", call("g", text("x"))))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["replaced"]

    def test_call_params_descend(self):
        a = Document(el("a", call("f", el("city", "Paris"))))
        b = Document(el("a", call("f", el("city", "Lyon"))))
        edits = diff_documents(a, b)
        assert edits[0].kind == "params"
        assert any(e.path == (0, 0, 0) for e in edits)

    def test_node_kind_change(self):
        a = Document(el("a", el("x")))
        b = Document(el("a", call("x")))
        edits = diff_documents(a, b)
        assert len(edits) == 1 and edits[0].kind == "replaced"

    def test_forest_diff(self):
        edits = diff_forests((el("x"),), (el("x"), el("y")))
        assert [e.kind for e in edits] == ["inserted"]
        assert edits[0].path == (1,)

    def test_edit_rendering(self):
        a = Document(el("a", el("t", "1")))
        b = Document(el("a"))
        edits = diff_documents(a, b)
        assert str(edits[0]).startswith("removed at /0")


class TestPathRoundTrip:
    """Diff paths must address the same nodes after serialize → parse.

    The parser drops whitespace-only text children and strips text
    values, so a diff computed on the raw in-memory tree could hand out
    paths that shift or dangle on the other side of an exchange.
    ``diff_documents`` normalizes both trees first (wire normal form),
    making every returned path round-trip stable.
    """

    def test_whitespace_text_child_does_not_shift_paths(self):
        from repro.doc.paths import get_node

        a = Document(el("a", text("   "), el("x"), el("y")))
        b = Document(el("a", text("   "), el("x"), el("z")))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["replaced"]
        # The whitespace-only leaf disappears on re-parse; the path must
        # be computed as if it were never there.
        assert edits[0].path == (1,)
        round_tripped = Document.from_xml(a.to_xml())
        target = get_node(round_tripped.root, edits[0].path)
        assert target == el("y")

    def test_padded_text_values_compare_round_trip_equal(self):
        a = Document(el("a", el("t", "  v  ")))
        b = Document(el("a", el("t", "v")))
        # After a round-trip both sides carry the stripped value; the
        # diff must agree there is nothing to report.
        assert diff_documents(a, b) == []
        assert diff_documents(Document.from_xml(a.to_xml()), b) == []

    def test_raw_mode_still_sees_in_memory_differences(self):
        a = Document(el("a", el("t", "  v  ")))
        b = Document(el("a", el("t", "v")))
        edits = diff_documents(a, b, normalize=False)
        assert [e.kind for e in edits] == ["replaced"]

    def test_unserializable_mixed_content_is_typed(self):
        from repro.doc.normalize import UnserializableDocumentError

        a = Document(el("a", text("words"), el("x")))
        with pytest.raises(UnserializableDocumentError):
            diff_documents(a, a)

    def test_every_diff_path_resolves_after_round_trip(self):
        from repro.doc.paths import get_node

        a = Document(el(
            "a", text("  "), el("x", el("k", " 1 ")), text(" "), el("y"),
        ))
        b = Document(el("a", el("x", el("k", "2")), el("y"), el("z")))
        edits = diff_documents(a, b)
        assert edits  # text change plus insertion
        round_tripped = Document.from_xml(a.to_xml())
        for edit in edits:
            if edit.kind == "inserted":
                continue  # addresses the right-hand document
            get_node(round_tripped.root, edit.path)  # must not raise
