"""Unit tests for structural document diffing."""

import pytest

from repro import Document, call, el, text
from repro.doc.diff import diff_documents, diff_forests
from repro.workloads import newspaper


class TestDiff:
    def test_equal_documents_have_no_edits(self, doc):
        assert diff_documents(doc, doc) == []

    def test_text_change(self):
        a = Document(el("a", el("t", "old")))
        b = Document(el("a", el("t", "new")))
        edits = diff_documents(a, b)
        assert len(edits) == 1
        assert edits[0].kind == "replaced"
        assert edits[0].path == (0, 0)
        assert "old" in edits[0].detail and "new" in edits[0].detail

    def test_label_change_is_one_edit(self):
        a = Document(el("a", el("x", el("deep"))))
        b = Document(el("a", el("y", el("deep"))))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["replaced"]

    def test_attribute_change(self):
        a = Document(el("a", attrs={"v": "1"}))
        b = Document(el("a", attrs={"v": "2"}))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["attributes"]

    def test_insertion_does_not_cascade(self):
        a = Document(el("a", el("x"), el("y"), el("z")))
        b = Document(el("a", el("x"), el("new"), el("y"), el("z")))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["inserted"]
        assert edits[0].path == (1,)

    def test_materialization_diff(self, registry, schema_star):
        """Rewriting Figure 2.a into (**) shows as one call removed and
        one temp element inserted."""
        from repro import RewriteEngine

        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        edits = diff_documents(newspaper.document(), result.document)
        assert len(edits) == 1
        assert edits[0].kind == "replaced"
        assert edits[0].path == (2,)
        assert "Get_Temp" in edits[0].detail and "temp" in edits[0].detail

    def test_call_rename(self):
        a = Document(el("a", call("f", text("x"))))
        b = Document(el("a", call("g", text("x"))))
        edits = diff_documents(a, b)
        assert [e.kind for e in edits] == ["replaced"]

    def test_call_params_descend(self):
        a = Document(el("a", call("f", el("city", "Paris"))))
        b = Document(el("a", call("f", el("city", "Lyon"))))
        edits = diff_documents(a, b)
        assert edits[0].kind == "params"
        assert any(e.path == (0, 0, 0) for e in edits)

    def test_node_kind_change(self):
        a = Document(el("a", el("x")))
        b = Document(el("a", call("x")))
        edits = diff_documents(a, b)
        assert len(edits) == 1 and edits[0].kind == "replaced"

    def test_forest_diff(self):
        edits = diff_forests((el("x"),), (el("x"), el("y")))
        assert [e.kind for e in edits] == ["inserted"]
        assert edits[0].path == (1,)

    def test_edit_rendering(self):
        a = Document(el("a", el("t", "1")))
        b = Document(el("a"))
        edits = diff_documents(a, b)
        assert str(edits[0]).startswith("removed at /0")
