"""Consistency between schema-level and document-level safety.

Section 6's check promises: if ``schema_safely_rewrites(s0, s)`` holds,
every instance of ``s0`` safely rewrites into ``s``.  We test the
promise itself over random schemas — compatibility at the schema level
must imply ``can_rewrite`` for every generated instance (and the
mechanically materialized receiver must always be compatible).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.rewriting.engine import RewriteEngine
from repro.schema import InstanceGenerator
from repro.schemarewrite import schema_safely_rewrites
from repro.workloads.generators import random_flat_schema
from tests.test_properties_engine import materialize_schema


class TestCompatImpliesInstanceSafety:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_materialized_receiver_always_compatible(self, seed):
        sender = random_flat_schema(random.Random(seed))
        receiver = materialize_schema(sender)
        report = schema_safely_rewrites(sender, receiver, k=1)
        assert report.compatible, str(report)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_compatibility_promise_holds_per_instance(self, schema_seed,
                                                      doc_seed):
        sender = random_flat_schema(random.Random(schema_seed))
        receiver = materialize_schema(sender)
        assert schema_safely_rewrites(sender, receiver, k=1).compatible
        document = InstanceGenerator(
            sender, random.Random(doc_seed), max_depth=4
        ).document()
        engine = RewriteEngine(receiver, sender, k=1)
        assert engine.can_rewrite(document), document.pretty()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_self_compatibility_and_identity(self, seed):
        sender = random_flat_schema(random.Random(seed))
        assert schema_safely_rewrites(sender, sender, k=1).compatible
        document = InstanceGenerator(
            sender, random.Random(seed + 1), max_depth=4
        ).document()
        assert RewriteEngine(sender, sender, k=1).can_rewrite(document)


class TestCliFigures:
    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["figures", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 7
        assert (tmp_path / "fig4_awk.dot").exists()
