"""Unit tests for the A_w^k construction (Figure 3, steps 5-10)."""

import pytest

from repro.regex.parser import parse_regex
from repro.rewriting.expansion import build_expansion


@pytest.fixture
def newspaper_problem(newspaper_outputs):
    return (("title", "date", "Get_Temp", "TimeOut"), newspaper_outputs)


class TestBaseAutomaton:
    def test_zero_depth_is_the_linear_word(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=0)
        assert expansion.n_states == len(word) + 1
        assert len(expansion.edges) == len(word)
        assert not expansion.copies
        assert not expansion.fork_edges()

    def test_empty_word(self):
        expansion = build_expansion((), {}, k=3)
        assert expansion.initial == expansion.final == 0
        assert not expansion.edges


class TestFigure4:
    """The 1-depth automaton of Figure 4."""

    def test_state_count_matches_the_figure(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=1)
        # 5 base states + 2 for Glushkov('temp') + 3 for
        # Glushkov((exhibit|performance)*) = 10, mirroring Figure 4's shape.
        assert expansion.n_states == 10

    def test_two_fork_nodes(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=1)
        forks = expansion.fork_edges()
        assert [str(edge.guard) for edge in forks] == ["Get_Temp", "TimeOut"]
        # Fork nodes are q2 and q3, as in the figure.
        assert [edge.source for edge in forks] == [2, 3]

    def test_fork_options_pair_call_and_epsilon(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=1)
        for edge in expansion.fork_edges():
            invoke = expansion.edge(edge.invoke_edge)
            assert invoke.is_epsilon and invoke.kind == "invoke"
            assert invoke.source == edge.source

    def test_return_edges_rejoin_the_word(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=1)
        for copy in expansion.copies.values():
            call_edge = expansion.edge(copy.call_edge)
            for return_eid in copy.return_edges.values():
                assert expansion.edge(return_eid).target == call_edge.target

    def test_non_functions_not_expanded(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(word, outputs, k=1)
        assert {copy.function for copy in expansion.copies.values()} == {
            "Get_Temp", "TimeOut",
        }


class TestDepth:
    def chain_outputs(self, n):
        outputs = {}
        for i in range(1, n):
            outputs["f%d" % i] = parse_regex("a | f%d" % (i + 1))
        outputs["f%d" % n] = parse_regex("a")
        return outputs

    def test_depth_k_expands_k_levels(self):
        outputs = self.chain_outputs(5)
        for k in range(1, 5):
            expansion = build_expansion(("f1",), outputs, k=k)
            depths = {copy.depth for copy in expansion.copies.values()}
            assert depths == set(range(1, k + 1))
            assert len(expansion.copies) == k

    def test_expansion_stops_when_nothing_new(self):
        # f returns plain letters; further rounds add nothing.
        expansion = build_expansion(("f",), {"f": parse_regex("a.b")}, k=7)
        assert len(expansion.copies) == 1

    def test_growth_with_k_is_monotone(self):
        outputs = {"g": parse_regex("a.g | a")}
        sizes = [
            build_expansion(("g",), outputs, k=k).size() for k in range(5)
        ]
        assert sizes == sorted(sizes)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            build_expansion(("a",), {}, k=-1)


class TestInvocability:
    def test_non_invocable_functions_stay_letters(self, newspaper_problem):
        word, outputs = newspaper_problem
        expansion = build_expansion(
            word, outputs, k=1, invocable=lambda name: name != "TimeOut"
        )
        assert [copy.function for copy in expansion.copies.values()] == [
            "Get_Temp"
        ]

    def test_functions_without_signature_stay_letters(self):
        expansion = build_expansion(("mystery",), {}, k=2)
        assert not expansion.copies

    def test_nested_invocability_respected(self):
        outputs = {"f": parse_regex("g"), "g": parse_regex("a")}
        expansion = build_expansion(
            ("f",), outputs, k=3, invocable=lambda name: name == "f"
        )
        assert [copy.function for copy in expansion.copies.values()] == ["f"]
