"""Unit tests for the concurrent materialization scheduler (repro.exec).

The subsystem has three separable pieces, tested separately here:
fingerprints (value identity of calls), the dependency DAG (what may
run concurrently, what must wait), and the scheduler/result-store pair
(waves, dedup, error replay, observability).  End-to-end equivalence
with the sequential engine lives in ``test_parallel_equivalence.py``.
"""

import threading

import pytest

from repro import (
    FunctionSignature,
    MetricsRegistry,
    RewriteEngine,
    Service,
    ServiceRegistry,
    Tracer,
    call,
    constant_responder,
    el,
    parse_regex,
    text,
)
from repro.doc.document import Document
from repro.errors import TransientFault
from repro.exec import (
    CallDAG,
    ExecPolicy,
    ExecReport,
    MaterializationScheduler,
    ScheduledInvoker,
    build_call_dag,
    call_fingerprint,
    fingerprint_digest,
)
from repro.obs import observing
from repro.schema.model import SchemaBuilder
from repro.services.resilience import SimulatedClock
from repro.workloads import newspaper


def forecast_registry(responder=None):
    registry = ServiceRegistry()
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        responder or constant_responder((el("temp", "15"),)),
    )
    registry.register(forecast)
    return registry


def nested_schema():
    """Get_Temp's ``city`` parameter itself arrives intensionally."""
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.temp")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .function("Get_Temp", "city", "temp")
        .function("Get_City", "data", "city")
        .root("newspaper")
        .build(strict=False)
    )


def nested_document():
    return Document(
        el(
            "newspaper",
            el("title", "The Sun"),
            el("date", "04/10/2002"),
            call(
                "Get_Temp",
                call(
                    "Get_City",
                    text("75000"),
                    endpoint="http://geo.example/soap",
                    namespace="urn:geo",
                ),
                endpoint=newspaper.FORECAST_ENDPOINT,
                namespace=newspaper.FORECAST_NS,
            ),
        )
    )


def nested_registry():
    registry = forecast_registry()
    geo = Service("http://geo.example/soap", "urn:geo")
    geo.add_operation(
        "Get_City",
        FunctionSignature(parse_regex("data"), parse_regex("city")),
        constant_responder((el("city", "Paris"),)),
    )
    registry.register(geo)
    return registry


class TestFingerprint:
    def test_value_identity_not_node_identity(self):
        a = call("Get_Temp", el("city", "Paris"), endpoint="e", namespace="n")
        b = call("Get_Temp", el("city", "Paris"), endpoint="e", namespace="n")
        assert a is not b
        assert call_fingerprint(a) == call_fingerprint(b)

    def test_distinguishes_arguments(self):
        a = call("Get_Temp", el("city", "Paris"))
        b = call("Get_Temp", el("city", "Rome"))
        assert call_fingerprint(a) != call_fingerprint(b)

    def test_distinguishes_function_and_endpoint(self):
        a = call("Get_Temp", el("city", "Paris"), endpoint="e1")
        assert call_fingerprint(a) != call_fingerprint(
            call("TimeOut", el("city", "Paris"), endpoint="e1")
        )
        assert call_fingerprint(a) != call_fingerprint(
            call("Get_Temp", el("city", "Paris"), endpoint="e2")
        )

    def test_distinguishes_nested_structure(self):
        a = call("F", el("a", el("b", "x")))
        b = call("F", el("a", "x"), el("b"))
        assert call_fingerprint(a) != call_fingerprint(b)

    def test_digest_is_short_and_stable(self):
        fc = call("Get_Temp", el("city", "Paris"))
        digest = fingerprint_digest(call_fingerprint(fc))
        assert len(digest) == 12
        assert digest == fingerprint_digest(call_fingerprint(fc))


class TestCallDAG:
    def test_flat_document_is_one_wave(self):
        width = 6
        engine = RewriteEngine(
            newspaper.wide_schema_star2(width),
            newspaper.wide_schema_star(width),
            k=1,
        )
        dag = build_call_dag(newspaper.wide_document(width), engine)
        assert dag.planned_calls == width
        assert len(dag.tasks) == width
        assert dag.n_edges == 0
        waves = dag.waves()
        assert len(waves) == 1
        # document order within the wave
        cities = [t.call.params[0].children[0].value for t in waves[0]]
        assert cities == list(newspaper.CITIES[:width])

    def test_kept_calls_are_planned_but_not_scheduled(self):
        # Against schema (*), the safe strategy keeps both calls
        # intensional: nothing to prefetch, but the planner saw them.
        engine = RewriteEngine(
            newspaper.schema_star(), newspaper.schema_star(), k=1
        )
        dag = build_call_dag(newspaper.document(), engine)
        assert dag.tasks == []
        assert dag.planned_calls == 2

    def test_nested_parameter_call_becomes_an_edge(self):
        schema = nested_schema()
        engine = RewriteEngine(schema, schema, k=1)
        dag = build_call_dag(nested_document(), engine)
        assert [t.function for t in dag.tasks] == ["Get_City", "Get_Temp"]
        inner, outer = dag.tasks
        assert inner.depends_on == ()
        assert outer.depends_on == (inner.task_id,)
        waves = dag.waves()
        assert [[t.function for t in wave] for wave in waves] == [
            ["Get_City"], ["Get_Temp"],
        ]
        assert dag.n_edges == 1

    def test_empty_document_plans_nothing(self):
        engine = RewriteEngine(
            newspaper.schema_star2(), newspaper.schema_star(), k=1
        )
        dag = build_call_dag(Document(text("just data")), engine)
        assert dag.tasks == [] and dag.planned_calls == 0


class CountingInvoker:
    """A deterministic invoker that counts physical invocations."""

    def __init__(self, fail_first_n=0):
        self.calls = []
        self.fail_first_n = fail_first_n
        self.lock = threading.Lock()

    def __call__(self, fc):
        with self.lock:
            self.calls.append(fc.name)
            if len(self.calls) <= self.fail_first_n:
                raise TransientFault("injected")
        city = fc.params[0].children[0].value if fc.params else "?"
        return (el("temp", str(len(city))),)


class TestScheduledInvoker:
    def test_second_occurrence_replays_from_store(self):
        inner = CountingInvoker()
        store = ScheduledInvoker(inner, dedup=True, report=ExecReport())
        fc = call("Get_Temp", el("city", "Paris"))
        first = store(fc)
        second = store(call("Get_Temp", el("city", "Paris")))
        assert first == second == (el("temp", "5"),)
        assert len(inner.calls) == 1
        assert store._report.physical_calls == 1
        assert store._report.replay_hits == 1

    def test_distinct_calls_are_not_collapsed(self):
        inner = CountingInvoker()
        store = ScheduledInvoker(inner, dedup=True, report=ExecReport())
        store(call("Get_Temp", el("city", "Paris")))
        store(call("Get_Temp", el("city", "Rome")))
        assert len(inner.calls) == 2

    def test_fault_is_replayed_once_then_retried_live(self):
        inner = CountingInvoker(fail_first_n=1)
        store = ScheduledInvoker(inner, dedup=True, report=ExecReport())
        fc = call("Get_Temp", el("city", "Paris"))
        with pytest.raises(TransientFault):
            store(fc)  # the physical attempt (prefetch) faults
        assert len(inner.calls) == 1
        with pytest.raises(TransientFault):
            store(fc)  # the stored fault replays — no extra attempt
        assert len(inner.calls) == 1
        assert store(fc) == (el("temp", "5"),)  # one-shot: now live again
        assert len(inner.calls) == 2
        # failed attempts crossed the wire too
        assert store._report.physical_calls == 2

    def test_inflight_duplicates_coalesce_on_the_leader(self):
        release = threading.Event()
        started = threading.Event()

        class SlowInvoker(CountingInvoker):
            def __call__(self, fc):
                started.set()
                release.wait(timeout=5)
                return CountingInvoker.__call__(self, fc)

        inner = SlowInvoker()
        report = ExecReport()
        store = ScheduledInvoker(inner, dedup=True, report=report)
        fc = call("Get_Temp", el("city", "Paris"))
        results = []
        leader = threading.Thread(target=lambda: results.append(store(fc)))
        leader.start()
        started.wait(timeout=5)
        follower = threading.Thread(target=lambda: results.append(store(fc)))
        follower.start()
        while report.inflight_hits == 0 and follower.is_alive():
            pass  # the follower parks on the leader's in-flight cell
        release.set()
        leader.join(timeout=5)
        follower.join(timeout=5)
        assert results[0] == results[1]
        assert len(inner.calls) == 1
        assert report.inflight_hits == 1

    def test_clock_and_report_shine_through(self):
        class Wrapped:
            clock = SimulatedClock()
            report = "sentinel"

            def __call__(self, fc):
                return ()

        store = ScheduledInvoker(Wrapped(), dedup=True, report=ExecReport())
        assert isinstance(store.clock, SimulatedClock)
        assert store.report == "sentinel"


class TestMaterializationScheduler:
    def engine(self, width, **kwargs):
        return RewriteEngine(
            newspaper.wide_schema_star2(width),
            newspaper.wide_schema_star(width),
            k=1,
            **kwargs,
        )

    def test_sequential_policy_returns_invoker_unchanged(self):
        engine = self.engine(4)
        invoker = forecast_registry().make_invoker()
        scheduler = MaterializationScheduler(
            engine._planning_engine(), ExecPolicy(max_workers=1)
        )
        result, report = scheduler.prefetch(
            newspaper.wide_document(4), invoker
        )
        assert result is invoker
        assert not report.prefetched
        assert report.planned_calls == 4

    def test_parallel_prefetch_dedups_statically(self):
        width = 24  # 12 unique cities, each twice
        engine = self.engine(width)
        scheduler = MaterializationScheduler(
            engine._planning_engine(), ExecPolicy(max_workers=8, dedup=True)
        )
        store, report = scheduler.prefetch(
            newspaper.wide_document(width), forecast_registry().make_invoker()
        )
        assert store is not None and report.prefetched
        assert report.scheduled_tasks == 12
        assert report.static_dedup_saved == 12
        assert report.tasks_ok == 12 and report.tasks_failed == 0
        assert report.physical_calls == 12
        assert report.saved_round_trips == 12
        assert report.waves == 1

    def test_dedup_off_schedules_every_occurrence(self):
        width = 8
        engine = self.engine(width)
        scheduler = MaterializationScheduler(
            engine._planning_engine(), ExecPolicy(max_workers=4, dedup=False)
        )
        _store, report = scheduler.prefetch(
            newspaper.wide_document(width), forecast_registry().make_invoker()
        )
        assert report.scheduled_tasks == width
        assert report.static_dedup_saved == 0
        # Regression: without dedup there is no in-flight cell, and the
        # invoke path once tried to delete one anyway (KeyError after
        # every successful round-trip, miscounted as a failed task).
        assert report.tasks_ok == width
        assert report.tasks_failed == 0

    def test_unique_calls_save_nothing(self):
        width = 10
        engine = self.engine(width)
        scheduler = MaterializationScheduler(
            engine._planning_engine(), ExecPolicy(max_workers=4, dedup=True)
        )
        _store, report = scheduler.prefetch(
            newspaper.wide_document(width), forecast_registry().make_invoker()
        )
        assert report.saved_round_trips == 0

    def test_nested_calls_run_in_two_waves(self):
        schema = nested_schema()
        engine = RewriteEngine(schema, schema, k=1, workers=4)
        result = engine.rewrite(
            nested_document(), nested_registry().make_invoker()
        )
        report = result.exec_report
        assert report is not None
        assert report.waves == 2
        assert report.tasks_ok == 2
        assert result.document.to_xml() == (
            RewriteEngine(schema, schema, k=1)
            .rewrite(nested_document(), nested_registry().make_invoker())
            .document.to_xml()
        )

    def test_endpoint_batching_groups_by_endpoint(self):
        width = 6
        engine = self.engine(width)
        scheduler = MaterializationScheduler(
            engine._planning_engine(),
            ExecPolicy(max_workers=4, dedup=True, batch=True),
        )
        _store, report = scheduler.prefetch(
            newspaper.wide_document(width), forecast_registry().make_invoker()
        )
        # all six calls share one endpoint: one batch, not six
        assert report.batches == 1
        assert report.tasks_ok == width

    def test_summary_mentions_workers_and_savings(self):
        report = ExecReport(
            max_workers=8, scheduled_tasks=5, waves=2, tasks_ok=5,
            static_dedup_saved=3, physical_calls=5,
        )
        line = report.summary()
        assert "8 worker(s)" in line and "3 round-trip(s) saved" in line
        assert "sequential" in ExecReport(planned_calls=2).summary()


class TestObservability:
    def test_spans_and_metrics_are_emitted(self):
        width = 6
        engine = RewriteEngine(
            newspaper.wide_schema_star2(width),
            newspaper.wide_schema_star(width),
            k=1,
            workers=4,
        )
        tracer = Tracer(clock=SimulatedClock())
        metrics = MetricsRegistry()
        with observing(tracer, metrics):
            engine.rewrite(
                newspaper.wide_document(width),
                forecast_registry().make_invoker(),
            )
        spans = tracer.finished()
        names = {span.name for span in spans}
        assert {"exec.plan", "exec.schedule", "exec.wave", "exec.task"} <= names
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name == "exec.task":
                assert by_id[span.parent_id].name == "exec.wave"
                assert span.attributes["outcome"] == "ok"
        task_counter = metrics.get("repro_exec_tasks_total")
        assert task_counter is not None
        assert sum(value for _name, value in task_counter.samples()) == width
        assert metrics.get("repro_exec_store_total") is not None


class TestEngineGating:
    """When prefetching must not happen, it silently does not."""

    def test_workers_one_attaches_no_report(self):
        engine = RewriteEngine(
            newspaper.schema_star2(), newspaper.schema_star(), k=1, workers=1
        )
        result = engine.rewrite(
            newspaper.document(), forecast_registry().make_invoker()
        )
        assert result.exec_report is None

    def test_possible_mode_is_left_sequential(self):
        engine = RewriteEngine(
            newspaper.schema_star3(),
            newspaper.schema_star(),
            k=1,
            mode="possible",
            workers=8,
        )
        registry = forecast_registry()
        timeout = Service(newspaper.TIMEOUT_ENDPOINT, newspaper.TIMEOUT_NS)
        timeout.add_operation(
            "TimeOut",
            FunctionSignature(
                parse_regex("data"), parse_regex("(exhibit | performance)*")
            ),
            constant_responder(()),
        )
        registry.register(timeout)
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        assert result.exec_report is None

    def test_env_defaults_resolve(self, monkeypatch):
        engine = RewriteEngine(
            newspaper.schema_star2(), newspaper.schema_star(), k=1
        )
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_DEDUP", raising=False)
        assert engine.resolved_workers == 1
        assert engine.resolved_dedup is True
        monkeypatch.setenv("REPRO_WORKERS", "6")
        monkeypatch.setenv("REPRO_DEDUP", "off")
        assert engine.resolved_workers == 6
        assert engine.resolved_dedup is False
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert engine.resolved_workers == 1
        explicit = RewriteEngine(
            newspaper.schema_star2(), newspaper.schema_star(), k=1,
            workers=3, dedup=True,
        )
        assert explicit.resolved_workers == 3
        assert explicit.resolved_dedup is True
