"""The incremental enforcement session and its edit-script language.

Three layers under test:

- the typed edit language (:mod:`repro.incremental.edits`): application,
  inverses built from the removed node objects, wire-normal-form
  guards, typed path errors, and the JSON wire format;
- the session (:mod:`repro.incremental.session`): byte-identical
  receipts against fresh full enforcement, reuse accounting that tracks
  edit locality, atomic rejection of bad scripts;
- the invalidation **properties** of the ISSUE: edit + inverse restores
  the exact prior cached state (reachable cache snapshot), and
  interleaved edits on disjoint subtrees commute — same final outcome
  *and* the same cache accounting.
"""

import pytest

from repro.axml.enforcement import SchemaEnforcer
from repro.compile.cache import CompilationCache
from repro.conformance.fuzzer import fuzz_edit_scenario, per_call_invoker
from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.doc.nodes import Element, Text
from repro.doc.normalize import normalize_document
from repro.incremental import (
    DocEdit,
    EditError,
    EditPathError,
    EditScriptError,
    apply_edit,
    apply_edits,
    delete,
    edit_from_json,
    edit_to_json,
    full_receipt,
    insert,
    replace,
    script_from_json,
    script_to_json,
    update_call,
)
from repro.workloads import newspaper


def fresh_enforcer(compile_cache=None):
    return SchemaEnforcer(
        target_schema=newspaper.schema_star2(),
        sender_schema=newspaper.schema_star(),
        k=1,
        mode="safe",
        compile_cache=compile_cache,
    )


def newspaper_invoker():
    def invoker(fc):
        if fc.name == "Get_Temp":
            return (el("temp", "15"),)
        if fc.name == "TimeOut":
            return (el("exhibit", el("title", "P"), el("date", "d")),)
        raise ValueError(fc.name)
    return invoker


class TestEditApplication:
    def test_insert_delete_replace_update(self):
        doc = newspaper.document()
        root = doc.root
        # replace the title
        new_title = el("title", "The Moon")
        edited, inverse = apply_edit(root, replace((0,), new_title))
        assert edited.children[0] == new_title
        assert inverse.op == "replace" and inverse.node is root.children[0]
        # delete then re-insert via the inverse
        removed, inv = apply_edit(root, delete((1,)))
        assert len(removed.children) == 3
        restored, _ = apply_edit(removed, inv)
        assert restored == root
        # update-call swaps the parameter forest only
        updated, inv = apply_edit(
            root, update_call((2,), (el("city", "Lyon"),))
        )
        assert updated.children[2].params == (el("city", "Lyon"),)
        assert updated.children[2].name == "Get_Temp"
        back, _ = apply_edit(updated, inv)
        assert back == root

    def test_inverse_reuses_removed_objects(self):
        root = newspaper.document().root
        target = root.children[2]
        edited, inverse = apply_edit(root, delete((2,)))
        assert inverse.node is target  # identity, not a copy
        restored, _ = apply_edit(edited, inverse)
        assert restored.children[2] is target

    def test_off_spine_subtrees_share_identity(self):
        root = newspaper.document().root
        edited, _ = apply_edit(root, replace((0,), el("title", "x")))
        for index in (1, 2, 3):
            assert edited.children[index] is root.children[index]

    def test_dangling_paths_are_typed(self):
        root = newspaper.document().root
        with pytest.raises(EditPathError):
            apply_edit(root, delete((9,)))
        with pytest.raises(EditPathError):
            apply_edit(root, replace((0, 5, 1), el("x")))
        with pytest.raises(EditPathError):
            apply_edit(root, update_call((0,), ()))  # not a call
        with pytest.raises(EditPathError):
            apply_edit(root, insert((0, 0, 0), el("x")))  # under a leaf

    def test_malformed_scripts_are_typed(self):
        with pytest.raises(EditScriptError):
            DocEdit("rename", (0,))
        with pytest.raises(EditScriptError):
            DocEdit("insert", (0,))  # node required
        with pytest.raises(EditScriptError):
            DocEdit("delete", ())  # cannot delete the root

    def test_mixed_content_guard(self):
        root = el("a", el("x"), el("y"))
        with pytest.raises(EditScriptError):
            apply_edit(root, insert((1,), text("words")))
        with pytest.raises(EditScriptError):
            apply_edit(root, replace((0,), text("words")))
        # ... but a text child standing alone is fine
        only = el("a", el("x"))
        edited, _ = apply_edit(only, replace((0,), text("words")))
        assert edited.children == (Text("words"),)

    def test_rejected_scripts_apply_atomically(self):
        doc = newspaper.document()
        script = (
            replace((0,), el("title", "changed")),
            delete((42,)),  # fails
        )
        with pytest.raises(EditPathError):
            apply_edits(doc, script)
        assert doc == newspaper.document()  # untouched


class TestWireFormat:
    def test_json_round_trip_all_ops(self):
        edits = (
            insert((1,), el("x", el("k", "v"))),
            delete((2, 0)),
            replace((0,), call("Get_Temp", el("city", "Paris"))),
            update_call((2,), (el("city", "Lyon"), text("plain"))),
        )
        wire = script_to_json(edits)
        import json

        assert script_from_json(json.loads(json.dumps(wire))) == edits

    def test_text_payloads_use_the_dict_form(self):
        payload = edit_to_json(update_call((0,), (text("bare"),)))
        assert payload["params"] == [{"text": "bare"}]
        assert edit_from_json(payload).params == (Text("bare"),)

    def test_fragments_with_calls_parse_standalone(self):
        edit = insert((0,), call("Get_Temp", el("city", "Paris")))
        again = edit_from_json(edit_to_json(edit))
        assert again.node.name == "Get_Temp"

    def test_malformed_wire_edits_are_typed(self):
        with pytest.raises(EditScriptError):
            edit_from_json({"op": "insert", "path": [0], "node": "<broken"})
        with pytest.raises(EditScriptError):
            edit_from_json({"op": "insert", "path": ["a"], "node": "<x/>"})
        with pytest.raises(EditScriptError):
            script_from_json([])
        with pytest.raises(EditScriptError):
            edit_from_json({"op": "update-call", "path": [0], "params": "x"})


class TestSessionEquivalence:
    def test_initial_pass_matches_full_enforcement(self):
        invoker = newspaper_invoker()
        session = fresh_enforcer().session(newspaper.document(), invoker)
        outcome = session.enforce()
        fresh = fresh_enforcer().enforce_document(
            newspaper.document(), newspaper_invoker()
        )
        assert outcome.receipt() == full_receipt(fresh)
        assert outcome.ok and not outcome.already_conformant

    def test_edited_passes_match_full_enforcement(self):
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        session.enforce()
        outcome = session.apply([replace((0,), el("title", "The Moon"))])
        fresh = fresh_enforcer().enforce_document(
            session.document, newspaper_invoker()
        )
        assert outcome.receipt() == full_receipt(fresh)
        assert outcome.edits_applied == 1

    def test_enforce_incremental_entry_point(self):
        enforcer = fresh_enforcer()
        session, outcomes = enforcer.enforce_incremental(
            newspaper.document(), newspaper_invoker(),
            edit_scripts=[
                [replace((0,), el("title", "A"))],
                [replace((1,), el("date", "05/10/2002"))],
            ],
        )
        assert len(outcomes) == 3  # initial + one per script
        assert all(o.ok for o in outcomes)
        assert session.passes == 3

    def test_unchanged_repass_reuses_everything(self):
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        first = session.enforce()
        assert first.nodes_reanalyzed > 0
        again = session.enforce()
        assert again.nodes_reanalyzed == 0
        assert again.nodes_reused > 0
        assert again.receipt() == first.receipt()

    def test_locality_of_reanalysis(self):
        # Touching one subtree re-analyzes the spine, not the document.
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        baseline = session.enforce().nodes_reanalyzed
        outcome = session.apply([replace((0,), el("title", "B"))])
        assert 0 < outcome.nodes_reanalyzed < baseline
        assert outcome.invocations_performed == 0  # calls untouched
        assert outcome.invocations_reused >= 1

    def test_session_error_paths_match_full(self):
        # An edit that breaks the schema beyond rewriting must produce
        # the byte-identical error a full enforcement reports.
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        session.enforce()
        outcome = session.apply([delete((0,))])  # no title: unfixable
        fresh = fresh_enforcer().enforce_document(
            session.document, newspaper_invoker()
        )
        assert not outcome.ok
        assert outcome.receipt() == full_receipt(fresh)
        # ... and the session recovers when the edit is undone
        assert session.undo().ok

    def test_rejected_script_leaves_session_untouched(self):
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        before = session.enforce()
        snapshot = session.cache_snapshot()
        with pytest.raises(EditError):
            session.apply([
                replace((0,), el("title", "ok")),
                delete((42,)),
            ])
        assert session.document == normalize_document(newspaper.document())
        assert session.cache_snapshot() == snapshot
        assert session.last_outcome.receipt() == before.receipt()


class TestInvalidationProperties:
    """The ISSUE's two session-invalidation properties, over fuzzed
    documents (seeded — deterministic in CI)."""

    SEEDS = (3, 7, 11, 19)

    def _session_for(self, seed):
        scenario = fuzz_edit_scenario(seed)
        base = scenario.base
        enforcer = SchemaEnforcer(
            target_schema=base.exchange_schema,
            sender_schema=base.sender_schema,
            k=base.k,
            mode="safe",
            compile_cache=CompilationCache(),
        )
        invoker = per_call_invoker(base.sender_schema, base.invoker_seed)
        document = normalize_document(base.document)
        return enforcer.session(document, invoker), scenario

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edit_plus_inverse_restores_cached_state(self, seed):
        session, scenario = self._session_for(seed)
        before = session.enforce()
        snapshot = session.cache_snapshot()
        document = session.document
        for script in scenario.scripts:
            try:
                session.apply(script)
            except EditError:
                continue  # rejected scripts are no-ops by the atomicity test
            restored = session.undo()
            assert session.document == document
            assert restored.receipt() == before.receipt()
            # The exact prior cached state is back: every prior
            # reachable subtree entry digests identically.  (When the
            # base pass short-circuited — already conformant, no
            # rewrite — the intermediate pass may leave *extra* warm
            # entries on shared subtrees; never different ones.)
            after = session.cache_snapshot()
            assert all(
                after.get(path) == digest
                for path, digest in snapshot.items()
            )
            if not before.already_conformant:
                assert after == snapshot
            # ... so the next pass replays without re-analyzing a node.
            assert session.enforce().nodes_reanalyzed == 0

    @pytest.mark.parametrize("pair", [(0, 3), (1, 5), (2, 4)])
    def test_disjoint_subtree_edits_commute(self, pair):
        from repro.incremental.bench import _invoker, _magazine, _schemas

        sender, receiver = _schemas()
        first, second = pair
        # One structural edit and one call edit, under different
        # articles of a 6-article magazine (guaranteed disjoint spines).
        a = replace((first, 0), el("title", "retitled"))
        b = update_call((second, 2), (el("city", "Lyon"),))

        def run(order):
            enforcer = SchemaEnforcer(
                target_schema=receiver, sender_schema=sender, k=1,
                mode="safe", compile_cache=CompilationCache(),
            )
            s = enforcer.session(_magazine(6), _invoker)
            s.enforce()
            outcomes = [s.apply([edit]) for edit in order]
            accounting = [
                (o.nodes_reanalyzed, o.nodes_reused,
                 o.invocations_performed) for o in outcomes
            ]
            return s.document, outcomes[-1].receipt(), sorted(accounting)

        doc_ab, receipt_ab, acct_ab = run((a, b))
        doc_ba, receipt_ba, acct_ba = run((b, a))
        assert doc_ab == doc_ba
        assert receipt_ab == receipt_ba
        # Same cache accounting in either order: the edits touch
        # disjoint spines, so neither invalidates the other's work.
        assert acct_ab == acct_ba


class TestReuseIntrospection:
    def test_reuse_totals_accumulate(self):
        session = fresh_enforcer().session(
            newspaper.document(), newspaper_invoker()
        )
        session.enforce()
        session.apply([replace((0,), el("title", "C"))])
        totals = session.reuse_totals()
        assert totals["passes"] == 2
        assert totals["edits_applied"] == 1
        assert totals["invocations_performed"] >= 1
        assert totals["invocations_reused"] >= 1

    def test_metrics_counters_emitted(self):
        from repro.obs.context import observing
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        registry = MetricsRegistry()
        with observing(Tracer(), registry):
            session = fresh_enforcer().session(
                newspaper.document(), newspaper_invoker()
            )
            session.enforce()
            session.apply([replace((0,), el("title", "D"))])
        text = registry.to_prometheus()
        assert 'repro_incremental_nodes_total{outcome="reanalyzed"}' in text
        assert 'repro_incremental_nodes_total{outcome="reused"}' in text
        assert 'repro_incremental_passes_total{outcome="ok"}' in text
        assert "repro_incremental_edits_total 1" in text
