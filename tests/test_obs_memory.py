"""Peak-memory observability: RSS gauge, tracemalloc helper, snapshots."""

from repro.obs.context import observing
from repro.obs.memory import (
    memory_snapshot,
    peak_rss_bytes,
    record_peak_gauge,
    traced_peak,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER


class TestPeakRss:
    def test_positive_on_this_platform(self):
        peak = peak_rss_bytes()
        assert isinstance(peak, int)
        assert peak > 1024 * 1024  # a Python process is never this small

    def test_monotone(self):
        first = peak_rss_bytes()
        ballast = ["x" * 1024 for _ in range(1024)]
        second = peak_rss_bytes()
        assert second >= first
        del ballast


class TestTracedPeak:
    def test_returns_result_and_peak(self):
        result, peak = traced_peak(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert peak > 0

    def test_peak_scales_with_allocation(self):
        _, small = traced_peak(lambda: ["x" * 64 for _ in range(100)])
        _, large = traced_peak(lambda: ["x" * 64 for _ in range(10_000)])
        assert large > small * 10

    def test_nests(self):
        def outer():
            _, inner_peak = traced_peak(lambda: list(range(5000)))
            assert inner_peak > 0
            return inner_peak

        inner_peak, outer_peak = traced_peak(outer)
        assert outer_peak >= 0 and inner_peak > 0


class TestGaugeAndSnapshot:
    def test_gauge_recorded_when_metrics_installed(self):
        registry = MetricsRegistry()
        with observing(NULL_TRACER, registry):
            record_peak_gauge()
        text = registry.to_prometheus()
        assert "repro_peak_rss_bytes" in text

    def test_noop_without_registry(self):
        record_peak_gauge()  # must not raise with the null registry

    def test_snapshot_keys(self):
        snapshot = memory_snapshot()
        assert snapshot["peak_rss_bytes"] > 0
