"""Unit tests for the lazy variant (Section 7 / Figure 12)."""

import random

import pytest

from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe
from repro.workloads.generators import (
    chain_problem,
    det_target_problem,
    nondet_target_problem,
    random_word_problem,
    wide_problem,
)

WORD = ("title", "date", "Get_Temp", "TimeOut")
R2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
R3 = parse_regex("title.date.temp.exhibit*")


class TestAgreementWithEager:
    def test_paper_examples(self, newspaper_outputs):
        for target, expected in ((R2, True), (R3, False)):
            eager = analyze_safe(WORD, newspaper_outputs, target, k=1)
            lazy = analyze_safe_lazy(WORD, newspaper_outputs, target, k=1)
            assert eager.exists == lazy.exists == expected

    @pytest.mark.parametrize("seed", range(25))
    def test_random_problems(self, seed):
        problem = random_word_problem(random.Random(seed))
        eager = analyze_safe(problem.word, problem.output_types, problem.target)
        lazy = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, early_exit=False
        )
        assert eager.exists == lazy.exists

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_chain_problems_all_depths(self, k):
        problem = chain_problem(3)
        eager = analyze_safe(problem.word, problem.output_types, problem.target, k=k)
        lazy = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, k=k
        )
        assert eager.exists == lazy.exists == (k >= 3)

    @pytest.mark.parametrize("width", [1, 3, 6])
    @pytest.mark.parametrize("safe", [True, False])
    def test_wide_problems(self, width, safe):
        problem = wide_problem(width, safe=safe)
        lazy = analyze_safe_lazy(problem.word, problem.output_types, problem.target)
        assert lazy.exists is safe

    def test_extensional_problems(self):
        for maker in (nondet_target_problem, det_target_problem):
            problem = maker(4)
            lazy = analyze_safe_lazy(
                problem.word, problem.output_types, problem.target
            )
            assert lazy.exists is True


class TestPruning:
    def test_explores_no_more_than_eager(self, newspaper_outputs):
        for target in (R2, R3):
            eager = analyze_safe(WORD, newspaper_outputs, target, k=1)
            lazy = analyze_safe_lazy(
                WORD, newspaper_outputs, target, k=1, early_exit=False
            )
            assert lazy.stats.product_explored <= eager.stats.product_explored

    def test_sink_pruning_helps_on_figure_6(self, newspaper_outputs):
        eager = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        lazy = analyze_safe_lazy(WORD, newspaper_outputs, R2, k=1)
        assert lazy.stats.product_explored < eager.stats.product_explored

    def test_early_exit_stops_on_unsafe(self, newspaper_outputs):
        with_exit = analyze_safe_lazy(WORD, newspaper_outputs, R3, k=1)
        without = analyze_safe_lazy(
            WORD, newspaper_outputs, R3, k=1, early_exit=False
        )
        assert with_exit.exists == without.exists is False
        assert with_exit.stats.product_explored <= without.stats.product_explored


class TestLazyExecution:
    def test_winning_strategy_usable(self, newspaper_outputs):
        from repro.doc import call, el, text
        from repro.rewriting.safe import execute_safe

        analysis = analyze_safe_lazy(WORD, newspaper_outputs, R2, k=1)
        children = (
            el("title", "t"), el("date", "d"),
            call("Get_Temp", el("city", "Paris")),
            call("TimeOut", text("k")),
        )

        def invoker(fc):
            return (el("temp", "15"),)

        new, log = execute_safe(analysis, children, invoker)
        assert log.invoked == ["Get_Temp"]

    def test_preview_decisions_work_on_lazy(self, newspaper_outputs):
        analysis = analyze_safe_lazy(WORD, newspaper_outputs, R2, k=1)
        decisions = analysis.preview_decisions()
        assert [(d.function, d.action) for d in decisions] == [
            ("Get_Temp", "invoke"), ("TimeOut", "keep"),
        ]
