"""Robustness properties: parsers never crash with foreign exceptions.

The XML document parser, the SOAP decoder, the XML Schema_int parser and
the DTD parser all face untrusted wire input.  Whatever bytes arrive,
they must either succeed or raise the package's own typed errors — never
an ``AttributeError``/``KeyError``/``IndexError`` leaking internals.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.doc.xml_io import node_from_xml
from repro.errors import (
    DocumentParseError,
    RegexSyntaxError,
    ReproError,
    SchemaError,
    XMLSchemaIntError,
)
from repro.regex.parser import parse_regex
from repro.schema.dtd import parse_dtd
from repro.services.soap import decode_request, decode_response
from repro.xschema.parser import parse_xschema

# Text likely to tickle parsers: XML-ish fragments with noise.
xmlish = st.text(
    alphabet="<>/=\"' abcdefint:fun#{}()|.*+?!-\n",
    min_size=0,
    max_size=120,
)


class TestUntrustedInput:
    @given(xmlish)
    @settings(max_examples=300, deadline=None)
    def test_document_parser_raises_only_typed_errors(self, text):
        try:
            node_from_xml(text)
        except DocumentParseError:
            pass
        except ValueError:
            pass  # node constructors validate labels

    @given(xmlish)
    @settings(max_examples=200, deadline=None)
    def test_soap_decoders_raise_only_typed_errors(self, text):
        for decoder in (decode_request, decode_response):
            try:
                decoder(text)
            except ReproError:
                pass
            except ValueError:
                pass

    @given(xmlish)
    @settings(max_examples=200, deadline=None)
    def test_xschema_parser_raises_only_typed_errors(self, text):
        try:
            parse_xschema(text)
        except XMLSchemaIntError:
            pass

    @given(st.text(alphabet="<>!ELEMENT()|,*+?#PCDATA abc-\n", max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_dtd_parser_raises_only_typed_errors(self, text):
        try:
            parse_dtd(text)
        except SchemaError:
            pass

    @given(st.text(alphabet="ab|.*+?(){}0123456789, ", max_size=60))
    @settings(max_examples=300, deadline=None)
    def test_regex_parser_raises_only_typed_errors(self, text):
        try:
            parse_regex(text)
        except RegexSyntaxError:
            pass


class TestRoundTripUnderNoise:
    @given(st.text(alphabet="abc <>&\"'\n", max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_text_content_roundtrips_escaped(self, value):
        """Any character data survives serialization, whitespace-trimmed
        (the simple model strips insignificant whitespace)."""
        from repro.doc import Document, el

        stripped = value.strip()
        if not stripped:
            return
        document = Document(el("a", stripped))
        parsed = Document.from_xml(document.to_xml())
        assert parsed.root.children[0].value == stripped
