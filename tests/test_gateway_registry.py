"""The persistent peer registry: records, ownership, atomic persistence."""

import json
import os

import pytest

from repro.errors import UnknownPeerError
from repro.gateway.errors import BadRequestError, ObligationConflictError
from repro.gateway.registry import FORMAT_VERSION, PeerRecord, PeerRegistry
from repro.workloads import newspaper
from repro.xschema.writer import schema_to_xschema

STAR = schema_to_xschema(newspaper.schema_star())
STAR2 = schema_to_xschema(newspaper.schema_star2())


def alice(**kwargs) -> PeerRecord:
    return PeerRecord(
        name="alice", xschema=STAR,
        obligations=("Get_Temp", "TimeOut"), **kwargs,
    )


class TestPeerRecord:
    def test_json_round_trip(self):
        record = alice(max_inflight=3)
        clone = PeerRecord.from_json(record.to_json())
        assert clone == record
        assert clone.schema().output_type("Get_Temp") is not None

    def test_schema_is_memoized(self):
        record = alice()
        assert record.schema() is record.schema()

    @pytest.mark.parametrize("broken", [
        {},
        {"name": "", "xschema": STAR},
        {"name": "a", "xschema": "  "},
        {"name": "a", "xschema": STAR, "obligations": [1]},
        {"name": "a", "xschema": STAR, "max_inflight": 0},
        "not even a dict",
    ])
    def test_malformed_payloads_raise_value_error(self, broken):
        with pytest.raises(ValueError):
            PeerRecord.from_json(broken)


class TestPeerRegistry:
    def test_register_get_remove(self):
        registry = PeerRegistry()
        registry.register(alice())
        assert "alice" in registry and len(registry) == 1
        assert registry.get("alice").obligations == ("Get_Temp", "TimeOut")
        assert registry.owner_of("Get_Temp") == "alice"
        registry.remove("alice")
        assert registry.owner_of("Get_Temp") is None
        with pytest.raises(UnknownPeerError):
            registry.get("alice")
        with pytest.raises(UnknownPeerError):
            registry.remove("alice")

    def test_unknown_peer_error_names_known_peers(self):
        registry = PeerRegistry()
        registry.register(alice())
        with pytest.raises(UnknownPeerError, match="alice"):
            registry.get("mallory")

    def test_uncompilable_schema_rejected(self):
        registry = PeerRegistry()
        with pytest.raises(BadRequestError):
            registry.register(PeerRecord(name="bad", xschema="<not-xsd/>"))
        assert len(registry) == 0

    def test_obligation_ownership_is_exclusive(self):
        registry = PeerRegistry()
        registry.register(alice())
        with pytest.raises(ObligationConflictError):
            registry.register(PeerRecord(
                name="eve", xschema=STAR, obligations=("Get_Temp",),
            ))
        # Re-registering the same peer may keep (or shrink) its set.
        registry.register(PeerRecord(
            name="alice", xschema=STAR, obligations=("TimeOut",),
        ))
        assert registry.owner_of("Get_Temp") is None
        assert registry.owner_of("TimeOut") == "alice"

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "peers.json")
        registry = PeerRegistry(path)
        registry.register(alice())
        registry.register(PeerRecord(name="bob", xschema=STAR2))

        reloaded = PeerRegistry(path)
        assert reloaded.load_errors == []
        assert reloaded.names() == ["alice", "bob"]
        assert reloaded.get("alice").xschema == STAR  # byte-faithful
        assert reloaded.owner_of("TimeOut") == "alice"

    def test_persisted_file_is_versioned_json(self, tmp_path):
        path = str(tmp_path / "peers.json")
        PeerRegistry(path).register(alice())
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["magic"] == "repro-gateway-registry"
        assert payload["version"] == FORMAT_VERSION
        # No temp files left behind by the atomic write.
        assert os.listdir(str(tmp_path)) == ["peers.json"]

    def test_removal_is_persisted(self, tmp_path):
        path = str(tmp_path / "peers.json")
        registry = PeerRegistry(path)
        registry.register(alice())
        registry.remove("alice")
        assert PeerRegistry(path).names() == []

    def test_corrupt_file_reported_not_trusted(self, tmp_path):
        path = str(tmp_path / "peers.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        registry = PeerRegistry(path)
        assert registry.names() == []
        assert registry.load_errors and "unreadable" in registry.load_errors[0]

    def test_wrong_magic_reported(self, tmp_path):
        path = str(tmp_path / "peers.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"magic": "something-else", "version": 1}, handle)
        registry = PeerRegistry(path)
        assert registry.names() == []
        assert any("magic" in note for note in registry.load_errors)

    def test_bad_entries_skipped_good_ones_kept(self, tmp_path):
        path = str(tmp_path / "peers.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({
                "magic": "repro-gateway-registry",
                "version": FORMAT_VERSION,
                "peers": [{"name": "", "xschema": STAR},
                          alice().to_json()],
            }, handle)
        registry = PeerRegistry(path)
        assert registry.names() == ["alice"]
        assert len(registry.load_errors) == 1
