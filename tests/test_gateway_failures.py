"""Gateway failure modes: every refusal is typed and counted.

Each test drives one failure over real sockets and asserts two things:
the response carries the typed error payload (stable machine code +
HTTP status), and the matching ``repro_gateway_*`` counter moved — the
operator's view and the peer's view must agree.
"""

import asyncio
import json

import pytest

from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.gateway.loadgen import OBLIGATIONS, _scenario

SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML = _scenario()


def run(coro):
    return asyncio.run(coro)


async def _register(client: GatewayClient) -> None:
    assert (await client.register_peer(
        "alice", SENDER_XSD, obligations=OBLIGATIONS
    )).status == 201
    assert (await client.register_peer("bob", RECEIVER_XSD)).status == 201


def counter_value(metrics_text: str, needle: str) -> float:
    """Sum every sample whose name+labels contain ``needle``."""
    total = 0.0
    for line in metrics_text.splitlines():
        if line.startswith("#") or needle not in line:
            continue
        total += float(line.rsplit(" ", 1)[1])
    return total


@pytest.fixture
def gateway():
    with GatewayThread(GatewayConfig()) as harness:
        async def setup():
            client = GatewayClient(harness.host, harness.port)
            try:
                await _register(client)
            finally:
                await client.close()

        run(setup())
        yield harness


class TestMalformedRequests:
    def test_garbage_body_is_400_and_counted(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                reply = await client.request(
                    "POST", "/exchange", b"this is not json"
                )
                metrics = await client.metrics_text()
                return reply, metrics
            finally:
                await client.close()

        reply, metrics = run(go())
        assert reply.status == 400
        payload = reply.json()
        assert payload["error"] == "bad-request"
        assert payload["status"] == 400 and payload["detail"]
        assert counter_value(
            metrics, 'repro_gateway_errors_total{code="bad-request"}'
        ) >= 1

    def test_missing_fields_and_bad_values_are_400(self, gateway):
        cases = [
            {},
            {"sender": "alice"},
            {"sender": "alice", "receiver": "bob"},
            {"sender": "alice", "receiver": "bob", "document": DOCUMENT_XML,
             "mode": "yolo"},
            {"sender": "alice", "receiver": "bob", "document": DOCUMENT_XML,
             "k": 0},
            {"sender": "alice", "receiver": "bob", "document": DOCUMENT_XML,
             "deadline": -1},
        ]

        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return [
                    await client.post_json("/exchange", case)
                    for case in cases
                ]
            finally:
                await client.close()

        for reply in run(go()):
            assert reply.status == 400 and reply.error_code == "bad-request"

    def test_unparseable_document_is_400(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.exchange(
                    "alice", "bob", "<broken <<xml"
                )
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 400 and reply.error_code == "bad-request"


class TestOversizedDocuments:
    def test_oversized_body_is_413_and_counted(self):
        with GatewayThread(GatewayConfig(max_body_bytes=2048)) as harness:
            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    await _register(client)
                finally:
                    # Registration bodies exceed 2 KiB? No — schemas are
                    # small; the giant document below is what trips it.
                    pass
                big = json.dumps({
                    "sender": "alice", "receiver": "bob",
                    "document": "<x>%s</x>" % ("y" * 4096),
                }).encode("utf-8")
                reply = await client.request("POST", "/exchange", big)
                await client.close()  # 413 closes the connection
                metrics = await client.metrics_text()
                await client.close()
                return reply, metrics

            reply, metrics = run(go())
        assert reply.status == 413
        assert reply.json()["error"] == "too-large"
        assert counter_value(
            metrics, 'repro_gateway_errors_total{code="too-large"}'
        ) >= 1


class TestDeadlines:
    def test_deadline_exceeded_mid_enforcement_is_504_and_counted(self):
        # Each service call sleeps 200ms; a 50ms deadline must abort the
        # enforcement *while it runs*, not before it starts.
        with GatewayThread(
            GatewayConfig(invoke_delay=0.2)
        ) as harness:
            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    await _register(client)
                    reply = await client.exchange(
                        "alice", "bob", DOCUMENT_XML, deadline=0.05
                    )
                    metrics = await client.metrics_text()
                    return reply, metrics
                finally:
                    await client.close()

            reply, metrics = run(go())
        assert reply.status == 504
        payload = reply.json()
        assert payload["error"] == "deadline" and payload["status"] == 504
        assert counter_value(metrics, "repro_gateway_deadline_total") >= 1
        assert counter_value(
            metrics, 'repro_gateway_errors_total{code="deadline"}'
        ) >= 1

    def test_generous_deadline_passes(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.exchange(
                    "alice", "bob", DOCUMENT_XML, deadline=30.0
                )
            finally:
                await client.close()

        assert run(go()).status == 200


class TestShedding:
    def test_queue_full_is_503_typed_and_counted(self):
        # One admission slot, slow enforcement: the second of two
        # concurrent requests must shed with queue-full.
        with GatewayThread(GatewayConfig(
            queue_limit=1, pool_size=1, invoke_delay=0.2,
        )) as harness:
            async def go():
                setup = GatewayClient(harness.host, harness.port)
                try:
                    await _register(setup)
                finally:
                    await setup.close()

                async def one(seed):
                    client = GatewayClient(harness.host, harness.port)
                    try:
                        return await client.exchange(
                            "alice", "bob", DOCUMENT_XML, seed=seed
                        )
                    finally:
                        await client.close()

                replies = await asyncio.gather(*[
                    one(seed) for seed in range(4)
                ])
                probe = GatewayClient(harness.host, harness.port)
                try:
                    metrics = await probe.metrics_text()
                finally:
                    await probe.close()
                return replies, metrics

            replies, metrics = run(go())
        statuses = sorted(reply.status for reply in replies)
        assert statuses[0] == 200  # someone got through
        shed = [reply for reply in replies if reply.status == 503]
        assert shed, "expected at least one queue-full shed"
        for reply in shed:
            assert reply.error_code == "queue-full"
            assert reply.json()["status"] == 503
        assert counter_value(
            metrics, 'repro_gateway_shed_total{peer="alice",reason="queue-full"}'
        ) >= len(shed)

    def test_per_peer_limit_is_429(self):
        with GatewayThread(GatewayConfig(
            queue_limit=8, pool_size=1, invoke_delay=0.2,
        )) as harness:
            async def go():
                setup = GatewayClient(harness.host, harness.port)
                try:
                    assert (await setup.register_peer(
                        "alice", SENDER_XSD, obligations=OBLIGATIONS,
                        max_inflight=1,
                    )).status == 201
                    assert (await setup.register_peer(
                        "bob", RECEIVER_XSD
                    )).status == 201
                finally:
                    await setup.close()

                async def one(seed):
                    client = GatewayClient(harness.host, harness.port)
                    try:
                        return await client.exchange(
                            "alice", "bob", DOCUMENT_XML, seed=seed
                        )
                    finally:
                        await client.close()

                return await asyncio.gather(*[
                    one(seed) for seed in range(4)
                ])

            replies = run(go())
        busy = [reply for reply in replies if reply.status == 429]
        assert busy, "expected at least one per-peer shed"
        assert all(reply.error_code == "peer-limit" for reply in busy)


class TestEnforcementFailure:
    def test_unsafe_exchange_is_422_and_breaker_eventually_opens(self):
        # Receiver (***) = title.date.temp.exhibit* is NOT safely
        # reachable from the newspaper document (Figures 7/8): the
        # gateway must answer 422 with the enforcement error, and
        # consecutive failures must open alice's breaker.
        from repro.workloads import newspaper
        from repro.xschema.writer import schema_to_xschema

        star3 = schema_to_xschema(newspaper.schema_star3())
        with GatewayThread(GatewayConfig(
            breaker_threshold=2, breaker_cooldown=60.0,
        )) as harness:
            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    assert (await client.register_peer(
                        "alice", SENDER_XSD, obligations=OBLIGATIONS,
                    )).status == 201
                    assert (await client.register_peer(
                        "carol", star3
                    )).status == 201
                    failures = [
                        await client.exchange("alice", "carol", DOCUMENT_XML)
                        for _ in range(2)
                    ]
                    tripped = await client.exchange(
                        "alice", "carol", DOCUMENT_XML
                    )
                    metrics = await client.metrics_text()
                    return failures, tripped, metrics
                finally:
                    await client.close()

            failures, tripped, metrics = run(go())
        for reply in failures:
            assert reply.status == 422
            assert reply.error_code == "enforcement-failed"
            assert "safe" in reply.json()["detail"]
        assert tripped.status == 503
        assert tripped.error_code == "breaker-open"
        assert counter_value(
            metrics,
            'repro_gateway_shed_total{peer="alice",reason="breaker-open"}',
        ) >= 1
        assert counter_value(
            metrics, "repro_gateway_breaker_transitions_total"
        ) >= 1
