"""Unit tests for the regex AST and its smart constructors."""

import pytest

from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    EMPTY,
    EPSILON,
    Empty,
    Epsilon,
    Repeat,
    Seq,
    Star,
    alt,
    atom,
    opt,
    plus,
    repeat,
    seq,
    star,
)


class TestConstructorNormalization:
    def test_seq_flattens_nested_sequences(self):
        expr = seq(seq(atom("a"), atom("b")), atom("c"))
        assert isinstance(expr, Seq)
        assert [str(i) for i in expr.items] == ["a", "b", "c"]

    def test_seq_drops_epsilon(self):
        assert seq(atom("a"), EPSILON) == atom("a")

    def test_seq_of_nothing_is_epsilon(self):
        assert seq() is EPSILON or isinstance(seq(), Epsilon)

    def test_seq_with_empty_is_empty(self):
        assert isinstance(seq(atom("a"), EMPTY), Empty)

    def test_alt_flattens_and_dedupes(self):
        expr = alt(atom("a"), alt(atom("b"), atom("a")))
        assert isinstance(expr, Alt)
        assert [str(o) for o in expr.options] == ["a", "b"]

    def test_alt_single_option_collapses(self):
        assert alt(atom("a")) == atom("a")

    def test_alt_drops_empty(self):
        assert alt(atom("a"), EMPTY) == atom("a")

    def test_alt_of_nothing_is_empty(self):
        assert isinstance(alt(), Empty)

    def test_star_of_star_collapses(self):
        inner = star(atom("a"))
        assert star(inner) == inner

    def test_star_of_epsilon_is_epsilon(self):
        assert isinstance(star(EPSILON), Epsilon)

    def test_star_of_empty_is_epsilon(self):
        assert isinstance(star(EMPTY), Epsilon)

    def test_plus_builds_repeat(self):
        expr = plus(atom("a"))
        assert isinstance(expr, Repeat)
        assert expr.low == 1 and expr.high is None

    def test_opt_builds_repeat(self):
        expr = opt(atom("a"))
        assert isinstance(expr, Repeat)
        assert expr.low == 0 and expr.high == 1

    def test_repeat_normalizes_exact_one(self):
        assert repeat(atom("a"), 1, 1) == atom("a")

    def test_repeat_zero_to_unbounded_is_star(self):
        assert isinstance(repeat(atom("a"), 0, None), Star)

    def test_repeat_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            repeat(atom("a"), 3, 2)
        with pytest.raises(ValueError):
            repeat(atom("a"), -1, 2)


class TestOperators:
    def test_plus_operator_is_concatenation(self):
        expr = atom("a") + atom("b")
        assert isinstance(expr, Seq)

    def test_or_operator_is_alternation(self):
        expr = atom("a") | atom("b")
        assert isinstance(expr, Alt)

    def test_method_sugar(self):
        assert isinstance(atom("a").star(), Star)
        assert isinstance(atom("a").plus(), Repeat)
        assert isinstance(atom("a").opt(), Repeat)


class TestRendering:
    def test_atom_renders_plainly(self):
        assert str(atom("title")) == "title"

    def test_newspaper_type_renders_like_the_paper(self):
        expr = seq(
            atom("title"),
            atom("date"),
            alt(atom("Get_Temp"), atom("temp")),
            alt(atom("TimeOut"), star(atom("exhibit"))),
        )
        assert str(expr) == "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"

    def test_wildcard_rendering(self):
        assert str(AnySymbol()) == "any"
        assert "a" in str(AnySymbol(frozenset({"a"})))

    def test_walk_visits_every_node(self):
        expr = seq(atom("a"), alt(atom("b"), star(atom("c"))))
        atoms = [n.symbol for n in expr.walk() if isinstance(n, Atom)]
        assert sorted(atoms) == ["a", "b", "c"]


class TestHashability:
    def test_regexes_are_hashable_and_comparable(self):
        a1 = seq(atom("a"), star(atom("b")))
        a2 = seq(atom("a"), star(atom("b")))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert len({a1, a2}) == 1
