"""Regression tests for degenerate automata and canonical construction.

Three hot-path fixes are pinned down here:

- ``complete()`` must never reuse an existing state id for its rejecting
  sink, even for pathological (state-poor) automata;
- ``widen_alphabet()`` must handle states without an ``OTHER`` fallback
  *explicitly* (new symbols go to a rejecting sink) so widening is
  language-preserving through completion and complementation;
- ``determinize()`` must number states canonically (BFS over the sorted
  alphabet), independent of the order the NFA's transition lists were
  built in — the property the compile-cache digests rely on.
"""

import pytest

from repro.automata.dfa import (
    DFA,
    complement,
    complete,
    determinize,
    minimize,
    minimize_hopcroft,
    widen_alphabet,
)
from repro.automata.nfa import NFA
from repro.automata.ops import is_empty, language_equal, regex_to_dfa
from repro.automata.symbols import OTHER, Alphabet
from repro.regex.parser import parse_regex

ALPHABET = Alphabet.closure({"a", "b"})
WIDER = Alphabet.closure({"a", "b", "c", "d"})


def words(alphabet, up_to=3):
    frontier = [()]
    for _ in range(up_to + 1):
        next_frontier = []
        for word in frontier:
            yield word
            for symbol in alphabet:
                next_frontier.append(word + (symbol,))
        frontier = next_frontier


class TestCompleteDegenerate:
    def test_sink_is_fresh_for_single_state(self):
        dfa = DFA(ALPHABET, 0, frozenset(), {})
        completed = complete(dfa)
        assert completed.is_complete()
        assert completed.initial == 0
        # The sink must not collide with the initial state.
        sink_candidates = completed.states() - {0}
        assert len(sink_candidates) == 1
        assert completed.accepting == frozenset()
        assert is_empty(completed)

    def test_sink_fresh_when_initial_only_accepting(self):
        dfa = DFA(ALPHABET, 0, frozenset({0}), {})
        completed = complete(dfa)
        assert completed.is_complete()
        assert completed.accepts(())
        assert not completed.accepts(("a",))
        assert not completed.accepts(("a", "a"))

    def test_complement_of_empty_language(self):
        dfa = DFA(ALPHABET, 0, frozenset(), {})
        comp = complement(dfa)
        for word in words(ALPHABET):
            assert comp.accepts(word), word

    def test_complement_of_epsilon_only(self):
        dfa = DFA(ALPHABET, 0, frozenset({0}), {})
        comp = complement(dfa)
        assert not comp.accepts(())
        assert comp.accepts(("a",))
        assert comp.accepts(("b", "a"))

    @pytest.mark.parametrize("minimizer", [minimize, minimize_hopcroft])
    def test_minimize_degenerate(self, minimizer):
        empty = minimizer(DFA(ALPHABET, 0, frozenset(), {}))
        assert is_empty(empty)
        assert empty.is_complete()
        eps = minimizer(DFA(ALPHABET, 0, frozenset({0}), {}))
        assert eps.accepts(())
        assert not eps.accepts(("a",))

    @pytest.mark.parametrize("minimizer", [minimize, minimize_hopcroft])
    def test_minimize_unreachable_accepting(self, minimizer):
        # State 7 accepts but nothing reaches it: language is empty.
        dfa = DFA(ALPHABET, 0, frozenset({7}), {7: {"a": 7}})
        assert is_empty(minimizer(dfa))

    def test_nonzero_initial_state(self):
        dfa = DFA(ALPHABET, 5, frozenset({5}), {})
        completed = complete(dfa)
        assert completed.is_complete()
        assert completed.accepts(())
        assert not complement(completed).accepts(())


class TestWidenAlphabet:
    def test_no_fallback_rows_widen_to_explicit_sink(self):
        # State 1 has no outgoing row at all (accepting dead end) and
        # state 0's row lacks OTHER: both previously dropped new symbols.
        dfa = DFA(ALPHABET, 0, frozenset({1}), {0: {"a": 1}})
        widened = widen_alphabet(dfa, WIDER)
        # New symbols are rejected *deterministically* via a sink.
        assert widened.step(0, "c") is not None
        assert not widened.accepts(("c",))
        assert widened.accepts(("a",))
        assert not widened.accepts(("a", "d"))

    def test_widening_preserves_language_on_old_words(self):
        dfa = regex_to_dfa(parse_regex("a.b*"), ALPHABET)
        widened = widen_alphabet(dfa, WIDER)
        for word in words(ALPHABET):
            assert dfa.accepts(word) == widened.accepts(word), word

    def test_round_trip_through_complement(self):
        # complement over the wider alphabet must accept exactly the
        # words outside the original language — including words using
        # the new symbols, which the original (folded onto OTHER and
        # stuck) rejected.
        dfa = regex_to_dfa(parse_regex("a.b*"), ALPHABET)
        widened = widen_alphabet(dfa, WIDER)
        comp = complement(widened)
        for word in words(WIDER, up_to=3):
            assert comp.accepts(word) == (not widened.accepts(word)), word
        # Double complement restores the language.
        restored = complement(comp)
        for word in words(WIDER, up_to=3):
            assert restored.accepts(word) == widened.accepts(word), word

    def test_widened_matches_recompiled_regex(self):
        # Widening the small compilation must define the same language
        # as compiling directly over the wider alphabet.
        for source in ("a.b*", "(a | b)*", "a?", "b.b.a"):
            regex = parse_regex(source)
            widened = widen_alphabet(regex_to_dfa(regex, ALPHABET), WIDER)
            direct = regex_to_dfa(regex, WIDER)
            assert language_equal(complete(widened), complete(direct)), source

    def test_wildcard_fallback_still_used(self):
        # A state *with* an OTHER fallback keeps routing new symbols
        # through it (wildcard acceptance must survive widening).
        dfa = regex_to_dfa(parse_regex("any"), ALPHABET)
        widened = widen_alphabet(dfa, WIDER)
        assert widened.accepts(("c",))
        assert widened.accepts(("d",))

    def test_complete_dfa_stays_complete(self):
        dfa = complete(regex_to_dfa(parse_regex("a.b"), ALPHABET))
        widened = widen_alphabet(dfa, WIDER)
        assert widened.is_complete()


class TestDeterminizeCanonical:
    def _nfa(self, edge_order):
        # One NFA, two transition-list orders: a|b.a with an epsilon.
        return NFA(
            n_states=4,
            initial=0,
            accepting=frozenset({2, 3}),
            transitions={
                0: list(edge_order),
                1: [("a", 3)],
            },
            epsilon={0: [1]},
        )

    def test_digest_independent_of_construction_order(self):
        forward = self._nfa([("a", 2), ("b", 1)])
        backward = self._nfa([("b", 1), ("a", 2)])
        left = determinize(forward, ALPHABET)
        right = determinize(backward, ALPHABET)
        assert left.initial == right.initial
        assert left.accepting == right.accepting
        assert left.transitions == right.transitions

    def test_bfs_numbering(self):
        # BFS over the sorted alphabet: the 'a' successor of state 0 is
        # discovered (and numbered) before the 'b' successor.
        nfa = NFA(
            n_states=3,
            initial=0,
            accepting=frozenset({1, 2}),
            transitions={0: [("b", 2), ("a", 1)]},
        )
        dfa = determinize(nfa, ALPHABET)
        assert dfa.transitions[0]["a"] == 1
        assert dfa.transitions[0]["b"] == 2
