"""Unit tests for the small supporting modules.

Errors, invocation plans/logs, cost models, the alphabet machinery —
the plumbing every other module leans on.
"""

import pytest

from repro import errors
from repro.automata.symbols import (
    DATA,
    OTHER,
    Alphabet,
    class_matches,
    concretize_class,
)
from repro.regex.ast import AnySymbol
from repro.rewriting.cost import UNIT, CostModel
from repro.rewriting.plan import (
    Decision,
    InvocationLog,
    InvocationRecord,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in (
            "RegexSyntaxError", "DocumentError", "DocumentParseError",
            "SchemaError", "ValidationError", "RewriteError",
            "NoSafeRewritingError", "NoPossibleRewritingError",
            "RewriteExecutionError", "ServiceError", "ServiceFault",
            "UnknownServiceError", "AccessDeniedError", "XMLSchemaIntError",
            "NondeterministicRegexError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_rewrite_family(self):
        assert issubclass(errors.NoSafeRewritingError, errors.RewriteError)
        assert issubclass(errors.NoPossibleRewritingError, errors.RewriteError)
        assert issubclass(errors.RewriteExecutionError, errors.RewriteError)

    def test_service_fault_carries_code(self):
        fault = errors.ServiceFault("boom", fault_code="Client")
        assert fault.fault_code == "Client"

    def test_regex_error_carries_position(self):
        error = errors.RegexSyntaxError("bad", text="a.%", position=2)
        assert error.position == 2 and error.text == "a.%"

    def test_validation_error_carries_violations(self):
        error = errors.ValidationError("invalid", violations=[1, 2])
        assert error.violations == [1, 2]


class TestInvocationLog:
    def test_ordering_and_rendering(self):
        log = InvocationLog()
        log.add("Get_Temp", 1, ("temp",), 2.0)
        log.add("TimeOut", 1, ("exhibit", "exhibit"), 1.0)
        assert log.invoked == ["Get_Temp", "TimeOut"]
        assert log.cost == 3.0
        assert len(log) == 2
        rendered = str(log)
        assert "Get_Temp -> [temp] depth=1" in rendered
        assert "exhibit.exhibit" in rendered

    def test_backtracked_flagging(self):
        log = InvocationLog()
        log.add("f", 2, ("a",))
        log.mark_backtracked(0)
        assert log.records[0].backtracked
        assert log.useful == []
        assert "(backtracked)" in str(log)

    def test_empty_log(self):
        assert str(InvocationLog()) == "no calls"

    def test_decision_rendering(self):
        assert str(Decision(2, "Get_Temp", "invoke")) == "invoke Get_Temp@2"

    def test_record_rendering_empty_output(self):
        record = InvocationRecord("f", 1, ())
        assert "[]" in str(record)


class TestCostModel:
    def test_defaults(self):
        assert UNIT.cost_of("anything") == 1.0
        assert not UNIT.is_side_effect_free("anything")

    def test_overrides(self):
        model = CostModel(default_cost=2.0).with_cost("f", 9.0)
        assert model.cost_of("f") == 9.0
        assert model.cost_of("g") == 2.0

    def test_side_effect_free(self):
        model = UNIT.with_side_effect_free(["f"])
        assert model.is_side_effect_free("f")
        assert model.is_cheap("f")  # side-effect free => cheap
        assert not model.is_cheap("g")

    def test_cheap_by_threshold(self):
        model = CostModel().with_cost("g", 0.0)
        assert model.is_cheap("g", threshold=0.0)
        assert not model.is_cheap("h", threshold=0.5)
        assert CostModel(default_cost=0.4).is_cheap("h", threshold=0.5)


class TestAlphabet:
    def test_closure_always_contains_other(self):
        alphabet = Alphabet.closure({"a"}, {"b"})
        assert OTHER in alphabet
        assert set("ab") <= alphabet.symbols

    def test_canon_folds_unknown(self):
        alphabet = Alphabet.closure({"a"})
        assert alphabet.canon("a") == "a"
        assert alphabet.canon("zzz") == OTHER
        assert alphabet.canon_word(("a", "zzz")) == ("a", OTHER)

    def test_iteration_sorted(self):
        alphabet = Alphabet.closure({"b", "a"})
        assert list(alphabet) == sorted(alphabet.symbols)
        assert len(alphabet) == 3

    def test_class_matches(self):
        assert class_matches("a", "a")
        assert not class_matches("a", "b")
        assert class_matches(AnySymbol(), "whatever")
        assert not class_matches(AnySymbol(frozenset({"x"})), "x")

    def test_concretize(self):
        alphabet = Alphabet.closure({"a", "b"})
        assert concretize_class("a", alphabet) == frozenset({"a"})
        assert concretize_class("zzz", alphabet) == frozenset()
        wild = concretize_class(AnySymbol(frozenset({"a"})), alphabet)
        assert wild == frozenset({"b", OTHER})

    def test_data_symbol_is_reserved(self):
        assert DATA.startswith("#")
        assert OTHER.startswith("#")


class TestInputInstance:
    def test_symmetry_with_output(self, schema_star):
        from repro.doc import el
        from repro.schema.validate import is_input_instance

        assert is_input_instance(
            (el("city", "Paris"),), "Get_Temp", schema_star
        )
        assert not is_input_instance(
            (el("date", "x"),), "Get_Temp", schema_star
        )
        assert not is_input_instance((), "NoSuch", schema_star)


class TestWsdlSignatureResolution:
    def test_pattern_signature_from_wsdl(self):
        from repro import Service, constant_responder, el, parse_regex
        from repro.schema.model import FunctionSignature
        from repro.services.wsdl import service_to_wsdl
        from repro.xschema import compile_xschema, parse_xschema

        svc = Service("http://weather", "urn:w")
        svc.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            constant_responder((el("temp", "1"),)),
        )
        wsdl_text = service_to_wsdl(svc)
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="city" type="string"/>
          <element name="temp" type="string"/>
          <element name="page"><complexType><sequence>
            <functionPattern ref="Forecast"/>
          </sequence></complexType></element>
          <functionPattern id="Forecast"
                           WSDLSignature="http://weather?wsdl#Get_Temp"/>
        </schema>"""
        compiled = compile_xschema(
            parse_xschema(source), wsdl_loader=lambda loc: wsdl_text
        )
        signature = compiled.patterns["Forecast"].signature
        assert str(signature) == "city -> temp"

    def test_missing_loader_rejected(self):
        from repro.errors import XMLSchemaIntError
        from repro.xschema import compile_xschema, parse_xschema

        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <functionPattern id="P" WSDLSignature="somewhere#op"/>
        </schema>"""
        with pytest.raises(XMLSchemaIntError):
            compile_xschema(parse_xschema(source))

    def test_unknown_operation_rejected(self):
        from repro import Service
        from repro.errors import XMLSchemaIntError
        from repro.services.wsdl import service_to_wsdl
        from repro.xschema import compile_xschema, parse_xschema

        wsdl_text = service_to_wsdl(Service("http://empty", "urn:e"))
        source = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <functionPattern id="P" WSDLSignature="http://empty#nope"/>
        </schema>"""
        with pytest.raises(XMLSchemaIntError):
            compile_xschema(
                parse_xschema(source), wsdl_loader=lambda loc: wsdl_text
            )


class TestWeightedSampling:
    def test_weight_steers_choices(self):
        import random

        from repro.automata.ops import regex_to_dfa, sample_word
        from repro.regex.parser import parse_regex

        dfa = regex_to_dfa(parse_regex("(a | b){8,8}"))
        rng = random.Random(3)
        heavy_a = sample_word(
            dfa, rng, weight=lambda s: 100.0 if s == "a" else 1.0
        )
        assert heavy_a.count("a") >= 6
        rng = random.Random(3)
        heavy_b = sample_word(
            dfa, rng, weight=lambda s: 100.0 if s == "b" else 1.0
        )
        assert heavy_b.count("b") >= 6

    def test_zero_weight_avoided_when_possible(self):
        import random

        from repro.automata.ops import regex_to_dfa, sample_word
        from repro.regex.parser import parse_regex

        dfa = regex_to_dfa(parse_regex("(a | b)*"))
        for seed in range(10):
            word = sample_word(
                dfa, random.Random(seed), weight=lambda s: 0.0 if s == "b" else 1.0
            )
            assert "b" not in word
