"""Property-based tests relating possible rewriting to reality.

The semantic content of Definition 5's "possibly rewrites" is an
existential over service behaviours.  We check both directions against
brute force:

- soundness: when the analysis says impossible, no conforming invoker
  ever succeeds;
- completeness (on finite search spaces): when it says possible, some
  enumerated conforming behaviour makes the executor succeed;
- the executor's backtracking finds that behaviour when the invoker
  cycles through candidate outputs.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.automata.ops import regex_to_dfa, shortest_words
from repro.automata.symbols import Alphabet
from repro.doc import call, el
from repro.doc.nodes import symbol_of
from repro.errors import RewriteExecutionError
from repro.regex import ast
from repro.regex.ops import matches
from repro.rewriting.possible import analyze_possible, execute_possible
from repro.rewriting.safe import analyze_safe

SYMBOLS = ["a", "b", "c"]


def small_problems():
    """Problems small enough to brute-force all k=1 behaviours."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 3))
        word = []
        output_types = {}
        for i in range(n):
            if draw(st.booleans()):
                word.append(draw(st.sampled_from(SYMBOLS)))
            else:
                name = "q%d" % i
                options = draw(
                    st.lists(st.sampled_from(SYMBOLS), min_size=1,
                             max_size=2, unique=True)
                )
                optional = draw(st.booleans())
                expr = ast.alt(*(ast.atom(s) for s in options))
                if optional:
                    expr = ast.opt(expr)
                output_types[name] = expr
                word.append(name)
        target_len = draw(st.integers(0, 3))
        target = ast.seq(
            *(ast.atom(draw(st.sampled_from(SYMBOLS)))
              for _ in range(target_len))
        )
        return tuple(word), output_types, target

    return build()


def conforming_behaviours(word, output_types, max_words=6):
    """Every assignment of (short) output words to call positions."""
    per_position = []
    for symbol in word:
        if symbol in output_types:
            dfa = regex_to_dfa(
                output_types[symbol], Alphabet.closure(SYMBOLS)
            )
            outs = list(shortest_words(dfa, max_words))
            per_position.append([("invoke", out) for out in outs]
                                + [("keep", None)])
        else:
            per_position.append([("plain", None)])
    return itertools.product(*per_position)


def behaviour_result(word, behaviour):
    """The word produced by one behaviour, or None if it keeps a call."""
    produced = []
    for symbol, (kind, out) in zip(word, behaviour):
        if kind == "plain" or kind == "keep":
            produced.append(symbol)
        else:
            produced.extend(out)
    return tuple(produced)


class TestPossibleAgainstBruteForce:
    @given(small_problems())
    @settings(max_examples=120, deadline=None)
    def test_analysis_equals_brute_force(self, problem):
        word, output_types, target = problem
        analysis = analyze_possible(word, output_types, target, k=1)
        brute = any(
            matches(target, behaviour_result(word, behaviour))
            for behaviour in conforming_behaviours(word, output_types)
        )
        assert analysis.exists == brute, (word, str(target))

    @given(small_problems())
    @settings(max_examples=60, deadline=None)
    def test_backtracking_finds_lucky_outputs(self, problem):
        """When possible, an invoker cycling through all short outputs
        lets the backtracking executor succeed."""
        word, output_types, target = problem
        analysis = analyze_possible(word, output_types, target, k=1)
        if not analysis.exists:
            return

        counters = {}

        def cycling_invoker(fc):
            dfa = regex_to_dfa(
                output_types[fc.name], Alphabet.closure(SYMBOLS)
            )
            outs = list(shortest_words(dfa, 6))
            index = counters.get(fc.name, 0)
            counters[fc.name] = index + 1
            out = outs[index % len(outs)]
            return tuple(el(s) for s in out)

        children = tuple(
            call(s) if s in output_types else el(s) for s in word
        )
        try:
            new_children, _log = execute_possible(
                analysis, children, cycling_invoker, max_invocations=500
            )
        except RewriteExecutionError:
            # Legal: cycling may repeatedly miss the lucky combination
            # (outputs are re-drawn per call).  But a witness exists:
            assert analysis.witness() is not None
            return
        assert matches(target, [symbol_of(n) for n in new_children])

    @given(small_problems())
    @settings(max_examples=80, deadline=None)
    def test_safe_is_universal_possible_is_existential(self, problem):
        """Safe = all behaviours succeed; brute-force the contrapositive:
        if some conforming behaviour fails AND some succeeds, the problem
        is possible but not safe."""
        word, output_types, target = problem
        results = [
            matches(target, behaviour_result(word, behaviour))
            for behaviour in conforming_behaviours(word, output_types)
        ]
        possible = analyze_possible(word, output_types, target, k=1).exists
        assert possible == any(results)
        if all(results):
            # Every behaviour (including keep-everything) lands in the
            # target; the safe analysis must agree it is winnable.
            assert analyze_safe(word, output_types, target, k=1).exists
