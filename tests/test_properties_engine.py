"""End-to-end properties of the document rewrite engine.

For a random sender schema we *derive* the receiver mechanically:
replace every function atom in the content models by the function's
output type ("materialize the schema").  By construction every sender
instance then admits a safe 1-depth rewriting into the receiver — the
engine must find and execute it, and the result must validate, whatever
conforming outputs the simulated services produce.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.doc.nodes import FunctionCall
from repro.regex import ast
from repro.regex.ast import Alt, AnySymbol, Atom, Empty, Epsilon, Regex, Repeat, Seq, Star
from repro.rewriting.engine import RewriteEngine
from repro.schema import InstanceGenerator, Schema, is_instance
from repro.schema.generator import InstanceGenerator as Generator
from repro.workloads.generators import random_flat_schema


def materialize_schema(schema: Schema) -> Schema:
    """Receiver = sender with every function atom inlined to its output."""

    def substitute(expr: Regex) -> Regex:
        if isinstance(expr, Atom):
            signature = schema.functions.get(expr.symbol)
            if signature is not None:
                return signature.output_type
            return expr
        if isinstance(expr, (Epsilon, Empty, AnySymbol)):
            return expr
        if isinstance(expr, Seq):
            return ast.seq(*(substitute(i) for i in expr.items))
        if isinstance(expr, Alt):
            return ast.alt(*(substitute(o) for o in expr.options))
        if isinstance(expr, Star):
            return ast.star(substitute(expr.item))
        if isinstance(expr, Repeat):
            return ast.repeat(substitute(expr.item), expr.low, expr.high)
        raise TypeError(expr)

    return Schema(
        {label: substitute(expr) for label, expr in schema.label_types.items()},
        dict(schema.functions),
        dict(schema.patterns),
        schema.root,
    )


def sampling_invoker(schema: Schema, seed: int):
    generator = Generator(schema, random.Random(seed), max_depth=4)

    def invoker(fc: FunctionCall):
        return generator.output_forest(fc.name)

    return invoker


class TestEngineOnDerivedSchemas:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_materializing_rewrite_always_succeeds(self, schema_seed, doc_seed):
        sender = random_flat_schema(random.Random(schema_seed))
        receiver = materialize_schema(sender)
        document = InstanceGenerator(
            sender, random.Random(doc_seed), max_depth=4
        ).document()

        engine = RewriteEngine(receiver, sender, k=1)
        assert engine.can_rewrite(document), document.pretty()
        result = engine.rewrite(
            document, sampling_invoker(sender, doc_seed + 1)
        )
        assert is_instance(result.document, receiver, sender)
        # Every original call was materialized (outputs are call-free in
        # the flat schema family).
        assert result.document.is_extensional()
        assert result.calls_made == document.function_count()

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_identity_rewrite_never_invokes(self, schema_seed, doc_seed):
        sender = random_flat_schema(random.Random(schema_seed))
        document = InstanceGenerator(
            sender, random.Random(doc_seed), max_depth=4
        ).document()
        engine = RewriteEngine(sender, sender, k=1)
        result = engine.rewrite(
            document, sampling_invoker(sender, doc_seed + 1)
        )
        assert result.document == document
        assert not result.log.records

    @given(st.integers(0, 10_000), st.integers(0, 10_000),
           st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_call_bias_respects_schema(self, schema_seed, doc_seed, bias_ix):
        bias = [0.0, 0.5, 1.0, 10.0][bias_ix]
        schema = random_flat_schema(random.Random(schema_seed))
        generator = InstanceGenerator(
            schema, random.Random(doc_seed), max_depth=4, call_bias=bias
        )
        document = generator.document()
        assert is_instance(document, schema)
