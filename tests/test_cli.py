"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.doc.document import Document
from repro.workloads import newspaper
from repro.xschema.writer import schema_to_xschema


@pytest.fixture
def files(tmp_path):
    doc_path = tmp_path / "doc.xml"
    doc_path.write_text(newspaper.document().to_xml())
    star = tmp_path / "star.xsd"
    star.write_text(schema_to_xschema(newspaper.schema_star()))
    star2 = tmp_path / "star2.xsd"
    star2.write_text(schema_to_xschema(newspaper.schema_star2()))
    star3 = tmp_path / "star3.xsd"
    star3.write_text(schema_to_xschema(newspaper.schema_star3()))
    return {
        "doc": str(doc_path),
        "star": str(star),
        "star2": str(star2),
        "star3": str(star3),
        "dir": tmp_path,
    }


class TestValidate:
    def test_valid(self, files, capsys):
        assert main(["validate", files["doc"], files["star"]]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_lists_violations(self, files, capsys):
        assert main(["validate", files["doc"], files["star2"]]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "content" in out

    def test_lenient_flag(self, files, tmp_path, capsys):
        odd = tmp_path / "odd.xml"
        odd.write_text(
            Document.from_xml(newspaper.document().to_xml()).to_xml()
        )
        assert main(["validate", str(odd), files["star"], "--lenient"]) == 0


class TestRewrite:
    def test_rewrite_to_star2(self, files, capsys):
        out_path = files["dir"] / "out.xml"
        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "-o", str(out_path),
        ])
        assert code == 0
        from repro.schema.validate import is_instance
        from repro.xschema.compile import compile_xschema
        from repro.xschema.parser import parse_xschema

        result = Document.from_xml(out_path.read_text())
        target = compile_xschema(parse_xschema(
            (files["dir"] / "star2.xsd").read_text()))
        sender = compile_xschema(parse_xschema(
            (files["dir"] / "star.xsd").read_text()))
        assert is_instance(result, target, sender)
        assert "Get_Temp" in capsys.readouterr().err

    def test_rewrite_safe_refuses_star3(self, files, capsys):
        code = main([
            "rewrite", files["doc"], files["star"], files["star3"],
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_rewrite_stdout_default(self, files, capsys):
        code = main(["rewrite", files["doc"], files["star"], files["star2"]])
        assert code == 0
        assert "<newspaper" in capsys.readouterr().out

    def test_rewrite_deterministic_per_seed(self, files, capsys):
        for _ in range(2):
            main([
                "rewrite", files["doc"], files["star"], files["star2"],
                "--seed", "7",
            ])
        out = capsys.readouterr().out
        first, second = out.split('<?xml version="1.0"?>')[1:]
        assert first == second


class TestRewriteResilience:
    def test_flaky_without_retries_fails(self, files, capsys):
        # Injection alone enables the resilient layer but 0 retries means
        # the first injected fault kills the document in safe mode.
        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--flaky", "1",
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "resilience:" in err
        assert "FAILED" in err

    def test_flaky_with_retries_recovers(self, files, capsys):
        # Into (***) both calls are invoked; the injected fault hits the
        # second invocation and the retry absorbs it (seed 4 makes the
        # sampled TimeOut answers exhibits-only, so possible mode lands).
        code = main([
            "rewrite", files["doc"], files["star"], files["star3"],
            "--mode", "possible", "--seed", "4",
            "--flaky", "2", "--retries", "3",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "2 call(s), 3 attempt(s), 1 retry, 1 fault(s)" in captured.err
        assert "<newspaper" in captured.out

    def test_retries_zero_means_zero(self, files, capsys):
        code = main([
            "rewrite", files["doc"], files["star"], files["star3"],
            "--mode", "possible", "--seed", "4",
            "--flaky", "2", "--retries", "0",
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "0 retries" in err
        assert "dead: TimeOut" in err

    def test_retry_summary_is_deterministic(self, files, capsys):
        args = [
            "rewrite", files["doc"], files["star"], files["star3"],
            "--mode", "possible", "--seed", "4",
            "--flaky", "2", "--retries", "3", "--jitter-seed", "5",
        ]
        assert main(args) == 0
        first = capsys.readouterr().err
        assert main(args) == 0
        second = capsys.readouterr().err
        assert first == second

    def test_call_budget_denies(self, files, capsys):
        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--call-budget", "0",
        ])
        assert code == 1
        assert "resilience:" in capsys.readouterr().err


class TestCompat:
    def test_compatible(self, files, capsys):
        assert main(["compat", files["star"], files["star2"]]) == 0
        assert "compatible" in capsys.readouterr().out

    def test_incompatible(self, files, capsys):
        assert main(["compat", files["star"], files["star3"]]) == 1
        assert "NOT compatible" in capsys.readouterr().out


class TestInspect:
    def test_stats(self, files, capsys):
        assert main(["inspect", files["doc"]]) == 0
        out = capsys.readouterr().out
        assert "calls     : 2" in out
        assert "Get_Temp" in out


class TestProfile:
    def trace(self, files):
        # A private compile cache keeps the compile.* spans in the trace
        # no matter how warm the ambient process cache already is.
        path = files["dir"] / "t.jsonl"
        assert main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "--trace", str(path), "-o", str(files["dir"] / "out.xml"),
            "--compile-cache", str(files["dir"] / "cc"),
        ]) == 0
        return str(path)

    def test_renders_tree_and_phase_table(self, files, capsys):
        trace = self.trace(files)
        capsys.readouterr()
        assert main(["profile", trace]) == 0
        out = capsys.readouterr().out
        for needle in ("product", "game", "[determinize]",
                       "phase attribution (exclusive time):"):
            assert needle in out

    def test_exclusive_sums_to_root_within_one_percent(self, files, capsys):
        import json as json_mod

        trace = self.trace(files)
        profile_path = files["dir"] / "profile.json"
        assert main(["profile", trace, "--json", str(profile_path)]) == 0
        payload = json_mod.loads(profile_path.read_text())
        total = payload["total_seconds"]
        exclusive = sum(payload["phases"].values())
        assert total > 0.0
        assert abs(exclusive - total) <= 0.01 * total

    def test_max_depth_truncates(self, files, capsys):
        trace = self.trace(files)
        capsys.readouterr()
        assert main(["profile", trace, "--max-depth", "0"]) == 0
        out = capsys.readouterr().out
        assert "enforce" in out
        assert "└─" not in out.split("phase attribution")[0]

    def test_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("game_work", "obs_overhead", "quantile_sketch",
                     "compile_cache"):
            assert name in out

    def test_unknown_bench_is_operational_error(self, tmp_path, capsys):
        assert main(["bench", "nope", "--out", str(tmp_path)]) == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_smoke_run_writes_payload_and_diffs_clean(self, tmp_path, capsys):
        import json as json_mod

        args = ["bench", "quantile_sketch", "--smoke",
                "--out", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "no comparable baseline" in first
        payload = json_mod.loads(
            (tmp_path / "BENCH_quantile_sketch.json").read_text()
        )
        assert payload["smoke"] is True and payload["work"]
        # Second run diffs against the file just written: no regressions.
        assert main(args) == 0
        assert "no counter regressions" in capsys.readouterr().out

    def test_regression_fails_the_run(self, tmp_path, capsys):
        import json as json_mod

        args = ["bench", "quantile_sketch", "--smoke",
                "--out", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        path = tmp_path / "BENCH_quantile_sketch.json"
        baseline = json_mod.loads(path.read_text())
        # Pretend history did much less work than the present does.
        for key in baseline["work"]["default"]:
            baseline["work"]["default"][key] = 1.0
        path.write_text(json_mod.dumps(baseline, sort_keys=True))
        assert main(args) == 1
        assert "REGRESSIONS" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/x.xml"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>")
        assert main(["inspect", str(bad)]) == 2
