"""Tests for remaining code paths: alphabet widening, problem alphabets,
peer options, network bookkeeping."""

import pytest

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    Service,
    constant_responder,
    el,
    parse_regex,
)
from repro.automata.dfa import complement, widen_alphabet
from repro.automata.ops import regex_to_dfa
from repro.automata.symbols import OTHER, Alphabet
from repro.rewriting.safe import problem_alphabet
from repro.workloads import newspaper


class TestWidenAlphabet:
    def test_new_symbols_follow_other(self):
        dfa = complement(regex_to_dfa(parse_regex("a")))
        widened = widen_alphabet(dfa, Alphabet.closure({"a", "b"}))
        # 'b' must behave exactly like an unknown symbol did before.
        assert widened.accepts(["b"]) == dfa.accepts(["zzz"]) is True

    def test_identity_when_same_alphabet(self):
        dfa = regex_to_dfa(parse_regex("a"))
        assert widen_alphabet(dfa, dfa.alphabet) is dfa

    def test_shrinking_rejected(self):
        dfa = regex_to_dfa(parse_regex("a.b"))
        with pytest.raises(ValueError):
            widen_alphabet(dfa, Alphabet.closure(set()))

    def test_language_preserved_on_partial_dfa(self):
        # A partial DFA (no OTHER rows): widening leaves new symbols
        # untransitioned, which still rejects — same language.
        dfa = regex_to_dfa(parse_regex("a.b"))
        widened = widen_alphabet(dfa, Alphabet.closure({"a", "b", "c"}))
        assert widened.accepts(["a", "b"])
        assert not widened.accepts(["a", "c"])


class TestProblemAlphabet:
    def test_covers_every_source(self, newspaper_outputs):
        alphabet = problem_alphabet(
            ("title", "date", "Get_Temp", "TimeOut"),
            newspaper_outputs,
            parse_regex("title.date.temp.exhibit*"),
        )
        for symbol in (
            "title", "date", "temp", "exhibit", "performance",
            "Get_Temp", "TimeOut", OTHER,
        ):
            assert symbol in alphabet, symbol

    def test_function_names_included_even_if_only_in_outputs(self):
        alphabet = problem_alphabet(
            ("f",), {"f": parse_regex("g"), "g": parse_regex("a")},
            parse_regex("a"),
        )
        assert "g" in alphabet


class TestPeerOptions:
    def test_provide_without_enforcement(self, schema_star):
        peer = AXMLPeer("raw", schema_star)
        signature = FunctionSignature(parse_regex("temp"), parse_regex("temp"))
        peer.provide("Echo", signature, lambda params: params,
                     enforce_io=False)
        # Without enforcement, a mismatching parameter passes through.
        out = peer.service.invoke("Echo", (el("date", "x"),))
        assert out[0].label == "date"

    def test_peer_self_registration(self, schema_star):
        peer = AXMLPeer("self", schema_star)
        assert peer.registry.services["axml://self"] is peer.service

    def test_know_peer_makes_endpoint_callable(self, schema_star):
        a = AXMLPeer("a", schema_star)
        b = AXMLPeer("b", schema_star)
        signature = FunctionSignature(parse_regex("temp"), parse_regex("temp"))
        b.provide("Echo", signature, lambda params: params)
        a.know_peer(b)
        from repro.doc.builder import call

        out = a.registry.invoke(call("Echo", el("temp", "1")))
        assert out[0].label == "temp"


class TestNetworkBookkeeping:
    def build(self, registry, schema_star, schema_star2):
        alice = AXMLPeer("alice", schema_star)
        for service in registry.services.values():
            alice.registry.register(service)
        bob = AXMLPeer("bob", schema_star2)
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", schema_star2)
        alice.repository.store("front", newspaper.document())
        return network, alice, bob

    def test_store_as_renames(self, registry, schema_star, schema_star2):
        network, _alice, bob = self.build(registry, schema_star, schema_star2)
        receipt = network.send("alice", "bob", "front", store_as="inbox-1")
        assert receipt.accepted
        assert "inbox-1" in bob.repository
        assert "front" not in bob.repository

    def test_receipts_accumulate(self, registry, schema_star, schema_star2):
        network, alice, _bob = self.build(registry, schema_star, schema_star2)
        network.send("alice", "bob", "front")
        alice.repository.store("front", newspaper.document())
        network.send("alice", "bob", "front")
        assert len(network.receipts) == 2
        assert all(r.sender == "alice" for r in network.receipts)

    def test_agreements_are_directional(self, registry, schema_star,
                                        schema_star2):
        from repro.errors import SchemaError

        network, _alice, bob = self.build(registry, schema_star, schema_star2)
        bob.repository.store("reply", newspaper.materialized_document())
        with pytest.raises(SchemaError):
            network.send("bob", "alice", "reply")  # no reverse agreement

    def test_unknown_document_raises(self, registry, schema_star, schema_star2):
        from repro.errors import DocumentError

        network, _alice, _bob = self.build(registry, schema_star, schema_star2)
        with pytest.raises(DocumentError):
            network.send("alice", "bob", "missing-doc")
