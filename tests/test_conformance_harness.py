"""Unit tests for the conformance subsystem itself.

The harness guards the whole stack, so it gets its own direct coverage:
the reference interpreter's verdicts and exactness flags, fuzzer
determinism, the differential matrix contract (including the mutant
self-test member), corpus serialization round-trips and shrinking.
"""

from __future__ import annotations

import pytest

from repro.conformance.corpus import (
    document_entry,
    document_scenario_from_entry,
    regex_source,
    schema_from_dict,
    schema_to_dict,
    shrink_document_scenario,
    shrink_word_scenario,
    word_entry,
    word_scenario_from_entry,
)
from repro.conformance.differential import (
    DEFAULT_MATRIX,
    SELF_TEST_MATRIX,
    run_config,
    run_document_scenario,
    run_seed,
    run_word_scenario,
)
from repro.conformance.fuzzer import (
    WordScenario,
    fuzz_document_scenario,
    fuzz_word_scenario,
    per_call_invoker,
)
from repro.conformance.reference import (
    output_language_bound,
    reference_can_rewrite,
    reference_possible,
    reference_safe,
)
from repro.regex.parser import parse_regex
from repro.workloads import newspaper


def _scenario(word, outputs, target, k=1):
    return (
        tuple(word.split(".")) if word else (),
        {name: parse_regex(src) for name, src in outputs.items()},
        parse_regex(target),
        k,
    )


class TestReferenceInterpreter:
    def test_paper_running_example_star2_is_safe(self):
        word, outputs, target, k = _scenario(
            "title.date.Get_Temp.TimeOut",
            {"Get_Temp": "temp", "TimeOut": "(exhibit | performance)*"},
            "title.date.temp.(TimeOut | exhibit*)",
        )
        verdict = reference_safe(word, outputs, target, k)
        assert verdict.exists
        # The winning strategy keeps TimeOut, so its starred output type
        # is never enumerated and the verdict stays exact.
        assert verdict.exact

    def test_paper_running_example_star3_possible_not_safe(self):
        word, outputs, target, k = _scenario(
            "title.date.Get_Temp.TimeOut",
            {"Get_Temp": "temp", "TimeOut": "(exhibit | performance)*"},
            "title.date.temp.exhibit*",
        )
        assert not reference_safe(word, outputs, target, k).exists
        assert reference_possible(word, outputs, target, k).exists

    def test_knowledge_flows_left_to_right(self):
        # f's output is known before g's keep/invoke decision: invoke g
        # after seeing "a", keep it after seeing "b" — adaptively safe.
        early = _scenario(
            "f.g", {"f": "(a | b)", "g": "c"}, "(a.c | b.g)"
        )
        assert reference_safe(*early).exists
        # Mirror image: f's keep/invoke decision comes *before* g
        # reveals anything — not safe, though luck can still strike.
        late = _scenario(
            "f.g", {"f": "c", "g": "(a | b)"}, "(c.a | f.b)"
        )
        assert not reference_safe(*late).exists
        assert reference_possible(*late).exists

    def test_depth_bound_definition_7(self):
        nested = ("f",), {"f": parse_regex("g"),
                          "g": parse_regex("a")}, parse_regex("a")
        assert not reference_safe(*nested, 1).exists
        assert reference_safe(*nested, 2).exists

    def test_empty_output_language_wins_vacuously(self):
        word, outputs, target, k = _scenario(
            "f", {"f": "empty"}, "b?"
        )
        # Invoking f admits no runs at all, so safety holds vacuously —
        # same convention as the marking game.
        assert reference_safe(word, outputs, target, k).exists

    def test_exactness_flag_on_star_free_outputs(self):
        word, outputs, target, k = _scenario(
            "f", {"f": "(a | b.c)"}, "(a | b.c)"
        )
        verdict = reference_safe(word, outputs, target, k)
        assert verdict.exists and verdict.exact

    def test_invocable_filter_freezes_calls(self):
        word, outputs, target, k = _scenario("f", {"f": "a"}, "a")
        assert reference_safe(word, outputs, target, k).exists
        frozen = reference_safe(
            word, outputs, target, k, invocable=lambda name: False
        )
        assert not frozen.exists

    def test_output_language_bound(self):
        assert output_language_bound(parse_regex("a.b?")) == 2
        assert output_language_bound(parse_regex("(a | b.c.d)")) == 3
        assert output_language_bound(parse_regex("a*")) is None
        assert output_language_bound(parse_regex("a{1,3}")) == 3
        assert output_language_bound(parse_regex("eps")) == 0

    def test_document_level_against_engine(self):
        from repro.rewriting.engine import RewriteEngine

        doc = newspaper.document()
        for schema, expected in (
            (newspaper.schema_star2(), True),
            (newspaper.schema_star3(), False),
        ):
            verdict = reference_can_rewrite(doc, schema, k=1, mode="safe")
            engine = RewriteEngine(schema, k=1, mode="safe")
            assert engine.can_rewrite(doc) is verdict.exists
            assert verdict.exists is expected


class TestFuzzer:
    def test_word_scenarios_are_deterministic(self):
        assert fuzz_word_scenario(7) == fuzz_word_scenario(7)
        assert fuzz_word_scenario(7) != fuzz_word_scenario(8)

    def test_document_scenarios_are_deterministic(self):
        first, second = fuzz_document_scenario(7), fuzz_document_scenario(7)
        assert first.document.to_xml() == second.document.to_xml()
        assert schema_to_dict(first.sender_schema) == schema_to_dict(
            second.sender_schema
        )
        assert (first.k, first.mode, first.flaky_period) == (
            second.k, second.mode, second.flaky_period
        )

    def test_word_outputs_are_star_free(self):
        for seed in range(50):
            scenario = fuzz_word_scenario(seed)
            for expr in scenario.output_types.values():
                assert output_language_bound(expr) is not None, seed

    def test_per_call_invoker_is_order_independent(self):
        scenario = fuzz_document_scenario(11)
        invoker = per_call_invoker(scenario.sender_schema, 42)
        calls = [fc for _p, fc in scenario.document.function_nodes()]
        if not calls:
            pytest.skip("seed 11 generated no embedded calls")
        forward = [invoker(fc) for fc in calls]
        backward = [invoker(fc) for fc in reversed(calls)]
        assert forward == list(reversed(backward))


class TestDifferentialRunner:
    def test_matrix_has_expected_members(self):
        assert [config.name for config in DEFAULT_MATRIX] == [
            "baseline", "workers-4", "eager-game", "traced", "resilient",
            "shared-cache", "bitset-core", "streamed",
        ]
        assert SELF_TEST_MATRIX[-1].name == "mutant"

    def test_mutant_is_the_only_divergence(self):
        scenario = fuzz_document_scenario(1)
        found = run_document_scenario(scenario, SELF_TEST_MATRIX)
        assert found and all(f.config == "mutant" for f in found)
        assert all(f.aspect == "xml" for f in found)

    def test_flaky_resilient_config_matches_baseline(self):
        # Find a scenario with a fault schedule and embedded calls: the
        # resilient member must absorb the injected faults and still be
        # byte-identical to the plain baseline.
        for seed in range(100):
            scenario = fuzz_document_scenario(seed)
            if scenario.flaky_period and any(
                True for _ in scenario.document.function_nodes()
            ):
                assert run_document_scenario(scenario) == []
                baseline = run_config(scenario, DEFAULT_MATRIX[0])
                resilient = run_config(scenario, DEFAULT_MATRIX[4])
                assert resilient.xml == baseline.xml
                return
        pytest.fail("no flaky scenario in the first 100 seeds")

    def test_word_self_check_flags_inverted_reference(self):
        scenario = fuzz_word_scenario(2)
        found, exact = run_word_scenario(scenario, invert_reference=True)
        assert exact and found

    def test_run_seed_accumulates(self):
        report = run_seed(0)
        report = run_seed(1, report=report)
        assert report.scenarios == 4
        assert report.word_scenarios == report.document_scenarios == 2
        assert report.ok


class TestCorpusSerialization:
    def test_regex_source_round_trips(self):
        for source in (
            "a", "data", "eps", "empty", "a.b?", "(a | b)*",
            "(a.b | c){2,4}", "a+", "(a | eps).b",
        ):
            expr = parse_regex(source)
            assert parse_regex(regex_source(expr)) == expr, source

    def test_schema_round_trips(self):
        schema = newspaper.schema_star2()
        data = schema_to_dict(schema)
        back = schema_from_dict(data)
        assert schema_to_dict(back) == data

    def test_word_entry_round_trips(self):
        scenario = fuzz_word_scenario(5)
        entry = word_entry(scenario, note="n")
        back = word_scenario_from_entry(entry)
        assert back == scenario
        assert word_entry(back, note="n") == entry

    def test_document_entry_round_trips(self):
        scenario = fuzz_document_scenario(5)
        entry = document_entry(scenario, note="n")
        back = document_scenario_from_entry(entry)
        assert document_entry(back, note="n") == entry
        assert back.document.to_xml() == scenario.document.to_xml()


class TestShrinking:
    def test_word_shrinking_reaches_a_small_core(self):
        scenario = WordScenario(
            seed=0, k=2,
            word=("a", "b", "q1", "c", "a"),
            output_types={"q1": parse_regex("(a | b.c)")},
            target=parse_regex("a.b.c"),
        )

        def fails(candidate):
            return "q1" in candidate.word

        small = shrink_word_scenario(scenario, fails)
        assert fails(small)
        assert small.word == ("q1",)
        assert small.k == 1

    def test_document_shrinking_prunes_subtrees(self):
        scenario = fuzz_document_scenario(9)

        def fails(candidate):
            return candidate.document.size() >= 1

        small = shrink_document_scenario(scenario, fails)
        assert small.document.size() <= 2
        assert small.flaky_period in (0, scenario.flaky_period)

    def test_shrinking_never_returns_a_passing_scenario(self):
        scenario = fuzz_word_scenario(3)

        def fails(candidate):
            return len(candidate.word) >= 2

        small = shrink_word_scenario(scenario, fails)
        assert fails(small)
        assert len(small.word) == 2
