"""Unit tests for the seeded instance generator."""

import math
import random

import pytest

from repro.automata.symbols import DATA
from repro.doc import Document
from repro.errors import SchemaError
from repro.regex.parser import parse_regex
from repro.schema import InstanceGenerator, SchemaBuilder, is_instance
from repro.schema.generator import cheapest_word, min_instance_sizes, min_word_cost


class TestMinWordCost:
    def test_atoms_and_seq(self):
        cost = {"a": 2.0, "b": 3.0}
        assert min_word_cost(parse_regex("a.b"), cost) == 5.0

    def test_alt_takes_minimum(self):
        cost = {"a": 2.0, "b": 3.0}
        assert min_word_cost(parse_regex("a | b"), cost) == 2.0

    def test_star_is_free(self):
        assert min_word_cost(parse_regex("a*"), {"a": 99.0}) == 0.0

    def test_repeat_multiplies_low(self):
        assert min_word_cost(parse_regex("a{3,7}"), {"a": 2.0}) == 6.0

    def test_empty_is_infinite(self):
        assert min_word_cost(parse_regex("empty"), {}) == math.inf

    def test_cheapest_word_achieves_cost(self):
        cost = {"a": 5.0, "b": 1.0}
        expr = parse_regex("(a | b).(a* | b{2,4})")
        word = cheapest_word(expr, cost)
        assert sum(cost[s] for s in word) == min_word_cost(expr, cost)


class TestMinInstanceSizes:
    def test_flat_schema(self):
        schema = (
            SchemaBuilder()
            .element("leaf", "data")
            .element("root", "leaf.leaf")
            .build()
        )
        sizes = min_instance_sizes(schema)
        assert sizes["leaf"] == 2.0  # element + data
        assert sizes["root"] == 5.0

    def test_recursive_label_without_base_case_is_infinite(self):
        schema = SchemaBuilder().element("a", "a").build()
        assert min_instance_sizes(schema)["a"] == math.inf

    def test_recursive_label_with_base_case_is_finite(self):
        schema = SchemaBuilder().element("a", "a | data").build()
        assert min_instance_sizes(schema)["a"] == 2.0

    def test_function_cost_counts_parameters(self):
        schema = (
            SchemaBuilder()
            .element("city", "data")
            .element("temp", "data")
            .function("Get_Temp", "city", "temp")
            .build()
        )
        sizes = min_instance_sizes(schema)
        assert sizes["Get_Temp"] == 3.0  # call + city + data


class TestGeneration:
    def test_generated_documents_validate(self, schema_star):
        generator = InstanceGenerator(schema_star, random.Random(11))
        for _ in range(20):
            document = generator.document()
            assert is_instance(document, schema_star), document.pretty()

    def test_generation_is_deterministic_per_seed(self, schema_star):
        a = InstanceGenerator(schema_star, random.Random(5)).document()
        b = InstanceGenerator(schema_star, random.Random(5)).document()
        assert a == b

    def test_different_seeds_differ_eventually(self, schema_star):
        a = [InstanceGenerator(schema_star, random.Random(1)).document()
             for _ in range(1)]
        b = [InstanceGenerator(schema_star, random.Random(2)).document()
             for _ in range(1)]
        # Not a hard guarantee per sample, but these seeds do differ.
        assert a != b

    def test_depth_budget_terminates_recursive_schema(self):
        schema = (
            SchemaBuilder()
            .element("tree", "(tree.tree) | data")
            .root("tree")
            .build()
        )
        generator = InstanceGenerator(schema, random.Random(3), max_depth=4)
        for _ in range(10):
            document = generator.document()
            assert is_instance(document, schema)

    def test_infinite_schema_rejected(self):
        schema = SchemaBuilder().element("a", "a").root("a").build()
        generator = InstanceGenerator(schema, random.Random(0))
        with pytest.raises(SchemaError):
            generator.document()

    def test_missing_root_rejected(self, schema_star):
        generator = InstanceGenerator(
            SchemaBuilder().element("a", "data").build(), random.Random(0)
        )
        with pytest.raises(SchemaError):
            generator.document()

    def test_output_forest_matches_output_type(self, schema_star):
        from repro.schema.validate import is_output_instance

        generator = InstanceGenerator(schema_star, random.Random(9))
        for _ in range(20):
            forest = generator.output_forest("TimeOut")
            assert is_output_instance(forest, "TimeOut", schema_star)

    def test_function_node_parameters_conform(self, schema_star):
        from repro.doc.nodes import symbol_of
        from repro.schema.validate import word_matches

        generator = InstanceGenerator(schema_star, random.Random(13))
        node = generator.function_node("Get_Temp")
        word = tuple(symbol_of(p) for p in node.params)
        assert word_matches(word, schema_star.input_type("Get_Temp"), schema_star)

    def test_pattern_positions_filled_with_admitted_functions(self):
        schema = (
            SchemaBuilder()
            .element("city", "data")
            .element("temp", "data")
            .element("page", "Forecast")
            .function("Get_Temp", "city", "temp")
            .pattern("Forecast", "city", "temp")
            .root("page")
            .build()
        )
        generator = InstanceGenerator(schema, random.Random(2))
        document = generator.document()
        from repro.doc.nodes import FunctionCall

        assert isinstance(document.root.children[0], FunctionCall)
        assert document.root.children[0].name == "Get_Temp"

    def test_pattern_with_no_admitted_function_fails(self):
        schema = (
            SchemaBuilder()
            .element("page", "Forecast")
            .element("city", "data")
            .element("temp", "data")
            .pattern("Forecast", "city", "temp", lambda _n: False)
            .root("page")
            .build()
        )
        generator = InstanceGenerator(schema, random.Random(2))
        with pytest.raises(SchemaError):
            generator.document()
