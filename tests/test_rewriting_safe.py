"""Unit tests for safe rewriting (Figure 3): analysis and execution."""

import pytest

from repro.doc import call, el, text
from repro.errors import NoSafeRewritingError, RewriteExecutionError
from repro.regex.parser import parse_regex
from repro.rewriting.plan import DEPENDS, INVOKE, KEEP
from repro.rewriting.safe import analyze_safe, execute_safe

WORD = ("title", "date", "Get_Temp", "TimeOut")
R2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
R3 = parse_regex("title.date.temp.exhibit*")
R1 = parse_regex("title.date.(Get_Temp | temp).(TimeOut | exhibit*)")


def children():
    return (
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris")),
        call("TimeOut", text("exhibits")),
    )


def good_invoker(fc):
    if fc.name == "Get_Temp":
        return (el("temp", "15"),)
    if fc.name == "TimeOut":
        return (el("exhibit", el("title", "P"), el("date", "d")),)
    raise AssertionError(fc.name)


class TestPaperExamples:
    def test_safe_into_star2(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        assert analysis.exists

    def test_decisions_match_figure_6(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        decisions = analysis.preview_decisions()
        assert [(d.function, d.action) for d in decisions] == [
            ("Get_Temp", INVOKE),
            ("TimeOut", KEEP),
        ]

    def test_not_safe_into_star3(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R3, k=1)
        assert not analysis.exists

    def test_already_instance_is_safe_with_zero_calls(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R1, k=1)
        assert analysis.exists
        decisions = analysis.preview_decisions()
        assert all(d.action == KEEP for d in decisions)

    def test_figure_6_marking_statistics(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        assert not analysis.is_marked(analysis.initial)
        assert analysis.stats.marked_nodes > 0  # the p6 region is bad


class TestExecution:
    def test_execution_invokes_exactly_the_plan(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        new_children, log = execute_safe(analysis, children(), good_invoker)
        assert [n.label if hasattr(n, "label") else n.name for n in new_children] == [
            "title", "date", "temp", "TimeOut",
        ]
        assert log.invoked == ["Get_Temp"]

    def test_execution_result_matches_target(self, newspaper_outputs):
        from repro.doc.nodes import symbol_of
        from repro.regex.ops import matches

        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        new_children, _log = execute_safe(analysis, children(), good_invoker)
        assert matches(R2, [symbol_of(n) for n in new_children])

    def test_unsafe_analysis_refuses_execution(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R3, k=1)
        with pytest.raises(NoSafeRewritingError):
            execute_safe(analysis, children(), good_invoker)

    def test_preview_refuses_when_unsafe(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R3, k=1)
        with pytest.raises(NoSafeRewritingError):
            analysis.preview_decisions()

    def test_contract_violating_service_detected(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)

        def lying_invoker(fc):
            if fc.name == "Get_Temp":
                return (el("performance"),)  # not a temp!
            return good_invoker(fc)

        with pytest.raises(RewriteExecutionError):
            execute_safe(analysis, children(), lying_invoker)

    def test_cost_accounting(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=1)
        _new, log = execute_safe(
            analysis, children(), good_invoker,
            cost_of=lambda name: 7.5 if name == "Get_Temp" else 1.0,
        )
        assert log.cost == 7.5


class TestEdgeCases:
    def test_empty_word_into_nullable_target(self):
        analysis = analyze_safe((), {}, parse_regex("a*"), k=1)
        assert analysis.exists
        new, log = execute_safe(analysis, (), good_invoker)
        assert new == () and not log.records

    def test_empty_word_into_non_nullable_target(self):
        analysis = analyze_safe((), {}, parse_regex("a"), k=1)
        assert not analysis.exists

    def test_plain_word_mismatch(self):
        analysis = analyze_safe(("a",), {}, parse_regex("b"), k=1)
        assert not analysis.exists

    def test_k_zero_disables_invocation(self, newspaper_outputs):
        analysis = analyze_safe(WORD, newspaper_outputs, R2, k=0)
        assert not analysis.exists  # Get_Temp must be invoked but cannot be

    def test_invoking_forced_even_when_kept_form_invalid(self):
        # f -> a, target = a: must invoke.
        analysis = analyze_safe(("f",), {"f": parse_regex("a")},
                                parse_regex("a"), k=1)
        assert analysis.exists
        new, log = execute_safe(analysis, (call("f"),), lambda fc: (el("a"),))
        assert log.invoked == ["f"]

    def test_output_type_with_choice_both_accepted(self):
        # f -> a|b, target (a|b): safe; whatever comes back is fine.
        analysis = analyze_safe(
            ("f",), {"f": parse_regex("a | b")}, parse_regex("a | b"), k=1
        )
        assert analysis.exists
        for symbol in ("a", "b"):
            new, _ = execute_safe(
                analysis, (call("f"),), lambda fc, s=symbol: (el(s),)
            )
            assert new[0].label == symbol

    def test_star_output_consumed(self):
        analysis = analyze_safe(
            ("f",), {"f": parse_regex("a*")}, parse_regex("a*"), k=1
        )
        assert analysis.exists
        new, _ = execute_safe(
            analysis, (call("f"),), lambda fc: (el("a"), el("a"), el("a"))
        )
        assert len(new) == 3

    def test_empty_output_forest(self):
        analysis = analyze_safe(
            ("f",), {"f": parse_regex("a*")}, parse_regex("a*"), k=1
        )
        new, log = execute_safe(analysis, (call("f"),), lambda fc: ())
        assert new == ()
        assert log.records[0].output_symbols == ()

    def test_nested_invocation_depth_2(self):
        outputs = {"f": parse_regex("g"), "g": parse_regex("a")}
        analysis = analyze_safe(("f",), outputs, parse_regex("a"), k=2)
        assert analysis.exists

        def invoker(fc):
            return (call("g"),) if fc.name == "f" else (el("a"),)

        new, log = execute_safe(analysis, (call("f"),), invoker)
        assert [n.label for n in new] == ["a"]
        assert log.invoked == ["f", "g"]
        assert [r.depth for r in log.records] == [1, 2]

    def test_nested_depth_insufficient(self):
        outputs = {"f": parse_regex("g"), "g": parse_regex("a")}
        analysis = analyze_safe(("f",), outputs, parse_regex("a"), k=1)
        assert not analysis.exists

    def test_depends_decision_reported(self):
        # After invoking f (output a|b), keeping or invoking g depends on
        # what f returned: target = (a.g) | (b.c) — after `a` keep g,
        # after `b` invoke g (g -> c).
        outputs = {"f": parse_regex("a | b"), "g": parse_regex("c")}
        target = parse_regex("(a.g) | (b.c)")
        analysis = analyze_safe(("f", "g"), outputs, target, k=1)
        assert analysis.exists
        decisions = analysis.preview_decisions()
        assert decisions[0].action == INVOKE
        assert decisions[1].action == DEPENDS

    def test_wildcard_target_accepts_anything(self):
        analysis = analyze_safe(
            ("x", "f"), {"f": parse_regex("a")}, parse_regex("any*"), k=1
        )
        assert analysis.exists
        decisions = analysis.preview_decisions()
        assert decisions[0].action == KEEP

    def test_adversarial_wildcard_output(self):
        # f may return ANY label; target demands exactly `a` — unsafe.
        analysis = analyze_safe(
            ("f",), {"f": parse_regex("any")}, parse_regex("a"), k=1
        )
        assert not analysis.exists
        # But target any accepts whatever comes: safe (keep or invoke).
        analysis2 = analyze_safe(
            ("f",), {"f": parse_regex("any")}, parse_regex("any"), k=1
        )
        assert analysis2.exists

    def test_function_letter_appears_multiple_times(self):
        outputs = {"f": parse_regex("a")}
        analysis = analyze_safe(("f", "f"), outputs, parse_regex("a.f"), k=1)
        assert analysis.exists
        decisions = analysis.preview_decisions()
        assert [d.action for d in decisions] == [INVOKE, KEEP]
