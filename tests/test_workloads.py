"""Unit tests for the benchmark workload generators."""

import random

import pytest

from repro.regex.ops import matches
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.schema import is_instance
from repro.workloads import newspaper
from repro.workloads.generators import (
    answer_size_problem,
    chain_problem,
    det_target_problem,
    nondet_target_problem,
    random_document,
    random_flat_schema,
    random_word_problem,
    wide_problem,
)


class TestNewspaperModule:
    def test_root_word_constant(self):
        from repro.doc.paths import child_word

        assert child_word(newspaper.document().root) == newspaper.ROOT_WORD

    def test_schemas_share_vocabulary(self):
        s1, s2, s3 = (
            newspaper.schema_star(),
            newspaper.schema_star2(),
            newspaper.schema_star3(),
        )
        assert s1.functions == s2.functions == s3.functions
        assert s1.root == s2.root == s3.root == "newspaper"

    def test_materialized_document_param(self):
        doc = newspaper.materialized_document("42")
        assert doc.root.children[2].children[0].value == "42"


class TestChainProblem:
    @pytest.mark.parametrize("length", [1, 2, 4])
    def test_safe_iff_k_at_least_length(self, length):
        problem = chain_problem(length)
        for k in range(length + 2):
            analysis = analyze_safe_lazy(
                problem.word, problem.output_types, problem.target, k=k
            )
            assert analysis.exists == (k >= length), (length, k)


class TestWideProblem:
    def test_safe_variant(self):
        problem = wide_problem(5, safe=True)
        assert analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        ).exists

    def test_unsafe_variant_still_possible(self):
        problem = wide_problem(5, safe=False)
        assert not analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        ).exists
        assert analyze_possible(
            problem.word, problem.output_types, problem.target
        ).exists

    def test_zero_width(self):
        problem = wide_problem(0)
        assert analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        ).exists


class TestTargetFamilies:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_nondet_family_words_accepted(self, n):
        problem = nondet_target_problem(n)
        assert matches(problem.target, list(problem.word))
        assert analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        ).exists

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_det_family_words_accepted(self, n):
        problem = det_target_problem(n)
        assert matches(problem.target, list(problem.word))
        assert analyze_safe_lazy(
            problem.word, problem.output_types, problem.target
        ).exists

    def test_nondet_complement_blows_up(self):
        from repro.regex.determinism import is_one_unambiguous

        assert not is_one_unambiguous(nondet_target_problem(4).target)
        assert is_one_unambiguous(det_target_problem(4).target)
        big = analyze_safe_lazy(*_unpack(nondet_target_problem(6)))
        small = analyze_safe_lazy(*_unpack(det_target_problem(6)))
        assert big.stats.complement_states > small.stats.complement_states


class TestAnswerSizeProblem:
    def test_safe_and_materializable(self):
        problem = answer_size_problem(answer_size=2, depth=2)
        analysis = analyze_safe_lazy(
            problem.word, problem.output_types, problem.target, k=2
        )
        assert analysis.exists


class TestRandomGenerators:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_word_problem_is_possible(self, seed):
        problem = random_word_problem(random.Random(seed))
        analysis = analyze_possible(
            problem.word, problem.output_types, problem.target
        )
        assert analysis.exists

    @pytest.mark.parametrize("seed", range(5))
    def test_random_flat_schema_generates_instances(self, seed):
        from repro.schema import InstanceGenerator

        schema = random_flat_schema(random.Random(seed))
        generator = InstanceGenerator(schema, random.Random(seed))
        document = generator.document()
        assert is_instance(document, schema)

    def test_random_document_conforms(self):
        document = random_document(seed=3)
        assert is_instance(document, newspaper.schema_star())


def _unpack(problem):
    return problem.word, problem.output_types, problem.target
