"""Unit tests for cost-optimal safe strategies (Figure 3, step 23)."""

import math

import pytest

from repro.doc import call, el
from repro.errors import NoSafeRewritingError
from repro.regex.parser import parse_regex
from repro.rewriting.optimal import (
    execute_safe_optimal,
    strategy_values,
)
from repro.rewriting.safe import analyze_safe, execute_safe


def greedy_suboptimal_problem():
    """w = f.g.h, R = (f.b.c)|(a.g.h): greedy pays 2, optimal pays 1."""
    word = ("f", "g", "h")
    outputs = {
        "f": parse_regex("a"),
        "g": parse_regex("b"),
        "h": parse_regex("c"),
    }
    target = parse_regex("(f.b.c) | (a.g.h)")
    return word, outputs, target


def invoker(fc):
    return ({"f": el("a"), "g": el("b"), "h": el("c")}[fc.name],)


class TestStrategyValues:
    def test_values_on_the_witness(self):
        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        assert analysis.exists
        values = strategy_values(analysis)
        assert values[analysis.initial] == 1.0  # invoke f only

    def test_zero_cost_when_already_conformant(self):
        analysis = analyze_safe(("a", "b"), {}, parse_regex("a.b"), k=1)
        values = strategy_values(analysis)
        assert values[analysis.initial] == 0.0

    def test_forced_invocations_counted(self):
        analysis = analyze_safe(
            ("f", "f"), {"f": parse_regex("a")}, parse_regex("a.a"), k=1
        )
        values = strategy_values(analysis)
        assert values[analysis.initial] == 2.0

    def test_custom_costs(self):
        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        # Make f expensive: invoking g and h (1 each) becomes optimal.
        values = strategy_values(
            analysis, cost_of=lambda name: 10.0 if name == "f" else 1.0
        )
        assert values[analysis.initial] == 2.0

    def test_marked_nodes_are_infinite(self):
        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        values = strategy_values(analysis)
        for node in analysis.marked:
            assert values.get(node, math.inf) == math.inf


class TestOptimalExecution:
    def test_beats_greedy_on_the_witness(self):
        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        children = (call("f"), call("g"), call("h"))

        _greedy_out, greedy_log = execute_safe(analysis, children, invoker)
        _optimal_out, optimal_log = execute_safe_optimal(
            analysis, children, invoker
        )
        assert len(greedy_log) == 2  # keeps f, then must invoke g and h
        assert len(optimal_log) == 1  # invokes f, keeps g and h
        assert optimal_log.invoked == ["f"]

    def test_optimal_result_conforms(self):
        from repro.doc.nodes import symbol_of
        from repro.regex.ops import matches

        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        children = (call("f"), call("g"), call("h"))
        new_children, _log = execute_safe_optimal(analysis, children, invoker)
        assert matches(target, [symbol_of(n) for n in new_children])

    def test_respects_cost_model(self):
        word, outputs, target = greedy_suboptimal_problem()
        analysis = analyze_safe(word, outputs, target, k=1)
        children = (call("f"), call("g"), call("h"))
        _out, log = execute_safe_optimal(
            analysis, children, invoker,
            cost_of=lambda name: 10.0 if name == "f" else 1.0,
        )
        assert sorted(log.invoked) == ["g", "h"]

    def test_agrees_with_greedy_on_paper_example(self, newspaper_outputs):
        word = ("title", "date", "Get_Temp", "TimeOut")
        target = parse_regex("title.date.temp.(TimeOut | exhibit*)")
        analysis = analyze_safe(word, newspaper_outputs, target, k=1)
        children = (
            el("title", "t"), el("date", "d"),
            call("Get_Temp", el("city", "P")), call("TimeOut", el("city", "x")),
        )

        def news_invoker(fc):
            if fc.name == "Get_Temp":
                return (el("temp", "15"),)
            return (el("exhibit", el("title", "T"), el("date", "d")),)

        _out, log = execute_safe_optimal(analysis, children, news_invoker)
        assert log.invoked == ["Get_Temp"]

    def test_refuses_unsafe(self, newspaper_outputs):
        word = ("title", "date", "Get_Temp", "TimeOut")
        target = parse_regex("title.date.temp.exhibit*")
        analysis = analyze_safe(word, newspaper_outputs, target, k=1)
        with pytest.raises(NoSafeRewritingError):
            execute_safe_optimal(analysis, (), invoker)

    def test_adversarial_outputs_stay_within_bound(self):
        """The value is a worst-case bound: any conforming adversary pays
        at most values[initial]."""
        word = ("f", "g")
        outputs = {"f": parse_regex("a | b"), "g": parse_regex("c")}
        target = parse_regex("(a.c) | (b.g)")
        analysis = analyze_safe(word, outputs, target, k=1)
        values = strategy_values(analysis)
        bound = values[analysis.initial]

        for f_answer in ("a", "b"):
            def adversary(fc, f_answer=f_answer):
                return (el(f_answer),) if fc.name == "f" else (el("c"),)

            _out, log = execute_safe_optimal(
                analysis, (call("f"), call("g")), adversary
            )
            assert log.cost <= bound
