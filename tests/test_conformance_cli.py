"""The ``repro fuzz`` subcommand: exit codes, replay, self-test."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.conformance.corpus import (
    load_entry,
    save_entry,
    word_entry,
)
from repro.conformance.fuzzer import fuzz_word_scenario


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--seeds", "6"]) == 0
        out = capsys.readouterr().out
        assert "12 scenario(s)" in out
        assert "0 disagreement(s)" in out

    def test_kind_word_only(self, capsys):
        assert main(["fuzz", "--seeds", "4", "--kind", "word"]) == 0
        out = capsys.readouterr().out
        assert "4 word" in out
        assert "0 document" in out

    def test_kind_document_only(self, capsys):
        assert main(["fuzz", "--seeds", "3", "--kind", "document"]) == 0
        out = capsys.readouterr().out
        assert "0 word" in out
        assert "3 document" in out

    def test_start_offset_changes_scenarios(self, capsys):
        assert main([
            "fuzz", "--seeds", "2", "--start", "100", "--kind", "word",
        ]) == 0
        assert "2 word" in capsys.readouterr().out


class TestSelfTest:
    def test_self_test_detects_injected_divergence(self, capsys):
        # --self-test corrupts one configuration and inverts the
        # reference verdicts; the harness must notice (exit code 1).
        code = main(["fuzz", "--seeds", "2", "--self-test"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DETECTED" in out
        assert "mutant" in out

    def test_self_test_writes_no_corpus_entries(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        main([
            "fuzz", "--seeds", "2", "--self-test",
            "--corpus-dir", str(corpus_dir),
        ])
        capsys.readouterr()
        assert not corpus_dir.exists()


class TestReplay:
    def test_replay_shipped_corpus(self, capsys):
        corpus_dir = os.path.join(
            os.path.dirname(__file__), "corpus"
        )
        assert main(["fuzz", "--replay", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_replay_single_file(self, tmp_path, capsys):
        path = save_entry(
            str(tmp_path), word_entry(fuzz_word_scenario(3), note="t")
        )
        assert main(["fuzz", "--replay", path]) == 0
        assert "1 corpus entry, 0 failure(s)" in capsys.readouterr().out

    def test_replay_malformed_entry_exits_two(self, tmp_path, capsys):
        path = tmp_path / "word-00000-broken.json"
        entry = word_entry(fuzz_word_scenario(1), note="t")
        entry["kind"] = "bogus"
        path.write_text(json.dumps(entry))
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_replay_missing_file_exits_two(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent/entry.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestFreezeOnFailure:
    def test_disagreement_is_shrunk_and_frozen(self, tmp_path, capsys,
                                               monkeypatch):
        # Force a disagreement without self-test mode by making one
        # matrix member lie, then check a corpus entry appears.
        from repro.conformance import differential

        matrix = differential.SELF_TEST_MATRIX
        monkeypatch.setattr(differential, "DEFAULT_MATRIX", matrix)
        corpus_dir = tmp_path / "frozen"
        code = main([
            "fuzz", "--seeds", "1", "--kind", "document",
            "--corpus-dir", str(corpus_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "DISAGREEMENT" in out
        entries = list(corpus_dir.glob("*.json"))
        assert len(entries) == 1
        frozen = load_entry(str(entries[0]))
        assert frozen["kind"] == "document"
        assert "mutant" in frozen["note"]

    def test_max_failures_stops_early(self, tmp_path, capsys, monkeypatch):
        from repro.conformance import differential

        monkeypatch.setattr(
            differential, "DEFAULT_MATRIX", differential.SELF_TEST_MATRIX
        )
        code = main([
            "fuzz", "--seeds", "10", "--kind", "document",
            "--max-failures", "2",
            "--corpus-dir", str(tmp_path / "frozen"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "stopping after 2 failing seed(s)" in captured.err
        assert "2 scenario(s)" in captured.out
