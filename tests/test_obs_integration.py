"""Integration tests: observability across the whole exchange stack.

A traced peer-to-peer exchange must produce one coherent span tree —
``exchange → enforce → document → node → analysis → ...`` with
``invoke`` spans under the nodes that materialized calls — plus the
pipeline metrics, with zero behavioural difference from an untraced run.
"""

import json

import pytest

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    ResiliencePolicy,
    Service,
    constant_responder,
    el,
    flaky_responder,
    parse_regex,
)
from repro.axml.network import TransferReceipt
from repro.cli import main
from repro.obs import MetricsRegistry, Tracer, observing, spans_from_jsonl
from repro.services.resilience import FaultReport, SimulatedClock
from repro.workloads import newspaper
from repro.xschema.writer import schema_to_xschema

WIDTH = 4


def build_network(resilience=None, fail_every=0):
    star = newspaper.wide_schema_star(WIDTH)
    star2 = newspaper.wide_schema_star2(WIDTH)
    # These tests pin the *sequential* span tree (shape and byte-exact
    # exports), so the sender opts out of any REPRO_WORKERS prefetching.
    alice = AXMLPeer("alice", star, resilience=resilience, parallelism=1)
    forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
    responder = constant_responder((el("temp", "15"),))
    if fail_every:
        responder = flaky_responder(responder, fail_every)
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        responder,
    )
    alice.registry.register(forecast)
    bob = AXMLPeer("bob", star2)
    network = PeerNetwork()
    network.add_peer(alice)
    network.add_peer(bob)
    network.agree("alice", "bob", star2)
    alice.repository.store("front", newspaper.wide_document(WIDTH))
    return network, bob


def span_tree(tracer):
    spans = sorted(tracer.finished(), key=lambda span: span.span_id)
    by_id = {span.span_id: span for span in spans}
    return spans, by_id


class TestExchangeTrace:
    def test_full_span_hierarchy(self):
        network, _bob = build_network()
        tracer = Tracer(clock=SimulatedClock())
        with observing(tracer):
            receipt = network.send("alice", "bob", "front")
        assert receipt.accepted

        spans, by_id = span_tree(tracer)
        names = [span.name for span in spans]
        for expected in (
            "exchange", "enforce", "document", "node", "analysis",
            "product", "game", "invoke", "transfer.serialize",
            "transfer.validate",
        ):
            assert expected in names, "missing %r in %s" % (expected, names)

        (exchange,) = [span for span in spans if span.name == "exchange"]
        assert exchange.parent_id is None
        assert exchange.attributes["sender"] == "alice"
        assert exchange.attributes["accepted"] is True
        assert exchange.attributes["calls"] == WIDTH
        assert exchange.attributes["bytes"] == receipt.bytes_on_wire

        # enforce/document under the exchange; serialize/validate too.
        for name in ("enforce", "transfer.serialize", "transfer.validate"):
            (span,) = [s for s in spans if s.name == name]
            assert by_id[span.parent_id].name == "exchange"
        (document,) = [span for span in spans if span.name == "document"]
        assert by_id[document.parent_id].name == "enforce"

        # every node hangs off the document; invokes hang off nodes.
        nodes = [span for span in spans if span.name == "node"]
        assert nodes and all(
            by_id[span.parent_id].name == "document" for span in nodes
        )
        invokes = [span for span in spans if span.name == "invoke"]
        assert len(invokes) == WIDTH
        for span in invokes:
            assert by_id[span.parent_id].name == "node"
            assert span.attributes["function"] == "Get_Temp"
            assert span.attributes["outcome"] == "ok"
            # the SOAP round-trip annotated its byte counts
            assert span.attributes["request_bytes"] > 0
            assert span.attributes["response_bytes"] > 0

        # analyses sit under nodes, solver internals under analyses.
        analyses = [span for span in spans if span.name == "analysis"]
        assert analyses and all(
            by_id[span.parent_id].name == "node" for span in analyses
        )
        for name in ("product", "game"):
            inner = [span for span in spans if span.name == name]
            assert inner and all(
                by_id[span.parent_id].name == "analysis" for span in inner
            )

    def test_trace_is_deterministic_under_simulated_clock(self):
        import io

        def run():
            network, _bob = build_network(resilience=ResiliencePolicy())
            tracer = Tracer(clock=SimulatedClock())
            with observing(tracer):
                network.send("alice", "bob", "front")
            out = io.StringIO()
            tracer.export_jsonl(out)
            return out.getvalue()

        assert run() == run()

    def test_traced_run_matches_untraced_run(self):
        network, bob = build_network()
        tracer = Tracer(clock=SimulatedClock())
        with observing(tracer):
            traced = network.send("alice", "bob", "front")
        plain_network, plain_bob = build_network()
        plain = plain_network.send("alice", "bob", "front")
        assert traced.accepted == plain.accepted
        assert traced.calls_materialized == plain.calls_materialized
        assert traced.bytes_on_wire == plain.bytes_on_wire
        assert (
            bob.repository.get("front").to_xml()
            == plain_bob.repository.get("front").to_xml()
        )

    def test_fault_events_and_retry_spans(self):
        network, _bob = build_network(
            resilience=ResiliencePolicy(), fail_every=3
        )
        tracer = Tracer(clock=SimulatedClock())
        with observing(tracer) as (_t, registry):
            receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        assert receipt.retries > 0

        invokes = [s for s in tracer.finished() if s.name == "invoke"]
        events = [e.name for span in invokes for e in span.events]
        assert "fault" in events and "retry" in events and "attempt" in events
        retried = [
            span for span in invokes
            if any(e.name == "retry" for e in span.events)
        ]
        assert len(retried) == receipt.retries
        assert (
            registry.counter("repro_invocation_retries_total").total
            == receipt.retries
        )
        assert (
            registry.counter("repro_invocation_faults_total").value(
                kind="transient"
            )
            == receipt.faults
        )


class TestExchangeMetrics:
    def test_pipeline_metrics_populated(self):
        network, _bob = build_network(resilience=ResiliencePolicy())
        registry = MetricsRegistry()
        with observing(Tracer(clock=SimulatedClock()), registry):
            receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        assert registry.counter("repro_invocations_total").value(
            function="Get_Temp"
        ) == WIDTH
        assert registry.counter("repro_invocation_attempts_total").value(
            function="Get_Temp"
        ) == WIDTH
        assert registry.counter("repro_transfers_total").value(
            accepted="true"
        ) == 1
        assert registry.counter("repro_transfer_bytes_total").total == (
            receipt.bytes_on_wire
        )
        assert registry.counter("repro_documents_rewritten_total").total == 1
        assert registry.counter("repro_soap_bytes_total").value(
            direction="out", kind="request"
        ) > 0
        assert registry.counter("repro_soap_bytes_total").value(
            direction="in", kind="response"
        ) > 0
        assert registry.histogram("repro_product_nodes").count(kind="safe") > 0
        assert registry.histogram("repro_span_seconds").count(name="invoke") == WIDTH
        text = registry.to_prometheus()
        assert 'repro_invocations_total{function="Get_Temp"} %d' % WIDTH in text


class TestReceiptDerivation:
    def test_receipt_mirrors_fault_report(self):
        report = FaultReport(
            retries=4, transient_faults=3, timeouts=2, breaker_opens=1
        )
        report.dead_functions.append("Get_Temp")
        receipt = TransferReceipt(
            "a", "b", "doc", 1, 10, True,
            retries=99, faults=99, breaker_opens=99,  # stale, must lose
            fault_report=report,
        )
        assert receipt.retries == 4
        assert receipt.faults == 5
        assert receipt.breaker_opens == 1
        assert receipt.degraded_functions == ("Get_Temp",)

    def test_receipt_fallbacks_without_report(self):
        receipt = TransferReceipt(
            "a", "b", "doc", 1, 10, True,
            retries=2, faults=1, degraded_functions=("f",),
        )
        assert receipt.retries == 2
        assert receipt.faults == 1
        assert receipt.breaker_opens == 0
        assert receipt.degraded_functions == ("f",)

    def test_live_receipt_cannot_disagree_with_its_report(self):
        network, _bob = build_network(
            resilience=ResiliencePolicy(), fail_every=3
        )
        receipt = network.send("alice", "bob", "front")
        assert receipt.fault_report is not None
        assert receipt.retries == receipt.fault_report.retries
        assert receipt.faults == receipt.fault_report.faults
        assert receipt.breaker_opens == receipt.fault_report.breaker_opens


class TestInvocationElapsed:
    def test_records_carry_elapsed_time(self):
        network, _bob = build_network(resilience=ResiliencePolicy())
        tracer = Tracer(clock=SimulatedClock())
        with observing(tracer):
            network.send("alice", "bob", "front")
        outcome_logs = [
            receipt for receipt in network.receipts
        ]
        assert outcome_logs
        # The enforcement log is easiest to reach via a direct rewrite:
        from repro.rewriting.engine import RewriteEngine

        star = newspaper.wide_schema_star(WIDTH)
        star2 = newspaper.wide_schema_star2(WIDTH)
        engine = RewriteEngine(target_schema=star2, sender_schema=star)
        peer = AXMLPeer("carol", star, resilience=ResiliencePolicy())
        forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
        forecast.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            constant_responder((el("temp", "15"),)),
        )
        peer.registry.register(forecast)
        invoker = peer.registry.make_invoker(
            resilience=ResiliencePolicy(), clock=SimulatedClock()
        )
        result = engine.rewrite(newspaper.wide_document(WIDTH), invoker)
        assert len(result.log) == WIDTH
        for record in result.log.records:
            assert record.elapsed is not None
            assert record.elapsed >= 0.0
        assert result.log.total_elapsed == pytest.approx(
            sum(record.elapsed for record in result.log.records)
        )
        assert "in " in str(result.log.records[0])


class TestCliObservability:
    @pytest.fixture
    def files(self, tmp_path):
        doc_path = tmp_path / "doc.xml"
        doc_path.write_text(newspaper.document().to_xml())
        star = tmp_path / "star.xsd"
        star.write_text(schema_to_xschema(newspaper.schema_star()))
        star2 = tmp_path / "star2.xsd"
        star2.write_text(schema_to_xschema(newspaper.schema_star2()))
        return {
            "doc": str(doc_path), "star": str(star), "star2": str(star2),
            "dir": tmp_path,
        }

    def test_rewrite_trace_and_metrics_files(self, files, capsys):
        trace = files["dir"] / "trace.jsonl"
        prom = files["dir"] / "metrics.prom"
        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "-o", str(files["dir"] / "out.xml"),
            "--trace", str(trace), "--metrics", str(prom),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "trace:" in err and "analysis cache:" in err

        spans = spans_from_jsonl(trace.read_text())
        names = {span["name"] for span in spans}
        assert {"enforce", "document", "node", "analysis"} <= names
        for line in trace.read_text().splitlines():
            json.loads(line)  # every line is valid JSON

        text = prom.read_text()
        assert "repro_documents_rewritten_total" in text
        assert "repro_span_seconds_bucket" in text

    def test_rewrite_metrics_to_stdout(self, files, capsys):
        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "-o", str(files["dir"] / "out.xml"), "--metrics", "-",
        ])
        assert code == 0
        assert "repro_analysis_cache_total" in capsys.readouterr().out

    def test_stats_renders_span_tree(self, files, capsys):
        trace = files["dir"] / "trace.jsonl"
        main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "-o", str(files["dir"] / "out.xml"), "--trace", str(trace),
        ])
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("enforce")
        assert "└─" in out and "document" in out

    def test_stats_on_empty_trace_fails(self, files, capsys):
        empty = files["dir"] / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1

    def test_untraced_rewrite_installs_nothing(self, files, capsys):
        from repro.obs import metrics as current_metrics
        from repro.obs import tracer as current_tracer

        code = main([
            "rewrite", files["doc"], files["star"], files["star2"],
            "-o", str(files["dir"] / "out.xml"),
        ])
        assert code == 0
        assert not current_tracer().enabled
        assert not current_metrics().enabled
