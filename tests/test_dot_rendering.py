"""Unit tests for the Graphviz figure regeneration."""

import pytest

from repro.automata.dot import dfa_to_dot, expansion_to_dot, product_to_dot
from repro.regex.parser import parse_regex
from repro.rewriting.expansion import build_expansion
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe, problem_alphabet, target_complement

WORD = ("title", "date", "Get_Temp", "TimeOut")
OUTPUTS = {
    "Get_Temp": parse_regex("temp"),
    "TimeOut": parse_regex("(exhibit | performance)*"),
}
TARGET2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
TARGET3 = parse_regex("title.date.temp.exhibit*")


class TestExpansionDot:
    def test_figure_4_shape(self):
        dot = expansion_to_dot(build_expansion(WORD, OUTPUTS, k=1))
        assert dot.startswith("digraph {")
        assert dot.count("shape=doublecircle") == 2  # q2 and q3 forks
        assert dot.count("ε (invoke)") == 2
        assert 'label="Get_Temp"' in dot
        assert 'xlabel="start"' in dot

    def test_return_edges_dotted(self):
        dot = expansion_to_dot(build_expansion(WORD, OUTPUTS, k=1))
        assert "style=dotted" in dot
        assert dot.count("ε (return)") >= 3  # temp copy + 2 timeout states

    def test_escaping(self):
        dot = expansion_to_dot(
            build_expansion(("a",), {}, k=0), title='with "quotes"'
        )
        assert '\\"quotes\\"' in dot


class TestDfaDot:
    def test_figure_5_shape(self):
        alphabet = problem_alphabet(WORD, OUTPUTS, TARGET2)
        comp = target_complement(TARGET2, alphabet)
        dot = dfa_to_dot(comp, "Figure 5")
        assert dot.count("doublecircle") == len(comp.accepting)
        assert "fillcolor" in dot  # the p6 sink is shaded
        # Catch-all transitions collapse into "*" labels like the paper.
        assert '*"' in dot

    def test_uncollapsed_mode(self):
        alphabet = problem_alphabet(WORD, OUTPUTS, TARGET2)
        comp = target_complement(TARGET2, alphabet)
        dot = dfa_to_dot(comp, collapse_other=False)
        assert "#other" in dot


class TestProductDot:
    def test_figure_6_marking_colors(self):
        analysis = analyze_safe(WORD, OUTPUTS, TARGET2, k=1)
        dot = product_to_dot(analysis, "Figure 6")
        assert dot.count("salmon") == analysis.stats.marked_nodes
        assert "style=dashed" in dot  # fork invoke options

    def test_figure_8_everything_reachable_marked(self):
        analysis = analyze_safe(WORD, OUTPUTS, TARGET3, k=1)
        dot = product_to_dot(analysis)
        assert dot.count("salmon") == analysis.stats.marked_nodes
        assert '"[q0,p0]"' in dot

    def test_lazy_product_renders_pruned_view(self):
        analysis = analyze_safe_lazy(WORD, OUTPUTS, TARGET2, k=1)
        dot = product_to_dot(analysis, "Figure 12")
        eager = analyze_safe(WORD, OUTPUTS, TARGET2, k=1)
        full = product_to_dot(eager)
        # The lazy rendering draws at most as many nodes as the eager one.
        assert dot.count("[q") <= full.count("[q")

    def test_render_figures_example_writes_files(self, tmp_path, monkeypatch):
        import importlib.util
        import sys

        spec = importlib.util.spec_from_file_location(
            "render_figures", "examples/render_figures.py"
        )
        module = importlib.util.module_from_spec(spec)
        monkeypatch.setattr(sys, "argv", ["render_figures", str(tmp_path)])
        spec.loader.exec_module(module)
        module.main()
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "fig4_awk.dot" in written
        assert "fig8_product_star3.dot" in written
        assert len(written) == 7
