"""Unit tests for the gateway's stdlib HTTP/1.1 layer."""

import asyncio
import json

import pytest

from repro.gateway.errors import BadRequestError, PayloadTooLargeError
from repro.gateway.http import (
    MAX_HEADER_BYTES,
    Request,
    Response,
    parse_response,
    read_request,
    write_response,
)


def _read(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def _request(method="POST", path="/exchange", body=b"", extra=""):
    return (
        "%s %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n%s\r\n"
        % (method, path, len(body), extra)
    ).encode("latin-1") + body


class TestReadRequest:
    def test_round_trip(self):
        body = json.dumps({"sender": "alice"}).encode("utf-8")
        request = _read(_request(body=body))
        assert request.method == "POST"
        assert request.path == "/exchange"
        assert request.body == body
        assert request.json() == {"sender": "alice"}
        assert request.keep_alive

    def test_clean_eof_is_none(self):
        assert _read(b"") is None

    def test_query_and_percent_decoding(self):
        request = _read(_request(method="GET", path="/peers%20x?a=1&b=two"))
        assert request.path == "/peers x"
        assert request.query == {"a": "1", "b": "two"}

    def test_connection_close_header(self):
        request = _read(_request(extra="Connection: close\r\n"))
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(BadRequestError):
            _read(b"NOT-HTTP\r\n\r\n")

    def test_truncated_head(self):
        with pytest.raises(BadRequestError):
            _read(b"GET /x HTTP/1.1\r\nHost")

    def test_truncated_body(self):
        raw = _request(body=b"12345")[:-3]
        with pytest.raises(BadRequestError):
            _read(raw)

    def test_bad_content_length(self):
        raw = b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(BadRequestError):
            _read(raw)

    def test_chunked_rejected(self):
        raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(BadRequestError):
            _read(raw)

    def test_oversized_body_rejected_before_reading(self):
        # The body is never even present — the Content-Length header
        # alone must trigger the 413, without buffering anything.
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        error = None
        try:
            _read(raw, max_body_bytes=1024)
        except PayloadTooLargeError as exc:
            error = exc
        assert error is not None
        assert error.status == 413
        assert error.payload()["error"] == "too-large"

    def test_oversized_head_rejected(self):
        raw = _request(extra="X-Pad: %s\r\n" % ("y" * (MAX_HEADER_BYTES + 1)))
        with pytest.raises(BadRequestError):
            _read(raw)

    def test_body_json_typed_errors(self):
        assert Request(method="POST", path="/x", body=b"{}").json() == {}
        with pytest.raises(BadRequestError):
            Request(method="POST", path="/x", body=b"not json").json()
        with pytest.raises(BadRequestError):
            Request(method="POST", path="/x", body=b"[1]").json()


class TestWriteResponse:
    def _write(self, response, keep_alive=True) -> bytes:
        chunks = []

        class FakeWriter:
            def write(self, data):
                chunks.append(data)

            async def drain(self):
                return None

        asyncio.run(write_response(FakeWriter(), response, keep_alive))
        return b"".join(chunks)

    def test_json_round_trip(self):
        blob = self._write(Response.json({"ok": True}, status=201))
        status, headers, body = parse_response(blob)
        assert status == 201
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(body)
        assert json.loads(body) == {"ok": True}
        assert headers["connection"] == "keep-alive"

    def test_close_and_binary(self):
        blob = self._write(Response.binary(b"\x00\x01"), keep_alive=False)
        status, headers, body = parse_response(blob)
        assert status == 200
        assert headers["connection"] == "close"
        assert headers["content-type"] == "application/octet-stream"
        assert body == b"\x00\x01"
