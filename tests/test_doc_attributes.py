"""Unit tests for XML attributes on elements (the full-XML extension)."""

import pytest

from repro.doc import Document, el, text
from repro.doc.nodes import Element, with_children
from repro.errors import DocumentParseError
from repro.schema import SchemaBuilder, is_instance


class TestAttributeModel:
    def test_builder_kwarg(self):
        node = el("exhibit", attrs={"id": "42"})
        assert node.get_attribute("id") == "42"
        assert node.get_attribute("nope") is None
        assert node.get_attribute("nope", "dflt") == "dflt"

    def test_attributes_sorted_and_order_insensitive(self):
        a = Element("x", (), (("b", "2"), ("a", "1")))
        b = Element("x", (), (("a", "1"), ("b", "2")))
        assert a == b
        assert hash(a) == hash(b)
        assert a.attributes == (("a", "1"), ("b", "2"))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            Element("x", (), (("a", "1"), ("a", "2")))

    def test_with_children_preserves_attributes(self):
        node = el("x", "old", attrs={"keep": "me"})
        replaced = with_children(node, (text("new"),))
        assert replaced.get_attribute("keep") == "me"

    def test_str_rendering_includes_attributes(self):
        assert 'id="42"' in str(el("x", attrs={"id": "42"}))


class TestAttributeSerialization:
    def test_roundtrip(self):
        document = Document(
            el("catalog",
               el("item", "laptop", attrs={"sku": "A-1", "stock": "3"}),
               el("item", attrs={"sku": "B-2"}),
               attrs={"vendor": "acme"})
        )
        assert Document.from_xml(document.to_xml()) == document

    def test_attribute_values_escaped(self):
        document = Document(el("a", attrs={"q": 'say "hi" & <bye>'}))
        parsed = Document.from_xml(document.to_xml())
        assert parsed.root.get_attribute("q") == 'say "hi" & <bye>'

    def test_namespaced_attributes_rejected(self):
        xml = '<a xmlns:z="urn:z" z:attr="v"/>'
        with pytest.raises(DocumentParseError):
            Document.from_xml(xml)

    def test_root_namespace_decl_is_not_an_attribute(self):
        document = Document(el("a", attrs={"x": "1"}))
        parsed = Document.from_xml(document.to_xml())
        assert parsed.root.attributes == (("x", "1"),)


class TestAttributesAndValidation:
    def test_schema_ignores_attributes(self):
        """The simple model types content only; attributes pass through
        validation untouched (the paper's 'richer setting' note)."""
        schema = (
            SchemaBuilder()
            .element("item", "data")
            .element("catalog", "item*")
            .root("catalog")
            .build()
        )
        document = Document(
            el("catalog", el("item", "x", attrs={"sku": "1"}),
               attrs={"vendor": "acme"})
        )
        assert is_instance(document, schema)

    def test_attributes_survive_rewriting(self, schema_star, registry):
        from repro import RewriteEngine
        from repro.doc.builder import call
        from repro.workloads import newspaper

        document = Document(
            el("newspaper",
               el("title", "The Sun", attrs={"lang": "en"}),
               el("date", "04/10/2002"),
               call("Get_Temp", el("city", "Paris")),
               call("TimeOut", text("x")))
        )
        engine = RewriteEngine(newspaper.schema_star2(), schema_star, k=1)
        result = engine.rewrite(document, registry.make_invoker())
        assert result.document.root.children[0].get_attribute("lang") == "en"
