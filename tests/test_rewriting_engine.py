"""Unit tests for the document-level rewrite engine (Section 4 staging)."""

import pytest

from repro.doc import Document, call, el, text
from repro.errors import (
    NoPossibleRewritingError,
    NoSafeRewritingError,
    SchemaError,
)
from repro.rewriting import CostModel, RewriteEngine
from repro.schema import SchemaBuilder, allow_only, deny, is_instance
from repro.workloads import newspaper


class TestModes:
    def test_safe_mode_succeeds_on_star2(self, doc, schema_star, schema_star2, registry):
        engine = RewriteEngine(schema_star2, schema_star, k=1, mode="safe")
        result = engine.rewrite(doc, registry.make_invoker())
        assert is_instance(result.document, schema_star2, schema_star)
        assert result.mode_used == "safe"
        assert result.log.invoked == ["Get_Temp"]

    def test_safe_mode_fails_on_star3(self, doc, schema_star, schema_star3, registry):
        engine = RewriteEngine(schema_star3, schema_star, k=1, mode="safe")
        with pytest.raises(NoSafeRewritingError):
            engine.rewrite(doc, registry.make_invoker())

    def test_auto_mode_falls_back_to_possible(
        self, doc, schema_star, schema_star3, registry
    ):
        engine = RewriteEngine(schema_star3, schema_star, k=1, mode="auto")
        result = engine.rewrite(doc, registry.make_invoker())
        assert result.mode_used == "possible"
        assert is_instance(result.document, schema_star3, schema_star)

    def test_possible_mode_fails_on_adversarial_services(
        self, doc, schema_star, schema_star3, adversarial_registry
    ):
        from repro.errors import RewriteExecutionError

        engine = RewriteEngine(schema_star3, schema_star, k=1, mode="possible")
        with pytest.raises(RewriteExecutionError):
            engine.rewrite(doc, adversarial_registry.make_invoker())

    def test_possible_mode_impossible_case(self, schema_star, registry):
        target = (
            SchemaBuilder()
            .element("newspaper", "title")
            .element("title", "data")
            .build()
        )
        engine = RewriteEngine(target, schema_star, mode="possible")
        document = Document(el("newspaper", el("date", "x")))
        with pytest.raises(NoPossibleRewritingError):
            engine.rewrite(document, registry.make_invoker())


class TestStaticCheck:
    def test_can_rewrite_matches_rewrite(self, doc, schema_star, schema_star2,
                                         schema_star3):
        assert RewriteEngine(schema_star2, schema_star).can_rewrite(doc)
        assert not RewriteEngine(schema_star3, schema_star).can_rewrite(doc)
        assert RewriteEngine(
            schema_star3, schema_star, mode="possible"
        ).can_rewrite(doc)
        assert RewriteEngine(
            schema_star3, schema_star, mode="auto"
        ).can_rewrite(doc)

    def test_can_rewrite_never_invokes(self, doc, schema_star, schema_star2):
        # No invoker is even available to the static check.
        assert RewriteEngine(schema_star2, schema_star).can_rewrite(doc)


class TestParameterStage:
    def test_parameters_rewritten_before_invocation(self, schema_star, registry):
        # Get_Temp expects `city`; the document supplies Get_City() whose
        # output is a city element — the engine must materialize the
        # parameter first (the bottom-up stage).
        sender = (
            SchemaBuilder()
            .element("newspaper", "title.date.(Get_Temp | temp).(TimeOut | exhibit*)")
            .element("title", "data")
            .element("date", "data")
            .element("temp", "data")
            .element("city", "data")
            .element("exhibit", "title.(Get_Date | date)")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "(exhibit | performance)*")
            .function("Get_Date", "title", "date")
            .function("Get_City", "data", "city")
            .root("newspaper")
            .build(strict=False)
        )
        from repro import FunctionSignature, Service, constant_responder, parse_regex

        city_service = Service("http://cities.example.com", "urn:cities")
        city_service.add_operation(
            "Get_City",
            FunctionSignature(parse_regex("data"), parse_regex("city")),
            constant_responder((el("city", "Paris"),)),
        )
        registry.register(city_service)

        document = Document(
            el(
                "newspaper",
                el("title", "t"), el("date", "d"),
                call("Get_Temp", call("Get_City", text("fr"))),
                call("TimeOut", text("x")),
            )
        )
        target = newspaper.schema_star2()
        engine = RewriteEngine(target, sender, k=1)
        result = engine.rewrite(document, registry.make_invoker())
        assert is_instance(result.document, target, sender)
        assert result.log.invoked == ["Get_City", "Get_Temp"]

    def test_kept_call_parameters_still_conform(self, schema_star, registry):
        # TimeOut is kept; its parameter must match tau_in = data (it does).
        engine = RewriteEngine(newspaper.schema_star2(), schema_star)
        result = engine.rewrite(newspaper.document(), registry.make_invoker())
        kept = result.document.root.children[3]
        assert kept.name == "TimeOut"
        assert kept.params == (text("exhibits"),)

    def test_unknown_function_signature_fails(self, schema_star, registry):
        document = Document(el("newspaper", call("Mystery")))
        engine = RewriteEngine(schema_star, schema_star)
        with pytest.raises(SchemaError):
            engine.rewrite(document, registry.make_invoker())

    def test_undeclared_label_fails(self, schema_star, registry):
        document = Document(el("unknown-element"))
        engine = RewriteEngine(schema_star, schema_star)
        with pytest.raises(SchemaError):
            engine.rewrite(document, registry.make_invoker())


class TestPolicies:
    def test_non_invocable_function_blocks_safe_rewriting(
        self, doc, schema_star, schema_star2, registry
    ):
        engine = RewriteEngine(
            schema_star2, schema_star, policy=deny(["Get_Temp"])
        )
        with pytest.raises(NoSafeRewritingError):
            engine.rewrite(doc, registry.make_invoker())

    def test_allow_only_whitelist(self, doc, schema_star, schema_star2, registry):
        engine = RewriteEngine(
            schema_star2, schema_star, policy=allow_only(["Get_Temp"])
        )
        result = engine.rewrite(doc, registry.make_invoker())
        assert result.log.invoked == ["Get_Temp"]

    def test_policy_irrelevant_when_no_invocation_needed(
        self, doc, schema_star, registry
    ):
        engine = RewriteEngine(
            schema_star, schema_star, policy=deny(["Get_Temp", "TimeOut"])
        )
        result = engine.rewrite(doc, registry.make_invoker())
        assert not result.log.records


class TestPatternTargets:
    def test_pattern_target_keeps_conforming_call(self, doc, schema_star, registry):
        target = newspaper.pattern_schema()
        engine = RewriteEngine(target, schema_star)
        result = engine.rewrite(doc, registry.make_invoker())
        assert is_instance(result.document, target, schema_star)
        assert not result.log.records  # Get_Temp matches Forecast, stays

    def test_pattern_rejecting_predicate_forces_invocation(
        self, doc, schema_star, registry
    ):
        target = newspaper.pattern_schema(lambda name: name != "Get_Temp")
        engine = RewriteEngine(target, schema_star)
        result = engine.rewrite(doc, registry.make_invoker())
        assert result.log.invoked == ["Get_Temp"]
        assert is_instance(result.document, target, schema_star)


class TestCostModel:
    def test_costs_accumulate(self, doc, schema_star, schema_star2, registry):
        model = CostModel(default_cost=2.0).with_cost("Get_Temp", 10.0)
        engine = RewriteEngine(schema_star2, schema_star, cost_model=model)
        result = engine.rewrite(doc, registry.make_invoker())
        assert result.log.cost == 10.0

    def test_stats_reported(self, doc, schema_star, schema_star2, registry):
        engine = RewriteEngine(schema_star2, schema_star)
        result = engine.rewrite(doc, registry.make_invoker())
        assert result.words_rewritten >= 2  # newspaper + subtrees
        assert result.product_nodes > 0
        assert result.calls_made == 1
