"""Unit tests for the mixed approach (Section 5)."""

import pytest

from repro.doc import call, el, text
from repro.doc.nodes import symbol_of
from repro.errors import NoSafeRewritingError
from repro.regex.ops import matches
from repro.regex.parser import parse_regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.mixed import mixed_rewrite_word, pre_materialize
from repro.rewriting.plan import InvocationLog

WORD_CHILDREN = (
    el("title", "t"),
    el("date", "d"),
    call("Get_Temp", el("city", "Paris")),
    call("TimeOut", text("k")),
)
R3 = parse_regex("title.date.temp.exhibit*")


def invoker(fc):
    if fc.name == "Get_Temp":
        return (el("temp", "15"),)
    if fc.name == "TimeOut":
        return (el("exhibit", el("title", "P"), el("date", "d")),)
    raise AssertionError(fc.name)


class TestPreMaterialize:
    def test_eager_calls_materialized(self):
        log = InvocationLog()
        updated = pre_materialize(
            WORD_CHILDREN, lambda name: name == "TimeOut", invoker, 1, log,
            lambda _n: 1.0,
        )
        symbols = tuple(symbol_of(node) for node in updated)
        assert symbols == ("title", "date", "Get_Temp", "exhibit")
        assert log.invoked == ["TimeOut"]

    def test_depth_respected(self):
        def nested_invoker(fc):
            if fc.name == "f":
                return (call("g"),)
            return (el("a"),)

        log = InvocationLog()
        updated = pre_materialize(
            (call("f"),), lambda _n: True, nested_invoker, 1, log, lambda _n: 0.0
        )
        # depth 1 fires f; g (depth 2) stays.
        assert [symbol_of(n) for n in updated] == ["g"]

        log2 = InvocationLog()
        updated2 = pre_materialize(
            (call("f"),), lambda _n: True, nested_invoker, 2, log2, lambda _n: 0.0
        )
        assert [symbol_of(n) for n in updated2] == ["a"]


class TestMixedRewrite:
    def test_mixed_makes_star3_safe(self, newspaper_outputs):
        # Pure safe rewriting into (***) fails; invoking the well-behaved
        # TimeOut up front and THEN deciding succeeds — Section 5's point.
        new_children, log, analysis = mixed_rewrite_word(
            WORD_CHILDREN,
            newspaper_outputs,
            R3,
            invoker,
            eager=lambda name: name == "TimeOut",
            k=1,
        )
        assert analysis.exists
        assert sorted(log.invoked) == ["Get_Temp", "TimeOut"]
        assert matches(R3, [symbol_of(n) for n in new_children])

    def test_mixed_fails_when_actual_output_bad(self, newspaper_outputs):
        def adversarial(fc):
            if fc.name == "Get_Temp":
                return (el("temp", "15"),)
            return (el("performance"),)

        with pytest.raises(NoSafeRewritingError):
            mixed_rewrite_word(
                WORD_CHILDREN, newspaper_outputs, R3, adversarial,
                eager=lambda name: name == "TimeOut", k=1,
            )

    def test_mixed_shrinks_the_game(self, newspaper_outputs):
        word = tuple(symbol_of(n) for n in WORD_CHILDREN)
        full = analyze_safe_lazy(
            word, newspaper_outputs,
            parse_regex("title.date.temp.(TimeOut | exhibit*)"), k=1,
        )
        _new, _log, mixed_analysis = mixed_rewrite_word(
            WORD_CHILDREN, newspaper_outputs,
            parse_regex("title.date.temp.(TimeOut | exhibit*)"),
            invoker, eager=lambda name: name == "TimeOut", k=1,
        )
        assert (
            mixed_analysis.stats.expansion_states < full.stats.expansion_states
        )

    def test_no_eager_calls_degenerates_to_safe(self, newspaper_outputs):
        new_children, log, analysis = mixed_rewrite_word(
            WORD_CHILDREN, newspaper_outputs,
            parse_regex("title.date.temp.(TimeOut | exhibit*)"),
            invoker, eager=lambda _name: False, k=1,
        )
        assert log.invoked == ["Get_Temp"]
