"""Unit tests for predicates in the declarative query language."""

import pytest

from repro import Document, DocumentRepository, el
from repro.axml.query import query_path
from repro.errors import DocumentError


@pytest.fixture
def repo():
    repository = DocumentRepository()
    repository.store(
        "catalog",
        Document(
            el(
                "catalog",
                el("item", el("name", "laptop"), el("price", "900"),
                   attrs={"sku": "A-1"}),
                el("item", el("name", "phone"), el("price", "400"),
                   attrs={"sku": "B-2"}),
                el("item", el("name", "laptop"), el("price", "1200"),
                   attrs={"sku": "C-3"}),
            )
        ),
    )
    return repository


class TestChildTextPredicates:
    def test_filter_by_child_text(self, repo):
        laptops = query_path(repo, "catalog", "catalog/item[name=laptop]")
        assert len(laptops) == 2
        assert {item.get_attribute("sku") for item in laptops} == {"A-1", "C-3"}

    def test_no_match(self, repo):
        assert query_path(repo, "catalog", "catalog/item[name=tablet]") == ()

    def test_predicate_then_descend(self, repo):
        prices = query_path(repo, "catalog", "catalog/item[name=phone]/price")
        assert len(prices) == 1
        assert prices[0].children[0].value == "400"


class TestAttributePredicates:
    def test_filter_by_attribute(self, repo):
        items = query_path(repo, "catalog", "catalog/item[@sku=B-2]")
        assert len(items) == 1
        assert items[0].children[0].children[0].value == "phone"

    def test_missing_attribute_never_matches(self, repo):
        assert query_path(repo, "catalog", "catalog/item[@color=red]") == ()

    def test_wildcard_with_predicate(self, repo):
        items = query_path(repo, "catalog", "catalog/*[@sku=A-1]")
        assert len(items) == 1


class TestErrors:
    def test_malformed_predicate(self, repo):
        with pytest.raises(DocumentError):
            query_path(repo, "catalog", "catalog/item[namelaptop]")

    def test_predicate_on_root_step(self, repo):
        # The root step may carry predicates too.
        assert query_path(repo, "catalog", "catalog[@missing=1]/item") == ()
