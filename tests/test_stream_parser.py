"""The expat pull parser against the classic DOM (ElementTree) path.

``repro.doc.xml_io`` now parses over :func:`repro.stream.parser.iter_events`;
these tests pin its behaviour to the previous ElementTree-based parser —
a reference copy of which lives below — across the XML edge cases that
historically diverge between SAX and DOM stacks (CDATA sections, entity
references, character data split by comments, namespace re-declaration),
and exercise the headline capability the rewrite bought: parsing and
serializing documents nested far beyond the recursion limit.
"""

import sys
import xml.etree.ElementTree as ET

import pytest

from repro.doc.document import Document
from repro.doc.names import FUN_TAG, PARAM_TAG, PARAMS_TAG
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.doc.xml_io import document_from_xml, document_to_xml, node_from_xml
from repro.errors import DocumentParseError
from repro.stream.parser import END, START, TEXT, iter_events
from repro.workloads import newspaper

# ---------------------------------------------------------------------------
# Reference implementation: the ElementTree parser this repo used before
# the streaming rewrite, kept verbatim so equality means "the pull parser
# reproduces DOM semantics", not "both changed together".
# ---------------------------------------------------------------------------


def _et_node_from_xml(source: str) -> Node:
    root = ET.fromstring(source)
    return _et_parse_element(root)


def _et_parse_element(elem) -> Node:
    if elem.tag == FUN_TAG:
        return _et_parse_function(elem)
    children = []
    leading = (elem.text or "").strip()
    child_elems = list(elem)
    if leading:
        if child_elems:
            raise DocumentParseError("mixed content")
        children.append(Text(leading))
    for child in child_elems:
        children.append(_et_parse_element(child))
        if (child.tail or "").strip():
            raise DocumentParseError("mixed content")
    return Element(elem.tag, tuple(children), tuple(sorted(elem.attrib.items())))


def _et_parse_function(elem) -> FunctionCall:
    name = elem.get("methodName")
    params = []
    for wrapper in elem:
        assert wrapper.tag == PARAMS_TAG
        for param in wrapper:
            assert param.tag == PARAM_TAG
            inner = list(param)
            if inner:
                params.append(_et_parse_element(inner[0]))
            else:
                params.append(Text((param.text or "").strip()))
    return FunctionCall(
        name, tuple(params), elem.get("endpointURL"), elem.get("namespaceURI")
    )


EDGE_CASES = [
    pytest.param("<a><b><![CDATA[x & y <not-a-tag>]]></b></a>", id="cdata"),
    pytest.param("<a>pre<!-- split --><![CDATA[mid]]>post</a>",
                 id="text-coalescing-across-comments-and-cdata"),
    pytest.param("<a>&amp;&lt;tag&gt;&quot;&#65;</a>", id="entity-references"),
    pytest.param(
        '<a xmlns:x="urn:one"><b xmlns:x="urn:two"><c>v</c></b></a>',
        id="namespace-redeclaration",
    ),
    pytest.param('<a k="2" j="1"><b/><c>text</c></a>', id="attribute-order"),
    pytest.param("<a>\n  <b>x</b>\n  <c/>\n</a>", id="ignorable-whitespace"),
    pytest.param(
        '<r xmlns:int="http://www.activexml.com/ns/int">'
        '<int:fun methodName="F" endpointURL="http://e" namespaceURI="urn:n">'
        "<int:params><int:param><city>Paris</city></int:param>"
        "<int:param>raw text</int:param></int:params>"
        "</int:fun></r>",
        id="function-call-with-params",
    ),
]


class TestStreamMatchesDom:
    @pytest.mark.parametrize("xml", EDGE_CASES)
    def test_equal_trees(self, xml):
        assert node_from_xml(xml) == _et_node_from_xml(xml)

    def test_newspaper_round_trip(self):
        xml = newspaper.document().to_xml()
        assert document_from_xml(xml).root == _et_node_from_xml(xml)
        assert document_from_xml(xml).to_xml() == xml

    @pytest.mark.parametrize("xml", [
        pytest.param("<a>text<b/></a>", id="leading-mixed-content"),
        pytest.param("<a><b/>tail</a>", id="trailing-mixed-content"),
    ])
    def test_mixed_content_rejected_like_dom(self, xml):
        with pytest.raises(DocumentParseError):
            node_from_xml(xml)
        with pytest.raises(DocumentParseError):
            _et_node_from_xml(xml)

    def test_malformed_keeps_dom_error_message(self):
        # Both stacks sit on expat, so the human-facing message (line,
        # column, reason) must be identical to the pre-rewrite one.
        source = "<a><b></a>"
        try:
            ET.fromstring(source)
        except ET.ParseError as exc:
            expected = "malformed XML: %s" % exc
        with pytest.raises(DocumentParseError) as caught:
            node_from_xml(source)
        assert str(caught.value) == expected


class TestEventStream:
    def test_text_coalesces_to_single_event(self):
        events = list(iter_events("<a>one<!-- c -->two<![CDATA[three]]></a>"))
        assert events == [
            (START, "a", {}),
            (TEXT, "onetwothree", None),
            (END, "a", None),
        ]

    def test_chunked_feed_equals_whole_string(self):
        xml = newspaper.document().to_xml()
        one_byte_chunks = (xml[i:i + 1] for i in range(len(xml)))
        assert list(iter_events(one_byte_chunks)) == list(iter_events(xml))

    def test_clark_names_for_namespaced_tags_and_attributes(self):
        events = list(iter_events(
            '<x:a xmlns:x="urn:u" x:k="v"><plain/></x:a>'
        ))
        assert events[0] == (START, "{urn:u}a", {"{urn:u}k": "v"})
        assert events[1] == (START, "plain", {})


class TestDeepDocuments:
    DEPTH = 10_000

    def test_parse_and_serialize_beyond_recursion_limit(self):
        assert self.DEPTH > sys.getrecursionlimit()
        xml = "<d>" * self.DEPTH + "leaf" + "</d>" * self.DEPTH
        root = node_from_xml(xml)
        depth = 0
        node = root
        while isinstance(node, Element) and node.children:
            assert node.label == "d"
            node = node.children[0]
            depth += 1
        assert depth == self.DEPTH
        assert node == Text("leaf")
        # The serializer is iterative too: the document round-trips.
        # (Compared as bytes — dataclass equality would itself recurse.)
        serialized = document_to_xml(Document(root))
        assert document_to_xml(document_from_xml(serialized)) == serialized
