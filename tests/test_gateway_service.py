"""End-to-end tests for the exchange gateway service.

Each test runs a real gateway (ephemeral port, background event loop
via :class:`GatewayThread`) and talks to it over actual sockets with
:class:`GatewayClient` — the same wire path a remote peer uses.
"""

import asyncio
import threading

import pytest

from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.gateway.loadgen import OBLIGATIONS, _scenario, direct_enforcement

SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML = _scenario()


def run(coro):
    return asyncio.run(coro)


async def _register(client: GatewayClient) -> None:
    reply = await client.register_peer(
        "alice", SENDER_XSD, obligations=OBLIGATIONS
    )
    assert reply.status == 201, reply.body
    reply = await client.register_peer("bob", RECEIVER_XSD)
    assert reply.status == 201, reply.body


@pytest.fixture
def gateway():
    with GatewayThread(GatewayConfig()) as harness:
        async def setup():
            client = GatewayClient(harness.host, harness.port)
            try:
                await _register(client)
            finally:
                await client.close()

        run(setup())
        yield harness


class TestRoundTrip:
    def test_exchange_matches_direct_library_path(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.exchange(
                    "alice", "bob", DOCUMENT_XML, seed=42
                )
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 200
        payload = reply.json()
        assert payload["accepted"] is True
        assert payload["calls"] == 1
        assert payload["document"] == direct_enforcement(
            SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML, seed=42
        )

    def test_keep_alive_reuses_one_connection(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                first = await client.exchange("alice", "bob", DOCUMENT_XML)
                writer = client._writer
                second = await client.exchange("alice", "bob", DOCUMENT_XML)
                assert client._writer is writer  # no reconnect happened
                return first, second
            finally:
                await client.close()

        first, second = run(go())
        assert first.status == second.status == 200
        # Same seed, same request → byte-identical replies.
        assert first.json()["document"] == second.json()["document"]

    def test_health_stats_and_peer_listing(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                health = await client.health()
                stats = (await client.request("GET", "/stats")).json()
                peers = (await client.request("GET", "/peers")).json()
                return health, stats, peers
            finally:
                await client.close()

        health, stats, peers = run(go())
        assert health["status"] == "ok" and health["peers"] == 2
        assert stats["peers"] == ["alice", "bob"]
        assert [p["name"] for p in peers["peers"]] == ["alice", "bob"]

    def test_remove_peer(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                removed = await client.request("DELETE", "/peers/bob")
                missing = await client.request("DELETE", "/peers/bob")
                gone = await client.exchange("alice", "bob", DOCUMENT_XML)
                return removed, missing, gone
            finally:
                await client.close()

        removed, missing, gone = run(go())
        assert removed.status == 200
        assert missing.status == 404
        assert missing.error_code == "unknown-peer"
        assert gone.status == 404 and gone.error_code == "unknown-peer"

    def test_unknown_route_is_typed_404(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.request("GET", "/nope")
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 404 and reply.error_code == "unknown-route"


class TestMetrics:
    def test_scrape_after_exchange(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                await client.exchange("alice", "bob", DOCUMENT_XML)
                return await client.metrics_text()
            finally:
                await client.close()

        text = run(go())
        assert 'repro_gateway_requests_total{route="POST /exchange"' in text
        assert 'repro_gateway_exchanges_total{accepted="true",mode="safe"}' \
            in text
        assert "repro_gateway_request_seconds_bucket" in text
        assert "repro_gateway_up 1" in text
        # The latency histogram feeds a streaming quantile sketch.
        histogram = gateway.gateway.metrics.get(
            "repro_gateway_request_seconds"
        )
        p99 = histogram.quantile(0.99, route="POST /exchange")
        assert p99 is not None and p99 > 0
        # Enforcement work counters flow into the gateway's registry.
        assert "repro_work_total" in text


class TestSnapshots:
    def test_warm_start_from_peer_snapshot(self, gateway):
        async def warm():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                await client.exchange("alice", "bob", DOCUMENT_XML)
                return await client.export_snapshot()
            finally:
                await client.close()

        blob = run(warm())
        assert blob  # the exchange compiled artifacts into the cache

        with GatewayThread(GatewayConfig()) as fresh:
            async def seed_and_use():
                client = GatewayClient(fresh.host, fresh.port)
                try:
                    imported = await client.import_snapshot(blob)
                    await _register(client)
                    reply = await client.exchange(
                        "alice", "bob", DOCUMENT_XML, seed=7
                    )
                    stats = (await client.request("GET", "/stats")).json()
                    return imported, reply, stats
                finally:
                    await client.close()

            imported, reply, stats = run(seed_and_use())
        assert imported.status == 200
        assert imported.json()["imported"] > 0
        assert reply.status == 200
        # The pre-seeded cache serves compile hits on the first exchange.
        assert stats["compile_cache"]["hits"] > 0
        assert reply.json()["document"] == direct_enforcement(
            SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML, seed=7
        )

    def test_bad_snapshot_is_typed_400(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                return await client.import_snapshot(b"junk blob")
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 400 and reply.error_code == "bad-snapshot"


class TestGracefulShutdown:
    def test_drain_loses_no_responses(self):
        """Stop mid-flight: every admitted request still gets its reply."""
        harness = GatewayThread(GatewayConfig(
            pool_size=2, invoke_delay=0.05,
        ))
        harness.start()
        stopper = None
        try:
            async def go():
                nonlocal stopper
                setup = GatewayClient(harness.host, harness.port)
                try:
                    await _register(setup)
                finally:
                    await setup.close()

                started = asyncio.Event()
                replies = []

                async def one(seed):
                    client = GatewayClient(harness.host, harness.port)
                    try:
                        await client._connect()
                        started.set()
                        replies.append(await client.exchange(
                            "alice", "bob", DOCUMENT_XML, seed=seed
                        ))
                    finally:
                        await client.close()

                tasks = [asyncio.create_task(one(seed)) for seed in range(6)]
                await started.wait()
                # Wait until every request has been *admitted* (the
                # guarantee is about admitted requests; ones still in
                # flight toward the gate may legitimately be shed).
                for _ in range(1000):
                    if harness.gateway.admission.inflight >= 6:
                        break
                    await asyncio.sleep(0.005)
                # Begin the graceful stop while requests are in flight
                # (the delayed invoker keeps them busy ≥50ms each).
                stopper = threading.Thread(
                    target=harness.stop, kwargs={"drain": True}
                )
                stopper.start()
                await asyncio.gather(*tasks)
                return replies

            replies = run(go())
        finally:
            if stopper is not None:
                stopper.join(timeout=30)
            harness.stop()
        assert len(replies) == 6
        assert all(reply.status == 200 for reply in replies)

    def test_requests_after_drain_are_shed(self):
        harness = GatewayThread(GatewayConfig())
        harness.start()
        try:
            async def setup():
                client = GatewayClient(harness.host, harness.port)
                try:
                    await _register(client)
                finally:
                    await client.close()

            run(setup())
            harness.gateway.admission.drain()

            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    return await client.exchange(
                        "alice", "bob", DOCUMENT_XML
                    )
                finally:
                    await client.close()

            reply = run(go())
            assert reply.status == 503
            assert reply.error_code == "shutting-down"
        finally:
            harness.stop()
