"""Cross-validation of Hopcroft's minimization against Moore's."""

import random

import pytest
from hypothesis import given, settings

from repro.automata.dfa import complete, minimize, minimize_hopcroft
from repro.automata.ops import language_equal, regex_to_dfa
from repro.automata.symbols import Alphabet
from repro.regex.parser import parse_regex
from tests.test_properties import regexes


class TestHopcroft:
    @pytest.mark.parametrize(
        "text",
        [
            "a", "a.b.c", "(a | b)*", "(a.c) | (b.c)", "a{2,5}",
            "title.date.temp.(TimeOut | exhibit*)",
            "(a|b)*.a.(a|b).(a|b)",  # nondeterministic family, n=2
            "empty", "eps",
        ],
    )
    def test_agrees_with_moore(self, text):
        dfa = regex_to_dfa(parse_regex(text))
        moore = minimize(dfa)
        hopcroft = minimize_hopcroft(dfa)
        assert moore.n_states == hopcroft.n_states, text
        assert language_equal(moore, hopcroft)
        assert language_equal(dfa, hopcroft)

    @given(regexes())
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_moore_on_random_regexes(self, regex):
        dfa = regex_to_dfa(regex, Alphabet.closure(["a", "b", "c"]))
        moore = minimize(dfa)
        hopcroft = minimize_hopcroft(dfa)
        assert moore.n_states == hopcroft.n_states
        assert language_equal(dfa, hopcroft)

    def test_minimality_on_redundant_automaton(self):
        # (a.c)|(b.c) has two mergeable intermediate states.
        dfa = regex_to_dfa(parse_regex("(a.c) | (b.c)"))
        hopcroft = minimize_hopcroft(dfa)
        assert hopcroft.n_states < complete(dfa).n_states

    def test_all_rejecting_automaton(self):
        dfa = regex_to_dfa(parse_regex("empty"))
        hopcroft = minimize_hopcroft(dfa)
        assert not hopcroft.accepting
        assert hopcroft.n_states == 1
