"""Unit tests for the intensional document model (Definition 1)."""

import pytest

from repro.automata.symbols import DATA
from repro.doc import Document, Element, FunctionCall, Text, call, el, text
from repro.doc.nodes import (
    children_of,
    count_function_nodes,
    is_extensional,
    iter_subtree,
    symbol_of,
    tree_depth,
    tree_size,
    with_children,
)
from repro.doc.paths import (
    child_word,
    find_function_nodes,
    get_node,
    iter_nodes,
    outermost_function_nodes,
    replace_at,
    splice_at,
)


@pytest.fixture
def tree():
    return el(
        "newspaper",
        el("title", "The Sun"),
        call("Get_Temp", el("city", "Paris")),
        call("Outer", call("Inner", text("x"))),
    )


class TestNodes:
    def test_symbol_of(self, tree):
        assert symbol_of(tree) == "newspaper"
        assert symbol_of(text("v")) == DATA
        assert symbol_of(call("f")) == "f"

    def test_builder_coerces_strings(self):
        node = el("title", "The Sun")
        assert node.children == (Text("The Sun"),)

    def test_builder_rejects_garbage(self):
        with pytest.raises(TypeError):
            el("a", 42)

    def test_labels_validated(self):
        with pytest.raises(ValueError):
            Element("#data")
        with pytest.raises(ValueError):
            Element("")
        with pytest.raises(ValueError):
            FunctionCall("#bad")

    def test_sizes(self, tree):
        assert tree_size(tree) == 9
        assert tree_depth(tree) == 4
        assert count_function_nodes(tree) == 3
        assert not is_extensional(tree)
        assert is_extensional(el("a", el("b")))

    def test_with_children(self):
        node = el("a", "x")
        replaced = with_children(node, (Text("y"),))
        assert replaced.children == (Text("y"),)
        assert node.children == (Text("x"),)  # original untouched

    def test_with_children_on_leaf_rejected(self):
        with pytest.raises(ValueError):
            with_children(text("v"), (text("w"),))

    def test_iter_subtree_preorder(self, tree):
        symbols = [symbol_of(node) for node in iter_subtree(tree)]
        assert symbols[0] == "newspaper"
        assert "Inner" in symbols

    def test_function_params_are_children(self):
        fc = call("f", el("a"), el("b"))
        assert children_of(fc) == fc.params


class TestPaths:
    def test_get_node(self, tree):
        assert get_node(tree, ()) is tree
        assert symbol_of(get_node(tree, (1,))) == "Get_Temp"
        assert symbol_of(get_node(tree, (2, 0))) == "Inner"

    def test_get_node_out_of_range(self, tree):
        with pytest.raises(IndexError):
            get_node(tree, (9,))

    def test_iter_nodes_yields_paths(self, tree):
        paths = dict((p, symbol_of(n)) for p, n in iter_nodes(tree))
        assert paths[()] == "newspaper"
        assert paths[(2, 0, 0)] == DATA

    def test_find_function_nodes_document_order(self, tree):
        names = [fc.name for _p, fc in find_function_nodes(tree)]
        assert names == ["Get_Temp", "Outer", "Inner"]

    def test_outermost_skips_parameters(self, tree):
        names = [fc.name for _p, fc in outermost_function_nodes(tree)]
        assert names == ["Get_Temp", "Outer"]

    def test_replace_at(self, tree):
        new = replace_at(tree, (1,), el("temp", "15"))
        assert child_word(new) == ("title", "temp", "Outer")
        assert child_word(tree) == ("title", "Get_Temp", "Outer")

    def test_splice_at_expands_forest(self, tree):
        new = splice_at(tree, (1,), (el("temp", "15"), el("humidity", "80")))
        assert child_word(new) == ("title", "temp", "humidity", "Outer")

    def test_splice_at_empty_forest_deletes(self, tree):
        new = splice_at(tree, (1,), ())
        assert child_word(new) == ("title", "Outer")

    def test_splice_at_root_single_tree_only(self, tree):
        assert splice_at(tree, (), (el("x"),)) == el("x")
        with pytest.raises(ValueError):
            splice_at(tree, (), (el("x"), el("y")))

    def test_structural_sharing(self, tree):
        new = replace_at(tree, (1,), el("temp"))
        assert new.children[0] is tree.children[0]  # untouched subtree shared


class TestDocument:
    def test_wrapper_metrics(self, tree):
        document = Document(tree)
        assert document.size() == 9
        assert document.depth() == 4
        assert document.function_count() == 3
        assert not document.is_extensional()
        assert document.root_symbol == "newspaper"

    def test_splice_is_definition_4(self, tree):
        document = Document(tree)
        rewritten = document.splice((1,), (el("temp", "15"),))
        assert rewritten.function_count() == 2
        assert document.function_count() == 3  # immutable

    def test_pretty_renders_calls(self, tree):
        rendering = Document(tree).pretty()
        assert "[Get_Temp]" in rendering
        assert '"The Sun"' in rendering
