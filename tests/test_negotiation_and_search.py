"""Unit tests for schema negotiation and UDDI-style type search."""

import pytest

from repro import (
    FunctionSignature,
    SchemaBuilder,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    parse_regex,
)
from repro.axml.negotiation import (
    intensionality_degree,
    negotiate,
)
from repro.errors import SchemaError
from repro.schema.patterns import deny
from repro.workloads import newspaper


def fully_extensional():
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.temp.exhibit*")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.date")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build(strict=False)
    )


class TestIntensionalityDegree:
    def test_counts_function_positions(self):
        assert intensionality_degree(newspaper.schema_star()) == 3
        assert intensionality_degree(newspaper.schema_star2()) == 2
        assert intensionality_degree(fully_extensional()) == 0

    def test_counts_pattern_positions(self):
        assert intensionality_degree(newspaper.pattern_schema()) == 3


class TestNegotiate:
    def test_prefers_most_intensional_compatible_offer(self):
        sender = newspaper.schema_star()
        offers = [fully_extensional(), newspaper.schema_star2(),
                  newspaper.schema_star()]
        outcome = negotiate(sender, offers, k=1, preference="intensional")
        assert outcome.ok
        assert outcome.agreed is offers[2]  # (*) itself: 3 call positions

    def test_extensional_preference_flips_the_choice(self):
        sender = newspaper.schema_star()
        offers = [newspaper.schema_star(), newspaper.schema_star2()]
        outcome = negotiate(sender, offers, k=1, preference="extensional")
        assert outcome.agreed is offers[1]

    def test_incompatible_offers_filtered(self):
        sender = newspaper.schema_star()
        offers = [newspaper.schema_star3(), newspaper.schema_star2()]
        outcome = negotiate(sender, offers, k=1)
        assert outcome.agreed is offers[1]
        assert outcome.compatible == [1]
        assert not outcome.reports[0].compatible

    def test_no_common_ground(self):
        sender = newspaper.schema_star()
        outcome = negotiate(sender, [newspaper.schema_star3()], k=1)
        assert not outcome.ok
        assert outcome.agreed is None

    def test_policy_restricts_negotiation(self):
        sender = newspaper.schema_star()
        # (**) needs Get_Temp invocable; with it denied, only (*) works.
        offers = [newspaper.schema_star2(), newspaper.schema_star()]
        outcome = negotiate(
            sender, offers, k=1, policy=deny(["Get_Temp"])
        )
        assert outcome.agreed is offers[1]

    def test_cheapest_preference(self):
        sender = newspaper.schema_star()
        offers = [newspaper.schema_star2(), newspaper.schema_star()]
        outcome = negotiate(sender, offers, k=1, preference="cheapest")
        # (*) costs 0 invocations; (**) may require one.
        assert outcome.agreed is offers[1]

    def test_rootless_sender_rejected(self):
        schema = SchemaBuilder().element("a", "data").build()
        with pytest.raises(SchemaError):
            negotiate(schema, [schema])

    def test_unknown_preference_rejected(self):
        with pytest.raises(ValueError):
            negotiate(newspaper.schema_star(), [], preference="vibes")


class TestRegistrySearch:
    def build(self):
        registry = ServiceRegistry()
        weather = Service("http://weather", "urn:w")
        weather.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            constant_responder((el("temp", "1"),)),
        )
        listings = Service("http://listings", "urn:l")
        listings.add_operation(
            "TimeOut",
            FunctionSignature(
                parse_regex("data"), parse_regex("(exhibit | performance)*")
            ),
            constant_responder(()),
        )
        registry.register(weather).register(listings)
        return registry

    def test_find_by_output_type(self):
        registry = self.build()
        found = registry.find_providers(parse_regex("temp"))
        assert [op.name for _s, op in found] == ["Get_Temp"]

    def test_intersection_vs_subset(self):
        registry = self.build()
        wanted = parse_regex("exhibit*")
        loose = registry.find_providers(wanted)
        assert [op.name for _s, op in loose] == ["TimeOut"]
        # TimeOut may return performances, so it fails the subset test.
        strict = registry.find_providers(wanted, require_subset=True)
        assert strict == []

    def test_input_constraint(self):
        registry = self.build()
        found = registry.find_providers(
            parse_regex("temp"), input_type=parse_regex("city")
        )
        assert len(found) == 1
        none = registry.find_providers(
            parse_regex("temp"), input_type=parse_regex("date")
        )
        assert none == []

    def test_no_match(self):
        registry = self.build()
        assert registry.find_providers(parse_regex("price")) == []
