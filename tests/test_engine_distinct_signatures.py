"""Tests for the distinct-signatures extension (Section 4's omission).

"To simplify, we assume that common functions have the same definitions
in s0 and s [...] The algorithm can be extended to handle distinct
signatures, but we omit this here for space reasons."

Our extension: output types driving ``A_w^k`` come from the *sender*
schema (they describe what the services really return, per their WSDL),
while kept-call parameters target the *receiver's* input types.
"""

import pytest

from repro import (
    Document,
    FunctionSignature,
    RewriteEngine,
    SchemaBuilder,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    is_instance,
    parse_regex,
)
from repro.doc.builder import call
from repro.errors import NoSafeRewritingError


def make_schemas(sender_output, target_output):
    sender = (
        SchemaBuilder()
        .element("page", "f | a.a | a")
        .element("a", "data")
        .function("f", "data", sender_output)
        .root("page")
        .build(strict=False)  # `b` may appear in signatures only
    )
    target = (
        SchemaBuilder()
        .element("page", "a.a | a")
        .element("a", "data")
        .function("f", "data", target_output)
        .root("page")
        .build(strict=False)
    )
    return sender, target


def registry_returning(*labels):
    registry = ServiceRegistry()
    svc = Service("http://f", "urn:f")
    svc.add_operation(
        "f",
        FunctionSignature(parse_regex("data"), parse_regex("a*")),
        constant_responder(tuple(el(label, "v") for label in labels)),
    )
    registry.register(svc)
    return registry


class TestSenderSignatureDrivesExpansion:
    def test_narrow_sender_signature_enables_safety(self):
        # Sender's WSDL says f returns exactly one `a`; the target's
        # (stale) declaration says a|a.a.  Trusting the sender, rewriting
        # into `a.a | a` is safe.
        sender, target = make_schemas("a", "a | a.a")
        engine = RewriteEngine(target, sender, k=1)
        document = Document(el("page", call("f", "q")))
        assert engine.can_rewrite(document)
        result = engine.rewrite(
            document, registry_returning("a").make_invoker()
        )
        assert is_instance(result.document, target, sender)

    def test_wide_sender_signature_blocks_safety(self):
        # Sender's WSDL admits a or b; target (optimistically) declares
        # just `a`.  Reality can return b, so safe rewriting must fail —
        # trusting the target's narrow declaration would be unsound.
        sender, target = make_schemas("a | b", "a")
        engine = RewriteEngine(target, sender, k=1)
        document = Document(el("page", call("f", "q")))
        assert not engine.can_rewrite(document)

    def test_agreeing_signatures_unaffected(self):
        sender, target = make_schemas("a", "a")
        engine = RewriteEngine(target, sender, k=1)
        document = Document(el("page", call("f", "q")))
        assert engine.can_rewrite(document)


class TestTargetInputTypesForKeptCalls:
    def test_parameters_rewritten_toward_target_input_type(self):
        # Sender says f takes data; target demands an `a` element.  A
        # kept call must carry target-conformant parameters, so the
        # engine rewrites the parameter using the target's tau_in.
        sender = (
            SchemaBuilder()
            .element("page", "f")
            .element("a", "data")
            .function("f", "g | a", "a")
            .function("g", "data", "a")
            .root("page")
            .build()
        )
        target = (
            SchemaBuilder()
            .element("page", "f")
            .element("a", "data")
            .function("f", "a", "a")  # stricter input type
            .function("g", "data", "a")
            .root("page")
            .build()
        )
        registry = ServiceRegistry()
        svc = Service("http://g", "urn:g")
        svc.add_operation(
            "g",
            FunctionSignature(parse_regex("data"), parse_regex("a")),
            constant_responder((el("a", "v"),)),
        )
        registry.register(svc)

        document = Document(el("page", call("f", call("g", "seed"))))
        engine = RewriteEngine(target, sender, k=1)
        result = engine.rewrite(document, registry.make_invoker())
        kept = result.document.root.children[0]
        assert kept.name == "f"
        assert [p.label for p in kept.params] == ["a"]
        assert result.log.invoked == ["g"]
        assert is_instance(result.document, target)
