"""Tests for wildcard patterns with subsumption matching (Section 2.1).

"The combination of wildcards and function patterns allows for great
flexibility [...] one may specify that the temperature is obtained from
an arbitrary function that returns a correct temp element, but may take
any argument, being data or function call."
"""

import pytest

from repro import (
    Document,
    RewriteEngine,
    SchemaBuilder,
    call,
    el,
    is_instance,
)
from repro.errors import SchemaError
from repro.schema.model import EXACT, SUBSUME, FunctionSignature
from repro.regex.parser import parse_regex


def wildcard_pattern_schema(match=SUBSUME):
    """tau(page) = Forecast | temp with Forecast: any* -> temp."""
    return (
        SchemaBuilder()
        .element("page", "Forecast | temp")
        .element("temp", "data")
        .element("city", "data")
        .element("zipcode", "data")
        .function("Get_Temp", "city", "temp")
        .function("Get_Temp_By_Zip", "zipcode.zipcode?", "temp")
        .function("Renamer", "city", "city")
        .pattern("Forecast", "any*", "temp", match=match)
        .root("page")
        .build()
    )


class TestSubsumption:
    def test_paper_scenario_any_argument(self):
        schema = wildcard_pattern_schema(SUBSUME)
        pattern = schema.patterns["Forecast"]
        # Both forecast services match: inputs are within any*, output temp.
        assert pattern.admits("Get_Temp", schema.signature_of("Get_Temp"))
        assert pattern.admits(
            "Get_Temp_By_Zip", schema.signature_of("Get_Temp_By_Zip")
        )
        # Wrong output type is still rejected.
        assert not pattern.admits("Renamer", schema.signature_of("Renamer"))

    def test_exact_mode_rejects_non_identical(self):
        schema = wildcard_pattern_schema(EXACT)
        pattern = schema.patterns["Forecast"]
        assert not pattern.admits("Get_Temp", schema.signature_of("Get_Temp"))

    def test_validation_accepts_any_conforming_forecast(self):
        schema = wildcard_pattern_schema(SUBSUME)
        for name, param in (
            ("Get_Temp", el("city", "Paris")),
            ("Get_Temp_By_Zip", el("zipcode", "75")),
        ):
            document = Document(el("page", call(name, param)))
            assert is_instance(document, schema), name
        bad = Document(el("page", call("Renamer", el("city", "x"))))
        assert not is_instance(bad, schema)

    def test_rewriting_with_subsuming_pattern_target(self):
        schema = wildcard_pattern_schema(SUBSUME)
        document = Document(el("page", call("Get_Temp_By_Zip",
                                            el("zipcode", "75"))))
        engine = RewriteEngine(schema, schema, k=1)
        result = engine.rewrite(document, lambda fc: (el("temp", "20"),))
        # The call matches Forecast, so it may stay — no invocation.
        assert not result.log.records
        assert is_instance(result.document, schema)

    def test_output_subsumption_is_directional(self):
        schema = (
            SchemaBuilder()
            .element("page", "P")
            .element("a", "data")
            .function("wide", "data", "a | a.a")
            .function("narrow", "data", "a")
            .pattern("P", "data", "a | a.a", match=SUBSUME)
            .root("page")
            .build()
        )
        pattern = schema.patterns["P"]
        assert pattern.admits("wide", schema.signature_of("wide"))
        assert pattern.admits("narrow", schema.signature_of("narrow"))
        reversed_schema = (
            SchemaBuilder()
            .element("page", "P")
            .element("a", "data")
            .function("wide", "data", "a | a.a")
            .pattern("P", "data", "a", match=SUBSUME)
            .root("page")
            .build()
        )
        assert not reversed_schema.patterns["P"].admits(
            "wide", reversed_schema.signature_of("wide")
        )

    def test_unknown_match_mode_rejected(self):
        with pytest.raises(SchemaError):
            (SchemaBuilder()
             .pattern("P", "data", "data", match="fuzzy"))
