"""Unit tests for nullability, first sets, derivatives and matching."""

import pytest

from repro.regex.ast import AnySymbol, Empty
from repro.regex.ops import (
    derivative,
    enumerate_words,
    first_symbols,
    has_wildcard,
    matches,
    nullable,
    regex_alphabet,
)
from repro.regex.parser import parse_regex


class TestNullable:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("eps", True),
            ("a", False),
            ("a*", True),
            ("a?", True),
            ("a+", False),
            ("a | b*", True),
            ("a.b", False),
            ("a?.b?", True),
            ("a{0,3}", True),
            ("a{2,3}", False),
            ("empty", False),
        ],
    )
    def test_cases(self, text, expected):
        assert nullable(parse_regex(text)) is expected


class TestFirstSymbols:
    def test_sequence_stops_at_non_nullable(self):
        assert first_symbols(parse_regex("a.b")) == {"a"}

    def test_sequence_sees_through_nullable(self):
        assert first_symbols(parse_regex("a?.b")) == {"a", "b"}

    def test_alternation_unions(self):
        assert first_symbols(parse_regex("a | b.c")) == {"a", "b"}

    def test_wildcard_first(self):
        firsts = first_symbols(parse_regex("any.b"))
        assert len(firsts) == 1
        assert isinstance(next(iter(firsts)), AnySymbol)


class TestDerivative:
    def test_atom(self):
        assert nullable(derivative(parse_regex("a"), "a"))
        assert isinstance(derivative(parse_regex("a"), "b"), Empty)

    def test_star_unrolls(self):
        expr = parse_regex("a*")
        assert matches(derivative(expr, "a"), ["a", "a"])

    def test_repeat_counts_down(self):
        expr = parse_regex("a{2,3}")
        once = derivative(expr, "a")
        assert not nullable(once)
        twice = derivative(once, "a")
        assert nullable(twice)


class TestMatches:
    @pytest.mark.parametrize(
        "text,word,expected",
        [
            ("title.date", ["title", "date"], True),
            ("title.date", ["title"], False),
            ("(a | b)*", [], True),
            ("(a | b)*", ["a", "b", "a"], True),
            ("(a | b)*", ["c"], False),
            ("a{2,4}", ["a", "a", "a"], True),
            ("a{2,4}", ["a"], False),
            ("a{2,4}", ["a"] * 5, False),
            ("any*", ["x", "y", "z"], True),
            (
                "title.date.(Get_Temp | temp).(TimeOut | exhibit*)",
                ["title", "date", "Get_Temp", "TimeOut"],
                True,
            ),
            (
                "title.date.temp.exhibit*",
                ["title", "date", "temp", "performance"],
                False,
            ),
        ],
    )
    def test_cases(self, text, word, expected):
        assert matches(parse_regex(text), word) is expected


class TestAlphabetAndWildcards:
    def test_alphabet_collects_atoms(self):
        expr = parse_regex("a.(b | c*)")
        assert regex_alphabet(expr) == frozenset({"a", "b", "c"})

    def test_alphabet_includes_wildcard_exclusions(self):
        expr = AnySymbol(frozenset({"x"}))
        assert regex_alphabet(expr) == frozenset({"x"})

    def test_has_wildcard(self):
        assert has_wildcard(parse_regex("a.any"))
        assert not has_wildcard(parse_regex("a.b"))


class TestEnumerateWords:
    def test_shortest_first(self):
        words = list(enumerate_words(parse_regex("a.b | c"), 3))
        assert words[0] == ("c",)
        assert ("a", "b") in words

    def test_respects_max_length(self):
        words = list(enumerate_words(parse_regex("a*"), 2))
        assert words == [(), ("a",), ("a", "a")]

    def test_every_enumerated_word_matches(self):
        expr = parse_regex("(a | b.c)*")
        for word in enumerate_words(expr, 4):
            assert matches(expr, list(word))
