"""Admission control: bounded queue, per-peer limits, per-peer breakers."""

import pytest

from repro.gateway.admission import AdmissionController
from repro.gateway.errors import (
    BreakerOpenError,
    PeerBusyError,
    QueueFullError,
    ShuttingDownError,
)
from repro.services.resilience import SimulatedClock


def controller(**kwargs) -> AdmissionController:
    kwargs.setdefault("clock", SimulatedClock())
    return AdmissionController(**kwargs)


class TestBoundedQueue:
    def test_admits_up_to_limit_then_sheds(self):
        gate = controller(queue_limit=2, default_per_peer=10)
        first = gate.admit("alice")
        second = gate.admit("alice")
        with pytest.raises(QueueFullError) as info:
            gate.admit("bob")
        assert info.value.status == 503
        assert info.value.payload()["error"] == "queue-full"
        assert gate.shed_counts == {"queue-full": 1}
        first.release()
        gate.admit("bob").release()
        second.release()
        assert gate.inflight == 0
        assert gate.admitted_total == 3

    def test_release_is_idempotent(self):
        gate = controller(queue_limit=1)
        ticket = gate.admit("alice")
        ticket.release()
        ticket.release()
        assert gate.inflight == 0

    def test_context_manager_releases(self):
        gate = controller(queue_limit=1)
        with gate.admit("alice"):
            assert gate.inflight == 1
        assert gate.inflight == 0


class TestPerPeerLimit:
    def test_one_peer_cannot_saturate_the_gateway(self):
        gate = controller(queue_limit=10, default_per_peer=2)
        gate.admit("alice")
        gate.admit("alice")
        with pytest.raises(PeerBusyError) as info:
            gate.admit("alice")
        assert info.value.status == 429
        assert info.value.payload()["error"] == "peer-limit"
        # Other peers are unaffected.
        gate.admit("bob")
        assert gate.peer_inflight("alice") == 2
        assert gate.peer_inflight("bob") == 1

    def test_record_override_beats_default(self):
        gate = controller(queue_limit=10, default_per_peer=1)
        gate.admit("alice", per_peer_limit=3)
        gate.admit("alice", per_peer_limit=3)
        gate.admit("alice", per_peer_limit=3)
        with pytest.raises(PeerBusyError):
            gate.admit("alice", per_peer_limit=3)


class TestBreaker:
    def test_consecutive_failures_open_then_cooldown_half_opens(self):
        clock = SimulatedClock()
        gate = controller(
            breaker_threshold=3, breaker_cooldown=5.0, clock=clock
        )
        for _ in range(3):
            gate.admit("alice").release(success=False)
        with pytest.raises(BreakerOpenError) as info:
            gate.admit("alice")
        assert info.value.status == 503
        assert info.value.payload()["error"] == "breaker-open"
        assert gate.shed_counts == {"breaker-open": 1}
        # Failures are per peer: bob is still welcome.
        gate.admit("bob").release()
        # After the cooldown one probe is admitted; success closes.
        clock.sleep(5.0)
        gate.admit("alice").release(success=True)
        gate.admit("alice").release(success=True)

    def test_half_open_probe_failure_reopens(self):
        clock = SimulatedClock()
        gate = controller(
            breaker_threshold=2, breaker_cooldown=1.0, clock=clock
        )
        for _ in range(2):
            gate.admit("alice").release(success=False)
        clock.sleep(1.0)
        gate.admit("alice").release(success=False)  # the failed probe
        with pytest.raises(BreakerOpenError):
            gate.admit("alice")

    def test_successes_reset_the_count(self):
        gate = controller(breaker_threshold=2)
        gate.admit("alice").release(success=False)
        gate.admit("alice").release(success=True)
        gate.admit("alice").release(success=False)
        gate.admit("alice")  # still closed: never 2 consecutive


class TestDrain:
    def test_draining_sheds_new_work_keeps_inflight(self):
        gate = controller(queue_limit=5)
        ticket = gate.admit("alice")
        gate.drain()
        with pytest.raises(ShuttingDownError) as info:
            gate.admit("bob")
        assert info.value.status == 503
        assert info.value.payload()["error"] == "shutting-down"
        assert gate.inflight == 1
        ticket.release()
        assert gate.inflight == 0
