"""Unit tests for declarative update services."""

import pytest

from repro import Document, DocumentRepository, call, el
from repro.axml.updates import (
    UpdateService,
    delete_matches,
    insert_into,
    replace_matches,
)
from repro.doc.paths import child_word
from repro.errors import DocumentError
from repro.workloads import newspaper


@pytest.fixture
def doc():
    return Document(
        el("newspaper",
           el("title", "The Sun"),
           el("exhibit", el("title", "A"), el("date", "1")),
           el("exhibit", el("title", "B"), el("date", "2")))
    )


class TestRawUpdates:
    def test_insert_appends_by_default(self, doc):
        result = insert_into(doc, "newspaper", (el("date", "today"),))
        assert result.matched == 1 and result.changed
        assert child_word(result.document.root)[-1] == "date"

    def test_insert_at_position(self, doc):
        result = insert_into(doc, "newspaper", (el("date", "d"),), position=1)
        assert child_word(result.document.root)[1] == "date"

    def test_insert_into_every_match(self, doc):
        result = insert_into(
            doc, "newspaper/exhibit", (call("Get_Date", el("title", "x")),)
        )
        assert result.matched == 2
        for exhibit in result.document.root.children[1:]:
            assert child_word(exhibit)[-1] == "Get_Date"

    def test_insert_intensional_fragment(self, doc):
        result = insert_into(doc, "newspaper", (call("TimeOut", "k"),))
        assert result.document.function_count() == 1

    def test_insert_into_function_node_rejected(self):
        with pytest.raises(DocumentError):
            insert_into(
                newspaper.document(), "newspaper/Get_Temp", (el("x"),)
            )

    def test_replace(self, doc):
        result = replace_matches(
            doc, "newspaper/title", (el("title", "Le Monde"),)
        )
        assert result.matched == 1
        assert result.document.root.children[0].children[0].value == "Le Monde"

    def test_replace_by_forest_grows(self, doc):
        result = replace_matches(
            doc, "newspaper/exhibit", (el("exhibit", el("title", "X"),
                                          el("date", "9")),
                                       el("exhibit", el("title", "Y"),
                                          el("date", "8")))
        )
        assert result.matched == 2
        # 2 matches * 2 replacement trees = 4 exhibits.
        assert child_word(result.document.root).count("exhibit") == 4

    def test_replace_root(self, doc):
        result = replace_matches(doc, "newspaper", (el("newspaper"),))
        assert result.document.root.children == ()
        with pytest.raises(DocumentError):
            replace_matches(doc, "newspaper", (el("a"), el("b")))

    def test_delete(self, doc):
        result = delete_matches(doc, "newspaper/exhibit")
        assert result.matched == 2
        assert child_word(result.document.root) == ("title",)

    def test_delete_root_rejected(self, doc):
        with pytest.raises(DocumentError):
            delete_matches(doc, "newspaper")

    def test_no_match_is_noop(self, doc):
        result = delete_matches(doc, "newspaper/nothing")
        assert result.matched == 0 and not result.changed
        assert result.document == doc

    def test_empty_path_rejected(self, doc):
        with pytest.raises(DocumentError):
            insert_into(doc, "", (el("x"),))


class TestValidatedService:
    def setup_service(self, schema=None):
        repository = DocumentRepository()
        repository.store("front", newspaper.document())
        return repository, UpdateService(repository, "front", schema)

    def test_commit_on_valid_update(self):
        repository, service = self.setup_service(newspaper.schema_star())
        # Replace the Get_Temp call by a concrete temperature.
        result = service.replace(
            "newspaper/Get_Temp", (el("temp", "15"),)
        )
        assert result.matched == 1
        assert repository.get("front").function_count() == 1

    def test_rollback_on_schema_break(self):
        repository, service = self.setup_service(newspaper.schema_star())
        before = repository.get("front")
        with pytest.raises(DocumentError):
            service.delete("newspaper/title")  # title is mandatory
        assert repository.get("front") == before  # unchanged

    def test_unvalidated_service_commits_anything(self):
        repository, service = self.setup_service(schema=None)
        service.delete("newspaper/title")
        assert "title" not in child_word(repository.get("front").root)

    def test_updates_visible_to_query_services(self):
        from repro import AXMLPeer, FunctionSignature, parse_regex

        peer = AXMLPeer("paper", newspaper.schema_star())
        peer.repository.store("front", newspaper.document())
        peer.provide_query(
            "Get_Exhibits", "front", "newspaper/exhibit",
            FunctionSignature(parse_regex("data?"), parse_regex("exhibit*")),
        )
        assert peer.service.invoke("Get_Exhibits", ()) == ()
        service = UpdateService(peer.repository, "front",
                                newspaper.schema_star())
        service.replace(
            "newspaper/TimeOut",
            (el("exhibit", el("title", "T"), el("date", "d")),),
        )
        assert len(peer.service.invoke("Get_Exhibits", ())) == 1
