"""Gateway edit-script mode: happy path and the typed failure modes.

Each test runs a real gateway over sockets.  The failure modes the
ISSUE pins down: an edit script against an unknown document id (404
``unknown-session``), a script addressing a nonexistent node path (400
``bad-edit``, session untouched), and session-cache eviction under the
LRU bound (``repro_gateway_incremental_total{event="evicted"}``, then
``unknown-session`` for the evicted id) — each with the matching
``repro_gateway_errors_total`` counter.
"""

import asyncio

import pytest

from repro.doc.document import Document
from repro.doc.nodes import Element, Text
from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.gateway.loadgen import OBLIGATIONS, _scenario, direct_enforcement
from repro.incremental.edits import (
    apply_edits,
    replace,
    script_from_json,
    script_to_json,
)

SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML = _scenario()

RETITLE = script_to_json(
    [replace((0,), Element("title", (Text("The Moon"),)))]
)


def run(coro):
    return asyncio.run(coro)


async def _register(client: GatewayClient) -> None:
    reply = await client.register_peer(
        "alice", SENDER_XSD, obligations=OBLIGATIONS
    )
    assert reply.status == 201, reply.body
    reply = await client.register_peer("bob", RECEIVER_XSD)
    assert reply.status == 201, reply.body


def make_gateway(**config_kwargs):
    harness = GatewayThread(GatewayConfig(**config_kwargs))
    harness.start()

    async def setup():
        client = GatewayClient(harness.host, harness.port)
        try:
            await _register(client)
        finally:
            await client.close()

    run(setup())
    return harness


@pytest.fixture
def gateway():
    harness = make_gateway()
    try:
        yield harness
    finally:
        harness.stop()


class TestEditScriptMode:
    def test_open_then_edit_matches_direct_path(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                opened = await client.open_session(
                    "alice", "bob", "doc-1", DOCUMENT_XML, seed=42
                )
                edited = await client.apply_edits(
                    "alice", "bob", "doc-1", RETITLE
                )
                return opened, edited
            finally:
                await client.close()

        opened, edited = run(go())
        assert opened.status == 200, opened.body
        assert opened.json()["document"] == direct_enforcement(
            SENDER_XSD, RECEIVER_XSD, DOCUMENT_XML, seed=42
        )
        assert edited.status == 200, edited.body
        payload = edited.json()
        # Byte-identical to the full library path over the edited doc.
        after, _ = apply_edits(
            Document.from_xml(DOCUMENT_XML), script_from_json(RETITLE)
        )
        assert payload["document"] == direct_enforcement(
            SENDER_XSD, RECEIVER_XSD, after.to_xml(), seed=42
        )
        # The reuse counters prove the pass was incremental.
        assert payload["edits_applied"] == 1
        assert payload["passes"] == 2
        assert payload["reuse"]["nodes_reused"] > 0
        assert payload["reuse"]["invocations_reused"] >= 1
        assert payload["reuse"]["invocations_performed"] == 0

    def test_unknown_document_id_is_typed_404(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                reply = await client.apply_edits(
                    "alice", "bob", "never-opened", RETITLE
                )
                metrics = await client.metrics_text()
                return reply, metrics
            finally:
                await client.close()

        reply, metrics = run(go())
        assert reply.status == 404
        assert reply.error_code == "unknown-session"
        body = reply.json()
        assert body["status"] == 404 and "never-opened" in body["detail"]
        assert (
            'repro_gateway_errors_total{code="unknown-session"} 1' in metrics
        )

    def test_nonexistent_node_path_is_typed_400(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                opened = await client.open_session(
                    "alice", "bob", "doc-1", DOCUMENT_XML, seed=7
                )
                bad = await client.apply_edits(
                    "alice", "bob", "doc-1",
                    [{"op": "delete", "path": [99, 99]}],
                )
                # The rejection is atomic: the session still applies
                # good scripts against its unchanged document.
                good = await client.apply_edits(
                    "alice", "bob", "doc-1", RETITLE
                )
                metrics = await client.metrics_text()
                return opened, bad, good, metrics
            finally:
                await client.close()

        opened, bad, good, metrics = run(go())
        assert opened.status == 200
        assert bad.status == 400
        assert bad.error_code == "bad-edit"
        assert "no node at" in bad.json()["detail"]
        assert good.status == 200, good.body
        assert 'repro_gateway_errors_total{code="bad-edit"} 1' in metrics

    def test_malformed_wire_script_is_typed_400(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                await client.open_session(
                    "alice", "bob", "doc-1", DOCUMENT_XML
                )
                return await client.apply_edits(
                    "alice", "bob", "doc-1",
                    [{"op": "rename", "path": [0]}],
                )
            finally:
                await client.close()

        reply = run(go())
        assert reply.status == 400 and reply.error_code == "bad-edit"

    def test_requires_exactly_one_of_document_or_edits(self, gateway):
        async def go():
            client = GatewayClient(gateway.host, gateway.port)
            try:
                neither = await client.post_json("/exchange", {
                    "sender": "alice", "receiver": "bob",
                    "document_id": "doc-1",
                })
                both = await client.post_json("/exchange", {
                    "sender": "alice", "receiver": "bob",
                    "document_id": "doc-1",
                    "document": DOCUMENT_XML, "edits": RETITLE,
                })
                return neither, both
            finally:
                await client.close()

        neither, both = run(go())
        assert neither.status == 400
        assert neither.error_code == "bad-request"
        assert both.status == 400 and both.error_code == "bad-request"


class TestSessionEviction:
    def test_lru_eviction_counts_and_types(self):
        harness = make_gateway(session_limit=2)
        try:
            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    for name in ("doc-a", "doc-b", "doc-c"):
                        reply = await client.open_session(
                            "alice", "bob", name, DOCUMENT_XML
                        )
                        assert reply.status == 200, reply.body
                    # doc-a was least recently used: evicted.
                    evicted = await client.apply_edits(
                        "alice", "bob", "doc-a", RETITLE
                    )
                    survivor = await client.apply_edits(
                        "alice", "bob", "doc-b", RETITLE
                    )
                    stats = (await client.request("GET", "/stats")).json()
                    metrics = await client.metrics_text()
                    return evicted, survivor, stats, metrics
                finally:
                    await client.close()

            evicted, survivor, stats, metrics = run(go())
            assert evicted.status == 404
            assert evicted.error_code == "unknown-session"
            assert survivor.status == 200, survivor.body
            assert stats["sessions"] == {
                "live": 2, "opened": 3, "evicted": 1,
            }
            assert (
                'repro_gateway_incremental_total{event="evicted"} 1'
                in metrics
            )
            assert (
                'repro_gateway_incremental_total{event="opened"} 3'
                in metrics
            )
        finally:
            harness.stop()

    def test_reopening_replaces_without_eviction(self):
        harness = make_gateway(session_limit=2)
        try:
            async def go():
                client = GatewayClient(harness.host, harness.port)
                try:
                    for name in ("doc-a", "doc-b", "doc-a"):
                        assert (await client.open_session(
                            "alice", "bob", name, DOCUMENT_XML
                        )).status == 200
                    stats = (await client.request("GET", "/stats")).json()
                    return stats
                finally:
                    await client.close()

            stats = run(go())
            assert stats["sessions"]["live"] == 2
            assert stats["sessions"]["evicted"] == 0
        finally:
            harness.stop()
