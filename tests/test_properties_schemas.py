"""Property-based tests over randomly built schemas.

Random schemas stress the format converters and the generator in ways
the hand-written fixtures cannot:

- XML Schema_int emit → parse → compile preserves every type's language;
- DTD emit → parse preserves languages (on the DTD-expressible subset);
- generated instances always validate against their schema;
- schema self-compatibility ((s → s) per Section 6) holds universally.
"""

from __future__ import annotations

import random

from hypothesis import assume, given, settings, strategies as st

from repro.automata.ops import language_equal, regex_to_dfa
from repro.automata.symbols import Alphabet
from repro.schema import InstanceGenerator, SchemaBuilder, is_instance
from repro.schema.generator import min_instance_sizes
from repro.schemarewrite import schema_safely_rewrites
from repro.xschema import compile_xschema, parse_xschema, schema_to_xschema

LABELS = ["l1", "l2", "l3", "l4"]
FUNCTIONS = ["s1", "s2"]


@st.composite
def schemas(draw):
    """Random flat-ish schemas over a fixed vocabulary.

    Content models use each symbol at most once (so they are
    one-unambiguous by construction) and leaf labels are data-typed,
    guaranteeing finite instances.
    """
    builder = SchemaBuilder()
    n_labels = draw(st.integers(2, len(LABELS)))
    labels = LABELS[:n_labels]
    n_functions = draw(st.integers(0, len(FUNCTIONS)))
    functions = FUNCTIONS[:n_functions]

    # Leaf labels: all but the first are data.
    for label in labels[1:]:
        builder.element(label, "data")
    for name in functions:
        output_label = draw(st.sampled_from(labels[1:]))
        builder.function(name, "data", "%s*" % output_label)

    # The root's content: a random one-unambiguous composition.
    candidates = labels[1:] + functions
    draw_count = draw(st.integers(1, len(candidates)))
    chosen = draw(
        st.permutations(candidates)
    )[:draw_count]
    parts = []
    for symbol in chosen:
        suffix = draw(st.sampled_from(["", "*", "?", "+"]))
        parts.append(symbol + suffix)
    builder.element(labels[0], ".".join(parts))
    builder.root(labels[0])
    return builder.build()


class TestFormatRoundTrips:
    @given(schemas())
    @settings(max_examples=60, deadline=None)
    def test_xschema_roundtrip_preserves_languages(self, schema):
        back = compile_xschema(parse_xschema(schema_to_xschema(schema)))
        alphabet = Alphabet.closure(
            schema.alphabet_symbols(), back.alphabet_symbols()
        )
        for label, expr in schema.label_types.items():
            assert language_equal(
                regex_to_dfa(expr, alphabet),
                regex_to_dfa(back.label_types[label], alphabet),
            ), label
        for name, signature in schema.functions.items():
            other = back.functions[name]
            assert language_equal(
                regex_to_dfa(signature.input_type, alphabet),
                regex_to_dfa(other.input_type, alphabet),
            )
            assert language_equal(
                regex_to_dfa(signature.output_type, alphabet),
                regex_to_dfa(other.output_type, alphabet),
            )
        assert back.root == schema.root

    @given(schemas())
    @settings(max_examples=60, deadline=None)
    def test_dtd_roundtrip_preserves_languages(self, schema):
        from repro.errors import SchemaError
        from repro.schema.dtd import parse_dtd, schema_to_dtd

        try:
            dtd = schema_to_dtd(schema)
        except SchemaError:
            assume(False)  # schema uses DTD-inexpressible features
            return
        back = parse_dtd(dtd, root=schema.root)
        alphabet = Alphabet.closure(
            schema.alphabet_symbols(), back.alphabet_symbols()
        )
        for label, expr in schema.label_types.items():
            assert language_equal(
                regex_to_dfa(expr, alphabet),
                regex_to_dfa(back.label_types[label], alphabet),
            ), label


class TestGeneratorProperties:
    @given(schemas(), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_generated_instances_validate(self, schema, seed):
        generator = InstanceGenerator(schema, random.Random(seed), max_depth=5)
        document = generator.document()
        assert is_instance(document, schema), document.pretty()

    @given(schemas())
    @settings(max_examples=60, deadline=None)
    def test_min_sizes_are_finite_and_achieved(self, schema):
        import math

        sizes = min_instance_sizes(schema)
        root = schema.root
        assert sizes[root] < math.inf
        generator = InstanceGenerator(schema, random.Random(0), max_depth=0)
        document = generator.document()
        # Depth budget 0 forces cheapest completions everywhere: the
        # generated instance realizes the fixpoint size exactly.
        assert document.size() == sizes[root]


class TestSelfCompatibility:
    @given(schemas())
    @settings(max_examples=40, deadline=None)
    def test_every_schema_rewrites_into_itself(self, schema):
        report = schema_safely_rewrites(schema, schema, k=1)
        assert report.compatible, str(report)
