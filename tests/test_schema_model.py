"""Unit tests for the schema model (Definition 2 + Section 2.1)."""

import pytest

from repro.automata.symbols import DATA
from repro.errors import SchemaError
from repro.regex.ast import Alt, Atom, Empty
from repro.regex.parser import parse_regex
from repro.schema.model import (
    FunctionPattern,
    FunctionSignature,
    Schema,
    SchemaBuilder,
)


class TestBuilder:
    def test_paper_schema_star_builds(self, schema_star):
        assert schema_star.root == "newspaper"
        assert "Get_Temp" in schema_star.functions
        assert str(schema_star.type_of("newspaper")) == (
            "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"
        )

    def test_signatures_match_the_paper(self, schema_star):
        get_temp = schema_star.signature_of("Get_Temp")
        assert str(get_temp.input_type) == "city"
        assert str(get_temp.output_type) == "temp"
        timeout = schema_star.signature_of("TimeOut")
        assert str(timeout.output_type) == "(exhibit | performance)*"

    def test_duplicate_label_rejected(self):
        builder = SchemaBuilder().element("a", "data")
        with pytest.raises(SchemaError):
            builder.element("a", "data")

    def test_duplicate_function_rejected(self):
        builder = SchemaBuilder().function("f", "data", "data")
        with pytest.raises(SchemaError):
            builder.function("f", "data", "data")

    def test_pattern_function_name_clash_rejected(self):
        builder = SchemaBuilder().function("f", "data", "data")
        with pytest.raises(SchemaError):
            builder.pattern("f", "data", "data")

    def test_undeclared_root_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().element("a", "data").root("b").build()

    def test_strict_mode_rejects_undeclared_symbols(self):
        builder = SchemaBuilder().element("a", "b.c")
        with pytest.raises(SchemaError) as info:
            builder.build(strict=True)
        assert "b" in str(info.value) and "c" in str(info.value)

    def test_lenient_mode_tolerates_them(self):
        schema = SchemaBuilder().element("a", "b.c").build(strict=False)
        assert schema.type_of("a") is not None

    def test_schema_star_needs_lenient_mode(self):
        # (*) mentions `performance` without declaring it, like the paper.
        builder = (
            SchemaBuilder()
            .element("x", "data")
            .function("TimeOut", "data", "(x | performance)*")
        )
        with pytest.raises(SchemaError):
            builder.build(strict=True)


class TestAccessors:
    def test_type_of_unknown_label(self, schema_star):
        assert schema_star.type_of("nope") is None

    def test_signature_of_pattern(self):
        schema = (
            SchemaBuilder()
            .element("t", "data")
            .pattern("P", "t", "t")
            .build()
        )
        assert schema.signature_of("P") is not None
        assert schema.input_type("P") == Atom("t")

    def test_alphabet_symbols_cover_everything(self, schema_star):
        symbols = schema_star.alphabet_symbols()
        for expected in (
            "newspaper", "title", "Get_Temp", "TimeOut", "performance", DATA
        ):
            assert expected in symbols

    def test_with_root(self, schema_star):
        rerooted = schema_star.with_root("exhibit")
        assert rerooted.root == "exhibit"
        assert schema_star.root == "newspaper"
        with pytest.raises(SchemaError):
            schema_star.with_root("missing")


class TestPatterns:
    def make_pattern_schema(self, predicate):
        return (
            SchemaBuilder()
            .element("city", "data")
            .element("temp", "data")
            .element("page", "Forecast | temp")
            .function("Get_Temp", "city", "temp")
            .function("Bad_Sig", "data", "data")
            .pattern("Forecast", "city", "temp", predicate)
            .build()
        )

    def test_admits_checks_name_and_signature(self):
        schema = self.make_pattern_schema(lambda name: name.startswith("Get"))
        pattern = schema.patterns["Forecast"]
        get_temp_sig = schema.signature_of("Get_Temp")
        assert pattern.admits("Get_Temp", get_temp_sig)
        assert not pattern.admits("Other", get_temp_sig)  # name predicate
        assert not pattern.admits("Get_X", schema.signature_of("Bad_Sig"))
        assert not pattern.admits("Get_X", None)  # unknown signature

    def test_matching_patterns(self):
        schema = self.make_pattern_schema(lambda _name: True)
        found = schema.matching_patterns(
            "Whatever", schema.signature_of("Get_Temp")
        )
        assert found == frozenset({"Forecast"})

    def test_desugar_substitutes_candidates(self):
        schema = self.make_pattern_schema(lambda _name: True)
        desugared = schema.desugar_patterns(
            ["Get_Temp", "Bad_Sig"], schema.signature_of
        )
        page_type = desugared.label_types["page"]
        assert isinstance(page_type, Alt)
        rendered = str(page_type)
        assert "Get_Temp" in rendered
        assert "Bad_Sig" not in rendered  # wrong signature
        assert not desugared.patterns

    def test_desugar_with_no_match_is_empty_language(self):
        schema = self.make_pattern_schema(lambda _name: False)
        desugared = schema.desugar_patterns(["Get_Temp"], schema.signature_of)
        page_type = desugared.label_types["page"]
        # Forecast collapses to empty; page becomes just `temp`.
        assert "temp" in str(page_type)
        assert "Forecast" not in str(page_type)

    def test_desugared_candidates_inherit_signature(self):
        schema = self.make_pattern_schema(lambda _name: True)

        def lookup(name):
            if name == "External":
                return FunctionSignature(
                    parse_regex("city"), parse_regex("temp")
                )
            return schema.signature_of(name)

        desugared = schema.desugar_patterns(["External"], lookup)
        assert "External" in desugared.functions
