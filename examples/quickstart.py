"""Quickstart: the paper's newspaper example, end to end.

Builds the intensional document of Figure 2.a, the three schemas of
Section 2, a simulated service fabric, and walks through the paper's
storyline:

1. the document is already an instance of schema (*);
2. it *safely* rewrites into schema (**) by invoking Get_Temp and
   keeping TimeOut intensional;
3. it only *possibly* rewrites into schema (***) — success depends on
   what TimeOut actually returns.

Run:  python examples/quickstart.py
"""

from repro import (
    FunctionSignature,
    RewriteEngine,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    is_instance,
    parse_regex,
)
from repro.errors import NoSafeRewritingError
from repro.workloads import newspaper


def build_registry() -> ServiceRegistry:
    """Simulated endpoints for the two services of Figure 2."""
    forecast = Service("http://www.forecast.com/soap", "urn:xmethods-weather")
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
        side_effect_free=True,
    )
    timeout = Service("http://www.timeout.com/paris", "urn:timeout-program")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(
            (el("exhibit", el("title", "Picasso"), el("date", "04/11")),)
        ),
    )
    registry = ServiceRegistry()
    registry.register(forecast)
    registry.register(timeout)
    return registry


def main() -> None:
    doc = newspaper.document()
    star, star2, star3 = (
        newspaper.schema_star(),
        newspaper.schema_star2(),
        newspaper.schema_star3(),
    )
    registry = build_registry()

    print("The intensional newspaper document (Figure 2.a):")
    print(doc.pretty())
    print()
    print("Its XML serialization (Section 7 syntax):")
    print(doc.to_xml())
    print()
    print("instance of (*)  :", is_instance(doc, star))
    print("instance of (**) :", is_instance(doc, star2))
    print()

    # --- safe rewriting into (**) ------------------------------------
    engine = RewriteEngine(target_schema=star2, sender_schema=star, k=1)
    result = engine.rewrite(doc, registry.make_invoker())
    print("Safe rewriting into (**): invoked %s" % result.log.invoked)
    print(result.document.pretty())
    assert is_instance(result.document, star2, star)
    print()

    # --- (***) is not safely reachable --------------------------------
    strict = RewriteEngine(target_schema=star3, sender_schema=star, k=1)
    try:
        strict.rewrite(doc, registry.make_invoker())
    except NoSafeRewritingError as error:
        print("Safe rewriting into (***) correctly refused:")
        print("  %s" % error)
    print()

    # --- ... but a possible rewriting exists ---------------------------
    optimistic = RewriteEngine(
        target_schema=star3, sender_schema=star, k=1, mode="possible"
    )
    result3 = optimistic.rewrite(doc, registry.make_invoker())
    print(
        "Possible rewriting into (***) succeeded (TimeOut was lucky): "
        "invoked %s" % result3.log.invoked
    )
    print(result3.document.pretty())
    assert is_instance(result3.document, star3, star)


if __name__ == "__main__":
    main()
