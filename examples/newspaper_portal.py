"""The Figure 1 exchange scenario: peers, agreements, wire transfers.

A newspaper peer stores the intensional front page; three readers agree
on different exchange schemas, spanning the paper's whole materialization
spectrum:

- ``archive`` accepts schema (*): the document travels fully intensional
  (smallest sender effort, receiver refreshes data itself);
- ``browser`` accepts schema (**): the temperature must be materialized,
  the exhibit listing may stay a call (the hybrid of the introduction);
- ``printer`` cannot run any service: it requires fully extensional
  data, which the sender can only deliver with a *possible* rewriting
  (TimeOut's signature admits performances).

Run:  python examples/newspaper_portal.py
"""

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    SchemaBuilder,
    Service,
    constant_responder,
    el,
    parse_regex,
)
from repro.workloads import newspaper


def build_services():
    forecast = Service("http://www.forecast.com/soap", "urn:xmethods-weather")
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    timeout = Service("http://www.timeout.com/paris", "urn:timeout-program")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(
            (el("exhibit", el("title", "Picasso"), el("date", "04/11")),
             el("exhibit", el("title", "Rodin"), el("date", "04/12")))
        ),
    )
    return forecast, timeout


def fully_extensional_schema():
    """What the printer accepts: no function nodes anywhere."""
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.temp.exhibit*")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.date")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build(strict=False)
    )


def main() -> None:
    star = newspaper.schema_star()
    sender = AXMLPeer("newspaper", star)
    for service in build_services():
        sender.registry.register(service)
    sender.repository.store("frontpage", newspaper.document())

    receivers = {
        "archive": (AXMLPeer("archive", star), star, "safe"),
        "browser": (AXMLPeer("browser", newspaper.schema_star2()),
                    newspaper.schema_star2(), "safe"),
        "printer": (AXMLPeer("printer", fully_extensional_schema()),
                    fully_extensional_schema(), "possible"),
    }

    network = PeerNetwork()
    network.add_peer(sender)
    for name, (peer, agreement, mode) in receivers.items():
        network.add_peer(peer)
        network.agree("newspaper", name, agreement)

    print("%-10s %-6s %-8s %-10s %s" % (
        "receiver", "calls", "bytes", "accepted", "intensional parts left"))
    for name, (peer, _agreement, mode) in receivers.items():
        sender.mode = mode  # the printer needs the possible fallback
        receipt = network.send("newspaper", name, "frontpage")
        remaining = (
            peer.repository.get("frontpage").function_count()
            if receipt.accepted else "-"
        )
        print("%-10s %-6s %-8s %-10s %s" % (
            name, receipt.calls_materialized, receipt.bytes_on_wire,
            receipt.accepted, remaining))

    print()
    print("What the browser received (temp materialized, TimeOut kept):")
    print(receivers["browser"][0].repository.get("frontpage").pretty())
    print()
    print("What the printer received (fully extensional):")
    print(receivers["printer"][0].repository.get("frontpage").pretty())


if __name__ == "__main__":
    main()
