"""Security-driven materialization (Introduction + Section 2.1).

Three policies from the paper, demonstrated on live objects:

1. **Receiver refuses foreign calls** — the receiver only trusts calls to
   functions on its allow-list; the helpful sender materializes the rest
   before sending.
2. **Function patterns with UDDIF ∧ InACL** — the exchange schema allows
   *any* forecast-shaped function, provided it is registered in the UDDI
   directory and the client holds access rights; we show the same
   document accepted or rejected as the predicates change.
3. **Non-invocable functions** — a UDDI-style service directory whose
   ``Probe`` calls must remain intensional ("the origin of the
   information is what is truly requested").

Run:  python examples/secure_exchange.py
"""

from repro import (
    AccessControlList,
    FunctionSignature,
    RewriteEngine,
    Service,
    ServiceRegistry,
    constant_responder,
    el,
    is_instance,
    parse_regex,
)
from repro.schema.patterns import allow_only, conjunction
from repro.services.predicates import in_acl, uddif
from repro.workloads import newspaper, scenarios


def build_registry() -> ServiceRegistry:
    registry = ServiceRegistry()
    forecast = Service("http://www.forecast.com/soap", "urn:w")
    forecast.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    timeout = Service("http://www.timeout.com/paris", "urn:t")
    timeout.add_operation(
        "TimeOut",
        FunctionSignature(
            parse_regex("data"), parse_regex("(exhibit | performance)*")
        ),
        constant_responder(
            (el("exhibit", el("title", "P"), el("date", "d")),)
        ),
    )
    registry.register(forecast)
    registry.register(timeout)
    return registry


def demo_allow_list() -> None:
    print("=== 1. Receiver allow-list forces materialization ===")
    registry = build_registry()
    doc = newspaper.document()
    # The receiver trusts only TimeOut; the agreed schema therefore uses
    # (**): Get_Temp must be gone by the time the document ships.
    engine = RewriteEngine(
        newspaper.schema_star2(), newspaper.schema_star(), k=1,
        policy=allow_only(["Get_Temp", "TimeOut", "Get_Date"]),
    )
    result = engine.rewrite(doc, registry.make_invoker())
    print("sender invoked:", result.log.invoked)
    print("calls left in the document:",
          [fc.name for _p, fc in result.document.function_nodes()])
    print()


def demo_function_patterns() -> None:
    print("=== 2. Function patterns: UDDIF and InACL ===")
    registry = build_registry()
    acl = AccessControlList().grant("reader", "Get_Temp")

    # The paper's Forecast pattern: any function with signature
    # city -> temp whose name passes UDDIF ∧ InACL.
    for principal in ("reader", "stranger"):
        predicate = conjunction(uddif(registry), in_acl(acl, principal))
        schema = newspaper.pattern_schema(predicate)
        ok = is_instance(newspaper.document(), schema)
        print(
            "principal %-9s -> document %s"
            % (principal, "accepted (Get_Temp matches Forecast)" if ok
               else "rejected (pattern predicate fails)")
        )
    print()


def demo_non_invocable() -> None:
    print("=== 3. Non-invocable probes stay intensional ===")
    scenario = scenarios.service_directory(entries=2)
    engine = RewriteEngine(
        scenario.exchange_schema, scenario.sender_schema, k=1,
        policy=scenario.policy,
    )
    result = engine.rewrite(scenario.document, scenario.registry.make_invoker())
    print("probes fired:", scenario.registry.total_calls())
    print("probes still embedded:", result.document.function_count())
    print(result.document.pretty())


def main() -> None:
    demo_allow_list()
    demo_function_patterns()
    demo_non_invocable()


if __name__ == "__main__":
    main()
