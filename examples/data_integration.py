"""Data integration: the warehouse / mediator spectrum (Conclusion).

"The control of whether to materialize data or not provides some
flexible form of integration, that is a hybrid of the warehouse model
(all is materialized) and the mediator model (nothing is)."

A mediator document integrates three sources as intensional views:
stock quotes, weather, and a product catalog.  Exchanging it under
different schemas slides along the spectrum:

- *mediator* agreement: every view stays a call (always fresh, zero
  integration work up front);
- *warehouse* agreement: every view is materialized (snapshot
  semantics, receiver needs no service access);
- *hybrid* agreement: volatile quotes stay intensional, slow-moving
  catalog data is materialized.

The example also demonstrates the negotiator (conclusion extension):
given all three agreements as offers, the sender picks per preference,
and UDDI-style search locates a provider by the *type* of data needed.

Run:  python examples/data_integration.py
"""

from repro import (
    AXMLPeer,
    FunctionSignature,
    PeerNetwork,
    SchemaBuilder,
    Service,
    constant_responder,
    el,
    negotiate,
    parse_regex,
)
from repro.doc.builder import call
from repro.doc.document import Document


def schema(view: str) -> "SchemaBuilder":
    """The integration schema; `view` picks the materialization level.

    view='mediator'  -> calls required everywhere
    view='warehouse' -> data required everywhere
    view='hybrid'    -> fresh quotes, materialized catalog + weather
    """
    contents = {
        "mediator": ("Get_Quote", "Get_Temp", "Get_Products"),
        "warehouse": ("quote", "temp", "product*"),
        "hybrid": ("Get_Quote", "temp", "product*"),
    }[view]
    return (
        SchemaBuilder()
        .element("dashboard", ".".join(contents))
        .element("quote", "data")
        .element("temp", "data")
        .element("product", "data")
        .element("symbol", "data")
        .element("city", "data")
        .function("Get_Quote", "symbol", "quote")
        .function("Get_Temp", "city", "temp")
        .function("Get_Products", "data", "product*")
        .root("dashboard")
        .build()
    )


def sender_schema():
    # The integrator stores pure mediator documents (every view is a
    # call); a looser sender schema would make the intensional offers
    # non-negotiable, since rewriting can materialize but never
    # *un*-materialize data.
    return (
        SchemaBuilder()
        .element("dashboard", "Get_Quote.Get_Temp.Get_Products")
        .element("quote", "data")
        .element("temp", "data")
        .element("product", "data")
        .element("symbol", "data")
        .element("city", "data")
        .function("Get_Quote", "symbol", "quote")
        .function("Get_Temp", "city", "temp")
        .function("Get_Products", "data", "product*")
        .root("dashboard")
        .build()
    )


def build_sources():
    quotes = Service("http://quotes", "urn:q")
    quotes.add_operation(
        "Get_Quote",
        FunctionSignature(parse_regex("symbol"), parse_regex("quote")),
        constant_responder((el("quote", "101.2"),)),
    )
    weather = Service("http://weather", "urn:w")
    weather.add_operation(
        "Get_Temp",
        FunctionSignature(parse_regex("city"), parse_regex("temp")),
        constant_responder((el("temp", "15"),)),
    )
    catalog = Service("http://catalog", "urn:c")
    catalog.add_operation(
        "Get_Products",
        FunctionSignature(parse_regex("data"), parse_regex("product*")),
        constant_responder((el("product", "laptop"), el("product", "phone"))),
    )
    return quotes, weather, catalog


def main() -> None:
    mediator_doc = Document(
        el("dashboard",
           call("Get_Quote", el("symbol", "ACME")),
           call("Get_Temp", el("city", "Paris")),
           call("Get_Products", el("symbol", "x") if False else "all"))
    )

    integrator = AXMLPeer("integrator", sender_schema())
    for source in build_sources():
        integrator.registry.register(source)
    integrator.repository.store("dashboard", mediator_doc)

    network = PeerNetwork()
    network.add_peer(integrator)
    print("%-11s %-6s %-7s %s" % ("agreement", "calls", "bytes", "views left intensional"))
    for view in ("mediator", "hybrid", "warehouse"):
        peer = AXMLPeer(view, schema(view))
        network.add_peer(peer)
        network.agree("integrator", view, schema(view))
        receipt = network.send("integrator", view, "dashboard")
        remaining = peer.repository.get("dashboard").function_count()
        print("%-11s %-6d %-7d %d" % (
            view, receipt.calls_materialized, receipt.bytes_on_wire, remaining))

    # --- negotiation: the sender picks among the receiver's offers ------
    offers = [schema("warehouse"), schema("hybrid"), schema("mediator")]
    for preference in ("intensional", "extensional"):
        outcome = negotiate(sender_schema(), offers, k=1,
                            preference=preference)
        label = ["warehouse", "hybrid", "mediator"][offers.index(outcome.agreed)]
        print("negotiator (%s preference) picks: %s" % (preference, label))

    # --- UDDI-style search: who can provide product data? ----------------
    found = integrator.registry.find_providers(parse_regex("product*"))
    print("providers of product*:",
          [op.name for _service, op in found])


if __name__ == "__main__":
    main()
