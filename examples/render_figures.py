"""Regenerate the paper's automata figures as Graphviz DOT files.

Writes, into ``figures/`` (created next to the working directory):

- ``fig4_awk.dot``             — the expansion automaton A_w^1;
- ``fig5_complement_star2.dot``— the complete complement of (**);
- ``fig6_product_star2.dot``   — the marked product (safe into (**));
- ``fig7_complement_star3.dot``— the complement of (***);
- ``fig8_product_star3.dot``   — the marked product (unsafe into (***));
- ``fig10_target_star3.dot``   — the target automaton of (***);
- ``fig12_lazy_star2.dot``     — the lazily explored product (pruned).

Render with Graphviz, e.g. ``dot -Tpng figures/fig6_product_star2.dot``.

Run:  python examples/render_figures.py [output-dir]
"""

import os
import sys

from repro.automata.dfa import complete, determinize
from repro.automata.dot import dfa_to_dot, expansion_to_dot, product_to_dot
from repro.automata.glushkov import glushkov_nfa
from repro.regex.parser import parse_regex
from repro.rewriting.expansion import build_expansion
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe, problem_alphabet, target_complement

WORD = ("title", "date", "Get_Temp", "TimeOut")
OUTPUTS = {
    "Get_Temp": parse_regex("temp"),
    "TimeOut": parse_regex("(exhibit | performance)*"),
}
TARGET2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
TARGET3 = parse_regex("title.date.temp.exhibit*")


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(out_dir, exist_ok=True)

    figures = {}

    expansion = build_expansion(WORD, OUTPUTS, k=1)
    figures["fig4_awk.dot"] = expansion_to_dot(
        expansion, "Figure 4: A_w^1 for title.date.Get_Temp.TimeOut"
    )

    alphabet = problem_alphabet(WORD, OUTPUTS, TARGET2)
    figures["fig5_complement_star2.dot"] = dfa_to_dot(
        target_complement(TARGET2, alphabet),
        "Figure 5: complement of (**)",
    )
    figures["fig7_complement_star3.dot"] = dfa_to_dot(
        target_complement(TARGET3, problem_alphabet(WORD, OUTPUTS, TARGET3)),
        "Figure 7: complement of (***)",
    )
    figures["fig10_target_star3.dot"] = dfa_to_dot(
        complete(determinize(
            glushkov_nfa(TARGET3), problem_alphabet(WORD, OUTPUTS, TARGET3)
        )),
        "Figure 10: automaton A for (***)",
    )

    safe2 = analyze_safe(WORD, OUTPUTS, TARGET2, k=1)
    figures["fig6_product_star2.dot"] = product_to_dot(
        safe2, "Figure 6: marked product for (**) — safe"
    )
    safe3 = analyze_safe(WORD, OUTPUTS, TARGET3, k=1)
    figures["fig8_product_star3.dot"] = product_to_dot(
        safe3, "Figure 8: marked product for (***) — unsafe"
    )
    lazy2 = analyze_safe_lazy(WORD, OUTPUTS, TARGET2, k=1)
    figures["fig12_lazy_star2.dot"] = product_to_dot(
        lazy2, "Figure 12: lazily explored product (pruned regions absent)"
    )

    for name, dot in figures.items():
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dot + "\n")
        print("wrote %s (%d nodes drawn)" % (path, dot.count("label=\"[") or dot.count("[label")))


if __name__ == "__main__":
    main()
