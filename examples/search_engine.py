"""Recursive service calls and the k-depth restriction (Section 3).

A search engine returns result URLs plus a ``Get_More`` handle while
results remain — the paper's canonical example of recursion through
intensional answers.  This example shows:

- *safe* rewriting into plain ``url*`` is impossible at any depth (the
  signature always admits one more handle);
- a *possible* rewriting exists, and the executor chases the handles —
  succeeding when k covers the actual number of pages and failing with a
  clean error when it does not.

Run:  python examples/search_engine.py
"""

from repro import RewriteEngine
from repro.errors import RewriteExecutionError
from repro.workloads import scenarios


def main() -> None:
    pages, per_page = 3, 2
    scenario = scenarios.search_engine(pages=pages, per_page=per_page)
    print("Query document:")
    print(scenario.document.pretty())
    print()

    safe_engine = RewriteEngine(
        scenario.exchange_schema, scenario.sender_schema, k=10
    )
    print(
        "Safe rewriting possible (even with k=10)?",
        safe_engine.can_rewrite(scenario.document),
    )
    print("  -> no: Get_More's signature may always return another handle.")
    print()

    for k in (2, pages + 1):
        scenario = scenarios.search_engine(pages=pages, per_page=per_page)
        engine = RewriteEngine(
            scenario.exchange_schema, scenario.sender_schema, k=k,
            mode="possible",
        )
        print("Chasing handles with k=%d ..." % k)
        try:
            result = engine.rewrite(
                scenario.document, scenario.registry.make_invoker()
            )
        except RewriteExecutionError as error:
            print("  failed at run time: %s" % error)
        else:
            urls = [child for child in result.document.root.children]
            print(
                "  success: %d urls, calls made: %s"
                % (len(urls), result.log.invoked)
            )
            print(
                "  dependency depths: %s"
                % [record.depth for record in result.log.records]
            )
        print()


if __name__ == "__main__":
    main()
