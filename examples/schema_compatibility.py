"""Schema compatibility and XML Schema_int publishing (Sections 6-7).

Two applications check, *before* exchanging anything, whether every
document the sender can produce will safely rewrite into the receiver's
exchange schema (Definition 6).  The receiver publishes its schema as an
XML Schema_int document; the sender parses it, compiles it, and runs the
compatibility check — the paper's claim "(*) safely rewrites into (**)
but not into (***)" falls out, with per-label diagnostics.

Run:  python examples/schema_compatibility.py
"""

from repro import compile_xschema, parse_xschema, schema_to_xschema
from repro import schema_safely_rewrites
from repro.workloads import newspaper


def main() -> None:
    sender = newspaper.schema_star()

    for name, receiver in (
        ("(**)", newspaper.schema_star2()),
        ("(***)", newspaper.schema_star3()),
    ):
        # The receiver publishes its exchange schema as XML Schema_int...
        published = schema_to_xschema(receiver)
        # ...and the sender re-parses and compiles it before checking.
        compiled = compile_xschema(parse_xschema(published))
        report = schema_safely_rewrites(sender, compiled, k=1)

        print("=== can every (*) document be sent under %s ? ===" % name)
        print(report)
        print()

    print("The published XML Schema_int for (**), as the receiver serves it:")
    print(schema_to_xschema(newspaper.schema_star2()))


if __name__ == "__main__":
    main()
