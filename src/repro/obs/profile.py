"""Deterministic call-tree profiles aggregated from tracer spans.

A raw trace answers "what happened on this run"; a *profile* answers
"where did the time go".  :func:`profile_spans` folds a list of span
dicts (live from a :class:`~repro.obs.trace.Tracer` or re-read from
JSONL) into a call tree keyed by *name path*: every span with the same
ancestry of span names lands in the same :class:`ProfileNode`, which
accumulates

- ``count`` — how many spans folded into the node,
- ``inclusive`` — total wall time including children,
- ``exclusive`` — ``inclusive`` minus the inclusive time of *direct
  children*, i.e. time spent in the node's own code.

Exclusive times telescope: summed over a subtree they equal the root's
inclusive time exactly, so the flame-style rendering's numbers are
internally consistent (this is asserted to 1% by the CLI acceptance
test — the slack only absorbs float rounding).

Every node also gets a **phase** from its span name — the pipeline
stages of the paper's cost model::

    compile      glushkov NFA construction, k-depth expansion
    determinize  subset construction, completion, minimization, views
    product      A_w^k x complement(target) product walk
    game         the marking-game fixpoint (safe, lazy, possible)
    materialize  invocation, scheduling, serialization round-trips
    other        orchestration (exchange/document/node), validation, ...

``Profile.phases()`` attributes each node's *exclusive* time to its
phase, so phase totals also sum to the walked roots' inclusive time.

Determinism: profiles are pure functions of the span dicts — orderings
are by span id and name, nothing reads a clock — so a run under
``SimulatedClock`` profiles byte-identically every time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Ordered pipeline phases (rendering order).
PHASES = ("compile", "determinize", "product", "game", "materialize", "other")

#: Span names (exact) mapped to phases.
_EXACT_PHASES = {
    "product": "product",
    "game": "game",
    "subset": "determinize",
    "invoke": "materialize",
}

#: compile.<kind> span kinds that are determinization work, not parsing.
_DETERMINIZE_KINDS = {
    "dfa", "comp", "bitdfa", "bitcomp", "bitdfaview", "bitcompview", "subset",
}


def phase_of(name: str) -> str:
    """The pipeline phase a span name belongs to."""
    exact = _EXACT_PHASES.get(name)
    if exact is not None:
        return exact
    if name.startswith("compile."):
        kind = name[len("compile."):]
        return "determinize" if kind in _DETERMINIZE_KINDS else "compile"
    if name.startswith("exec.") or name.startswith("transfer."):
        return "materialize"
    return "other"


class ProfileNode:
    """One name-path in the call tree, with aggregated timings."""

    __slots__ = ("name", "phase", "count", "inclusive", "exclusive",
                 "children")

    def __init__(self, name: str):
        self.name = name
        self.phase = phase_of(name)
        self.count = 0
        self.inclusive = 0.0
        self.exclusive = 0.0
        self.children: Dict[str, "ProfileNode"] = {}

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = ProfileNode(name)
        return node

    def sorted_children(self) -> List["ProfileNode"]:
        """Children hottest-first (ties broken by name for determinism)."""
        return sorted(
            self.children.values(), key=lambda n: (-n.inclusive, n.name)
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "phase": self.phase,
            "count": self.count,
            "inclusive": self.inclusive,
            "exclusive": self.exclusive,
            "children": [c.to_dict() for c in self.sorted_children()],
        }


class Profile:
    """The aggregated call-tree profile of one trace."""

    def __init__(self, roots: List[ProfileNode], total: float,
                 unfinished: int = 0):
        self.roots = roots
        self.total = total  #: summed inclusive time of the roots
        self.unfinished = unfinished  #: spans without an end time (skipped)

    # -- derived views -----------------------------------------------------

    def phases(self) -> Dict[str, float]:
        """Exclusive time attributed per phase; sums to :attr:`total`."""
        totals = {phase: 0.0 for phase in PHASES}

        def walk(node: ProfileNode) -> None:
            totals[node.phase] += node.exclusive
            for child in node.children.values():
                walk(child)

        for root in self.roots:
            walk(root)
        return totals

    def exclusive_sum(self) -> float:
        """Total exclusive time over every node (telescopes to total)."""
        return sum(self.phases().values())

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "total_seconds": self.total,
            "unfinished_spans": self.unfinished,
            "phases": self.phases(),
            "roots": [root.to_dict() for root in self.roots],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self, max_depth: Optional[int] = None) -> str:
        """The flame-style tree plus the per-phase attribution table."""
        lines: List[str] = []
        total = self.total or 1.0

        def emit(node: ProfileNode, prefix: str, is_last: bool,
                 is_root: bool, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            connector = "" if is_root else ("└─ " if is_last else "├─ ")
            lines.append(
                "%s%s%s  incl=%s excl=%s calls=%d %5.1f%%  [%s]"
                % (
                    prefix, connector, node.name,
                    _seconds(node.inclusive), _seconds(node.exclusive),
                    node.count, 100.0 * node.inclusive / total, node.phase,
                )
            )
            child_prefix = prefix if is_root else (
                prefix + ("   " if is_last else "│  ")
            )
            kids = node.sorted_children()
            for index, kid in enumerate(kids):
                emit(kid, child_prefix, index == len(kids) - 1, False,
                     depth + 1)

        for index, root in enumerate(self.roots):
            emit(root, "", index == len(self.roots) - 1, True, 0)

        lines.append("")
        lines.append("phase attribution (exclusive time):")
        for phase, seconds in self.phases().items():
            lines.append(
                "  %-12s %s %5.1f%%"
                % (phase, _seconds(seconds), 100.0 * seconds / total)
            )
        lines.append("  %-12s %s" % ("total", _seconds(self.total)))
        if self.unfinished:
            lines.append("  (%d unfinished span(s) skipped)" % self.unfinished)
        return "\n".join(lines)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return "%8.3fs " % value
    return "%8.3fms" % (value * 1000.0)


def profile_spans(spans: Sequence[dict]) -> Profile:
    """Fold span dicts into a :class:`Profile`.

    Spans whose parent is absent from the set (rotated out of the ring
    buffer, or explicitly rootless) are promoted to roots, mirroring
    :func:`repro.obs.trace.render_span_dicts`.  Unfinished spans are
    skipped and counted, never guessed at.
    """
    finished = [s for s in spans if s.get("duration") is not None]
    unfinished = len(spans) - len(finished)
    by_id = {span["span_id"]: span for span in finished}

    children: Dict[Optional[int], List[dict]] = {}
    for span in finished:
        parent = span.get("parent_id")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span["span_id"])

    roots_by_name: Dict[str, ProfileNode] = {}
    root_nodes: List[ProfileNode] = []
    total = 0.0

    def fold(span: dict, node: ProfileNode) -> None:
        duration = float(span["duration"])
        node.count += 1
        node.inclusive += duration
        kids = children.get(span["span_id"], [])
        child_time = 0.0
        for kid in kids:
            child_time += float(kid["duration"])
            fold(kid, node.child(kid["name"]))
        # Clamp: clock skew between threads can make children appear
        # longer than the parent; exclusive time is never negative.
        node.exclusive += max(0.0, duration - child_time)

    for span in children.get(None, []):
        name = span["name"]
        node = roots_by_name.get(name)
        if node is None:
            node = roots_by_name[name] = ProfileNode(name)
            root_nodes.append(node)
        total += float(span["duration"])
        fold(span, node)

    root_nodes.sort(key=lambda n: (-n.inclusive, n.name))
    return Profile(root_nodes, total, unfinished)


def profile_tracer(tracer) -> Profile:
    """Profile a live tracer's finished spans."""
    return profile_spans([span.to_dict() for span in tracer.finished()])
