"""repro.obs — zero-dependency observability for the exchange pipeline.

Three pieces (see ``docs/OBSERVABILITY.md`` for the span taxonomy and
metric names):

- :mod:`repro.obs.trace` — hierarchical spans (``exchange → document →
  node → analysis/product/game/invoke``) with a pluggable clock, a
  ring-buffered in-memory sink, JSONL export and a tree renderer;
- :mod:`repro.obs.metrics` — counters / gauges / histograms with
  Prometheus-text, JSONL and human exports;
- :mod:`repro.obs.context` — process-wide installation with null-object
  defaults, so uninstrumented runs stay no-op-cheap.
"""

from repro.obs.context import install, metrics, observing, tracer, uninstall
from repro.obs.memory import (
    memory_snapshot,
    peak_rss_bytes,
    record_peak_gauge,
    traced_peak,
)
from repro.obs.metrics import (
    NULL_METRICS,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    WORK_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    record_work,
    work_snapshot,
)
from repro.obs.profile import Profile, ProfileNode, profile_spans, profile_tracer
from repro.obs.quantile import DEFAULT_QUANTILES, P2Quantile, QuantileSketch
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    render_span_dicts,
    spans_from_jsonl,
)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SpanEvent",
    "render_span_dicts", "spans_from_jsonl",
    "MetricsRegistry", "NullMetricsRegistry", "NULL_METRICS",
    "Counter", "Gauge", "Histogram", "SIZE_BUCKETS", "TIME_BUCKETS",
    "WORK_METRIC", "record_work", "work_snapshot",
    "Profile", "ProfileNode", "profile_spans", "profile_tracer",
    "P2Quantile", "QuantileSketch", "DEFAULT_QUANTILES",
    "install", "uninstall", "observing", "tracer", "metrics",
    "memory_snapshot", "peak_rss_bytes", "record_peak_gauge", "traced_peak",
]
