"""Process-wide installation of the tracer and metrics registry.

Instrumentation sites throughout the stack (engine, game solvers,
automata ops, resilient invoker, SOAP transport, peer network) call
:func:`tracer` / :func:`metrics` for the currently installed sinks.  By
default both are null objects, so an uninstrumented run pays only a
function call and a no-op per site.

Typical use::

    from repro import obs

    with obs.observing() as (tracer, metrics):
        network.send("alice", "bob", "front")
    tracer.export_jsonl("trace.jsonl")
    print(metrics.to_prometheus())

:func:`install` wires the tracer's profiling hook into the registry
(span durations become the ``repro_span_seconds`` histogram), so one
call lights up both signals.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

_state = {"tracer": NULL_TRACER, "metrics": NULL_METRICS}


def tracer():
    """The currently installed tracer (``NULL_TRACER`` by default)."""
    return _state["tracer"]


def metrics():
    """The currently installed metrics registry (null by default)."""
    return _state["metrics"]


def install(tracer=None, metrics=None, bridge: bool = True) -> Tuple:
    """Install a tracer and registry process-wide; returns ``(t, m)``.

    Omitted arguments get fresh defaults (a real :class:`Tracer` /
    :class:`MetricsRegistry`).  With ``bridge`` (the default) the
    tracer's span-end hook feeds durations into the registry — done at
    most once per (tracer, registry) pair, so re-installing is safe.
    """
    t = tracer if tracer is not None else Tracer()
    m = metrics if metrics is not None else MetricsRegistry()
    if (
        bridge
        and t.enabled
        and m.enabled
        and all(bridged is not m for bridged in t._bridged)
    ):
        t.add_hook(m.span_observer())
        t._bridged.append(m)
    _state["tracer"] = t
    _state["metrics"] = m
    return t, m


def uninstall() -> None:
    """Back to the null objects (tracing and metrics off)."""
    _state["tracer"] = NULL_TRACER
    _state["metrics"] = NULL_METRICS


@contextmanager
def observing(tracer=None, metrics=None, bridge: bool = True):
    """Scoped :func:`install`: restores the previous sinks on exit."""
    previous = dict(_state)
    pair = install(tracer, metrics, bridge=bridge)
    try:
        yield pair
    finally:
        _state.update(previous)
