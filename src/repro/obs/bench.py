"""`repro bench` — named benchmarks with deterministic work counters.

Each bench runs a hot path of the stack under a **fresh**
:class:`~repro.obs.metrics.MetricsRegistry` and a **fresh**
:class:`~repro.compile.cache.CompilationCache`, so the
``repro_work_total`` snapshot in its payload is a pure function of the
code and the inputs — byte-identical across invocations on any machine.
Wall-clock numbers ride along for humans but are *excluded* from
regression comparison (:func:`deterministic_view` strips them), which is
what lets CI diff trajectories without trusting runner speed.

Payloads follow the ``BENCH_*.json`` convention started by E23: one
flat, sorted JSON object per bench, written as ``BENCH_<name>.json``
into ``--out`` / ``$REPRO_BENCH_DIR`` / the repo root.  On top of the
descriptive fields every payload carries:

- ``work`` — the :func:`~repro.obs.metrics.work_snapshot` per
  configuration (deterministic; the regression differ's input),
- ``machine`` — a coarse host fingerprint (ignored by the differ),
- ``smoke`` — whether the reduced scenario set ran; payloads only diff
  against baselines with the *same* flag.

This module is deliberately not imported from ``repro.obs.__init__`` —
it pulls in the solvers and workloads, which the null-path observability
sites must never pay for.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.compile.cache import CompilationCache
from repro.compile.context import compiling
from repro.obs.context import observing
from repro.obs.metrics import MetricsRegistry, record_work, work_snapshot
from repro.obs.quantile import DEFAULT_QUANTILES, QuantileSketch, exact_quantile
from repro.obs.trace import NULL_TRACER

#: Wall-clock (and otherwise machine-dependent) keys, stripped by
#: :func:`deterministic_view` before payloads are compared.
EXCLUDED_SUFFIXES = ("_seconds", "_ns", "_fraction", "_bytes", "_per_s")
EXCLUDED_KEYS = ("machine", "speedup", "within_budget")


# ---------------------------------------------------------------------------
# Shared scenario family (the E4/E22/E23 game workload)
# ---------------------------------------------------------------------------


def _outputs():
    from repro.regex.parser import parse_regex

    return {
        "Get_Temp": parse_regex("temp"),
        "TimeOut": parse_regex("(exhibit | performance)*"),
        "Get_Date": parse_regex("date"),
        "Get_Review": parse_regex("(review.date?)*"),
        "Deep": parse_regex("(exhibit.Deep?){0,4}"),
    }


def _scenarios(smoke: bool):
    """(name, word, target, k) — E23's family, trimmed for runner use."""
    from repro.regex.parser import parse_regex

    fig6 = ("fig6", ("title", "date", "Get_Temp", "TimeOut"),
            parse_regex("title.date.temp.(TimeOut | exhibit*)"), 1)
    if smoke:
        return [fig6]
    return [
        fig6,
        ("repeat32", ("title", "date") + ("Get_Temp", "TimeOut") * 12
         + ("Deep",) * 3,
         parse_regex(
             "title.date.(temp.(TimeOut | (exhibit.performance?){0,32}))*"
             ".(exhibit | Deep?)*"
         ), 2),
        ("repeat48",
         ("title", "date") + ("Get_Temp", "TimeOut", "Get_Review") * 10
         + ("Deep",) * 4,
         parse_regex(
             "title.date.(temp.(TimeOut | (exhibit.performance?){0,48})"
             ".(review.date?)*)*.(exhibit | Deep?)*"
         ), 2),
    ]


def _solve_all(scenarios, outputs, cc) -> List[Tuple[bool, bool, bool]]:
    """Every solver's verdict per scenario (the agreement check)."""
    from repro.rewriting.lazy import analyze_safe_lazy
    from repro.rewriting.possible import analyze_possible
    from repro.rewriting.safe import analyze_safe

    verdicts = []
    for _name, word, target, k in scenarios:
        safe = analyze_safe(word, outputs, target, k=k, compile_cache=cc)
        lazy = analyze_safe_lazy(word, outputs, target, k=k, compile_cache=cc)
        possible = analyze_possible(word, outputs, target, k=k,
                                    compile_cache=cc)
        verdicts.append((safe.exists, lazy.exists, possible.exists))
    return verdicts


# ---------------------------------------------------------------------------
# The benches
# ---------------------------------------------------------------------------


def bench_game_work(smoke: bool = False) -> dict:
    """Product+game work counters and wall time on both automata cores.

    The deterministic payload is the per-core ``repro_work_total``
    snapshot — fixpoint pops, frontier sizes, product nodes — exactly
    what an algorithmic regression moves even when the machine hides it
    in the noise.  Verdict agreement across all three solvers and both
    cores is asserted in-band.
    """
    from repro.automata.core import BITSET, DICT, using_core

    outputs = _outputs()
    scenarios = _scenarios(smoke)
    work: Dict[str, Dict[str, float]] = {}
    seconds: Dict[str, float] = {}
    verdicts: Dict[str, list] = {}
    for label, core in (("dict", DICT), ("bitset", BITSET)):
        registry = MetricsRegistry()
        with using_core(core), observing(NULL_TRACER, registry):
            cc = CompilationCache()
            started = time.perf_counter()
            verdicts[label] = _solve_all(scenarios, outputs, cc)
            seconds[label] = time.perf_counter() - started
        work[label] = work_snapshot(registry)
    return {
        "benchmark": "game_work",
        "experiment": "E23-counters",
        "hot_path": "safe+lazy+possible product+game on both cores, fresh "
                    "compile caches; work counters from repro_work_total",
        "scenarios": [name for name, _w, _t, _k in scenarios],
        "verdicts_equal": verdicts["dict"] == verdicts["bitset"],
        "dict_seconds": round(seconds["dict"], 6),
        "bitset_seconds": round(seconds["bitset"], 6),
        "work": work,
    }


def bench_obs_overhead(smoke: bool = False) -> dict:
    """E16 re-verified: null-path obs overhead under both cores.

    The deterministic part is the touch census — spans and events one
    wide exchange emits per core (counted under ``SimulatedClock``, so
    byte-stable).  The wall-derived per-touch cost, estimated overhead
    and fraction are recorded for humans and stripped by the differ.
    """
    from repro import (
        AXMLPeer,
        FunctionSignature,
        PeerNetwork,
        ResiliencePolicy,
        Service,
        constant_responder,
        el,
        parse_regex,
    )
    from repro.automata.core import BITSET, DICT, using_core
    from repro.obs.metrics import NULL_METRICS
    from repro.obs.trace import Tracer
    from repro.services.resilience import SimulatedClock
    from repro.workloads import newspaper

    width = 4 if smoke else 12

    def run_exchange():
        star = newspaper.wide_schema_star(width)
        star2 = newspaper.wide_schema_star2(width)
        alice = AXMLPeer("alice", star, resilience=ResiliencePolicy())
        forecast = Service(newspaper.FORECAST_ENDPOINT, newspaper.FORECAST_NS)
        forecast.add_operation(
            "Get_Temp",
            FunctionSignature(parse_regex("city"), parse_regex("temp")),
            constant_responder((el("temp", "15"),)),
        )
        alice.registry.register(forecast)
        bob = AXMLPeer("bob", star2)
        network = PeerNetwork()
        network.add_peer(alice)
        network.add_peer(bob)
        network.agree("alice", "bob", star2)
        alice.repository.store("front", newspaper.wide_document(width))
        receipt = network.send("alice", "bob", "front")
        assert receipt.accepted
        return receipt

    payload: dict = {
        "benchmark": "obs_overhead",
        "experiment": "E16",
        "hot_path": "wide exchange (width %d) with null sinks; touch census "
                    "traced under SimulatedClock" % width,
        "max_overhead_fraction": 0.05,
        "width": width,
    }
    work: Dict[str, Dict[str, float]] = {}
    within = True
    for label, core in (("dict", DICT), ("bitset", BITSET)):
        with using_core(core):
            # Wall time of the exchange with the default null sinks.
            with compiling(CompilationCache()):
                run_exchange()  # warm (compiles paid once)
            with compiling(CompilationCache()):
                run_exchange()
                started = time.perf_counter()
                run_exchange()
                exchange_seconds = time.perf_counter() - started
            # Deterministic touch census + work counters, traced.
            tracer = Tracer(clock=SimulatedClock(), capacity=100_000)
            registry = MetricsRegistry()
            with compiling(CompilationCache()), observing(tracer, registry):
                run_exchange()
            spans = tracer.finished()
            events = sum(len(span.events) for span in spans)
            payload["%s_spans_per_exchange" % label] = len(spans)
            payload["%s_events_per_exchange" % label] = events
            work[label] = work_snapshot(registry)
        # Per-touch null cost (core-independent; measured once per core
        # anyway so each fraction is self-consistent).
        iterations = 20_000 if smoke else 200_000
        started = time.perf_counter()
        for _ in range(iterations):
            with NULL_TRACER.span("node", word="w") as span:
                span.set(mode="safe")
            NULL_TRACER.event("attempt", n=1)
            NULL_METRICS.counter("c", "h").inc(function="f")
        per_touch = (time.perf_counter() - started) / iterations
        touches = len(spans) + events
        fraction = touches * per_touch / exchange_seconds
        payload["%s_exchange_seconds" % label] = round(exchange_seconds, 6)
        payload["%s_null_touch_seconds" % label] = round(per_touch, 9)
        payload["%s_overhead_fraction" % label] = round(fraction, 6)
        within = within and fraction < payload["max_overhead_fraction"]
    payload["within_budget"] = within
    payload["work"] = work
    return payload


def bench_quantile_sketch(smoke: bool = False) -> dict:
    """P² streaming quantiles vs. exact order statistics on seeded data.

    Error figures are deterministic (seeded streams, pure estimator);
    the observe-loop wall time rides along for humans.
    """
    n = 2_000 if smoke else 20_000
    registry = MetricsRegistry()
    payload: dict = {
        "benchmark": "quantile_sketch",
        "experiment": "P2",
        "hot_path": "QuantileSketch.observe on seeded streams vs "
                    "exact_quantile ground truth",
        "observations_per_stream": n,
        "quantiles": list(DEFAULT_QUANTILES),
    }
    streams: List[Tuple[str, Callable[[random.Random], float]]] = [
        ("uniform", lambda rng: rng.uniform(0.0, 100.0)),
        ("exponential", lambda rng: rng.expovariate(0.1)),
        ("lognormal", lambda rng: rng.lognormvariate(0.0, 1.0)),
    ]
    total_seconds = 0.0
    for name, draw in streams:
        rng = random.Random(2003)
        values = [draw(rng) for _ in range(n)]
        sketch = QuantileSketch()
        started = time.perf_counter()
        for value in values:
            sketch.observe(value)
        total_seconds += time.perf_counter() - started
        ordered = sorted(values)
        for q in DEFAULT_QUANTILES:
            exact = exact_quantile(ordered, q)
            estimate = sketch.quantile(q)
            error = abs(estimate - exact) / (abs(exact) or 1.0)
            payload["%s_p%g_rel_error" % (name, q * 100)] = round(error, 6)
        record_work(registry, "quantile", {"observations": n}, stream=name)
    payload["observe_seconds"] = round(total_seconds, 6)
    payload["work"] = {"default": work_snapshot(registry)}
    return payload


def bench_compile_cache(smoke: bool = False) -> dict:
    """Cold vs. warm sweep through a fresh compilation cache.

    Hit/miss/build counts are deterministic; the cold/warm wall times
    quantify what the cache buys on this machine.
    """
    outputs = _outputs()
    scenarios = _scenarios(smoke)
    registry = MetricsRegistry()
    with observing(NULL_TRACER, registry):
        cc = CompilationCache()
        started = time.perf_counter()
        cold_verdicts = _solve_all(scenarios, outputs, cc)
        cold = time.perf_counter() - started
        # Warm wall time is best-of-3 (the sweep count is fixed, so the
        # work counters stay deterministic; only the minimum is noisy).
        warm = None
        for _ in range(3):
            started = time.perf_counter()
            warm_verdicts = _solve_all(scenarios, outputs, cc)
            elapsed = time.perf_counter() - started
            warm = elapsed if warm is None else min(warm, elapsed)
    stats = cc.stats()
    return {
        "benchmark": "compile_cache",
        "experiment": "E22-counters",
        "hot_path": "cold then warm solver sweep against one fresh "
                    "CompilationCache",
        "scenarios": [name for name, _w, _t, _k in scenarios],
        "verdicts_stable": cold_verdicts == warm_verdicts,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_entries": stats.entries,
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "work": {"default": work_snapshot(registry)},
    }


def bench_gateway_load(smoke: bool = False) -> dict:
    """Closed-loop load benchmark against the exchange gateway (E25).

    Concurrent ``POST /exchange`` storm plus an overload/shed phase;
    the gateway must return byte-identical documents to the direct
    library path.  Implemented in :mod:`repro.gateway.loadgen`
    (imported lazily — the gateway pulls in asyncio machinery the
    other benches never need).
    """
    from repro.gateway.loadgen import run_load

    return run_load(smoke=smoke)


def bench_incremental(smoke: bool = False) -> dict:
    """Edit-storm incremental enforcement vs full re-enforcement (E26).

    Seeded single-article edits over magazine documents at two sizes;
    every incremental receipt must be byte-identical to a fresh full
    enforcement, with a re-analysis footprint set by edit locality, not
    document size.  Implemented in :mod:`repro.incremental.bench`
    (imported lazily, like the gateway bench).
    """
    from repro.incremental.bench import run_incremental

    return run_incremental(smoke=smoke)


def bench_stream_enforce(smoke: bool = False) -> dict:
    """Streaming vs DOM enforcement over one byte stream (E27).

    Same magazine workload at three sizes; the streaming pass must
    reproduce the DOM pass's bytes and receipt exactly while its
    tracemalloc peak grows sub-linearly in the input.  Implemented in
    :mod:`repro.stream.bench` (imported lazily, like the gateway bench).
    """
    from repro.stream.bench import run_stream_enforce

    return run_stream_enforce(smoke=smoke)


#: name -> bench callable; ``repro bench`` runs these in this order.
BENCHES: Dict[str, Callable[[bool], dict]] = {
    "game_work": bench_game_work,
    "obs_overhead": bench_obs_overhead,
    "quantile_sketch": bench_quantile_sketch,
    "compile_cache": bench_compile_cache,
    "gateway_load": bench_gateway_load,
    "incremental": bench_incremental,
    "stream_enforce": bench_stream_enforce,
}


# ---------------------------------------------------------------------------
# Payload plumbing: fingerprint, write, deterministic view, diff
# ---------------------------------------------------------------------------


def machine_fingerprint() -> dict:
    """Coarse host identity recorded in payloads (ignored by the differ)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def run_bench(name: str, smoke: bool = False) -> dict:
    """Run one named bench; returns the complete payload."""
    try:
        bench = BENCHES[name]
    except KeyError:
        raise ValueError(
            "unknown bench %r (have: %s)" % (name, ", ".join(sorted(BENCHES)))
        )
    payload = bench(smoke)
    payload["smoke"] = bool(smoke)
    payload["machine"] = machine_fingerprint()
    return payload


def bench_filename(name: str) -> str:
    return "BENCH_%s.json" % name


def write_payload(payload: dict, out_dir: str) -> str:
    """Write ``BENCH_<name>.json`` (sorted keys, trailing newline)."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(payload["benchmark"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def deterministic_view(payload: dict) -> dict:
    """The payload minus wall-clock and host-dependent entries.

    Two invocations of the same bench on the same code must produce
    byte-identical JSON serializations of this view — that invariant is
    what the trajectory differ (and the acceptance test) relies on.
    """

    def strip(value):
        if isinstance(value, dict):
            return {
                key: strip(sub)
                for key, sub in value.items()
                if key not in EXCLUDED_KEYS
                and not any(key.endswith(suffix) for suffix in EXCLUDED_SUFFIXES)
            }
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return strip(payload)


def _flatten(value, prefix: str = "") -> Dict[str, object]:
    if isinstance(value, dict):
        flat: Dict[str, object] = {}
        for key in sorted(value):
            flat.update(_flatten(value[key], "%s.%s" % (prefix, key)
                                 if prefix else str(key)))
        return flat
    return {prefix: value}


def diff_payloads(baseline: dict, current: dict,
                  threshold: float = 0.10) -> List[str]:
    """Counter regressions of *current* against *baseline*.

    Both payloads are reduced to their deterministic views and
    flattened; a regression is a numeric value that **grew** beyond
    ``threshold`` (work counters measure cost: more pops, more builds,
    bigger frontiers = worse), or a True boolean that turned False
    (verdict agreement, budget compliance).  Improvements never flag.
    """
    before = _flatten(deterministic_view(baseline))
    after = _flatten(deterministic_view(current))
    regressions: List[str] = []
    for key, old in sorted(before.items()):
        new = after.get(key)
        if new is None:
            continue
        if isinstance(old, bool) or isinstance(new, bool):
            if old is True and new is False:
                regressions.append("%s: True -> False" % key)
            continue
        if isinstance(old, (int, float)) and isinstance(new, (int, float)):
            bound = old * (1.0 + threshold) if old > 0 else threshold
            if new > bound:
                regressions.append(
                    "%s: %s -> %s (+%.1f%%, threshold %.0f%%)"
                    % (key, old, new,
                       100.0 * (new - old) / old if old else float("inf"),
                       threshold * 100.0)
                )
    return regressions


def compare_against(payload: dict, baseline_path: str,
                    threshold: float = 0.10) -> Optional[List[str]]:
    """Diff a fresh payload against a baseline file, if comparable.

    Returns None when there is no baseline or the smoke flags differ
    (full runs and smoke runs count different scenario sets); otherwise
    the — possibly empty — regression list.
    """
    if not os.path.exists(baseline_path):
        return None
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if bool(baseline.get("smoke")) != bool(payload.get("smoke")):
        return None
    return diff_payloads(baseline, payload, threshold=threshold)
