"""Hierarchical tracing for the exchange pipeline.

An exchange has highly variable cost: the ``A_w^k × complement(target)``
product blows up with ``k`` and the alphabet, the resilient invocation
layer retries and backs off, and the SOAP round-trip serializes every
call.  :class:`Tracer` makes that cost visible as a tree of *spans* —
``exchange → document → node → analysis/product/game/invoke`` — each
carrying wall time from a pluggable clock plus free-form attributes
(word length, product states, cache hit/miss, bytes on wire, ...).

Design constraints, in order:

- **no-op-cheap**: the default tracer is :data:`NULL_TRACER`, whose
  ``span()`` hands back one shared context manager that does nothing.
  Hot paths can also pre-check ``tracer.enabled`` before computing
  attribute values.
- **deterministic**: span ids are sequential, timestamps come from the
  injected clock, so a run under
  :class:`repro.services.resilience.SimulatedClock` produces
  byte-identical traces.
- **bounded**: finished spans land in a ring buffer (oldest dropped,
  ``dropped`` counts them), so a long-lived peer cannot leak memory.
- **concurrency-safe**: the open-span stack is *per thread*
  (``threading.local``), so spans produced by the concurrent
  materialization scheduler's workers never interleave parents; id
  allocation and the sink are lock-protected.  Worker spans attach under
  a chosen parent with the explicit ``parent_id=`` argument of
  :meth:`Tracer.span` / :meth:`Tracer.start`, since a pool thread does
  not inherit the submitting thread's stack.

Export formats: JSONL (one span object per line, re-importable with
:func:`spans_from_jsonl`) and a human span tree
(:meth:`Tracer.render_tree`, also available on raw JSONL dicts through
:func:`render_span_dicts` — this is what ``repro.cli stats`` prints).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Distinguishes "parent_id not given" from an explicit ``parent_id=None``
#: (which forces a root span).
_UNSET = object()


class PerfClock:
    """The default wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


@dataclass
class SpanEvent:
    """A timestamped point annotation inside a span (retry, fault, ...)."""

    name: str
    time: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "time": self.time,
                "attributes": dict(self.attributes)}


@dataclass
class Span:
    """One timed operation in the exchange hierarchy."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    attributes: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }


class _ActiveSpan:
    """The context manager :meth:`Tracer.span` returns."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict,
                 parent_id=_UNSET):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._parent_id = parent_id
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(
            self._name, parent_id=self._parent_id, **self._attributes
        )
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None and self._span is not None:
            self._span.set(error=str(exc) or exc_type.__name__)
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Produces hierarchical spans into a ring-buffered in-memory sink.

    Args:
        clock: anything with a ``now() -> float``; defaults to
            :class:`PerfClock`.  Pass a ``SimulatedClock`` for
            deterministic traces.
        capacity: ring buffer size for finished spans.
        on_span_end: optional profiling hook called with each finished
            :class:`Span` (benchmarks use it to assert where time went);
            more hooks can be added with :meth:`add_hook`.
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        capacity: int = 4096,
        on_span_end: Optional[Callable[[Span], None]] = None,
    ):
        self.clock = clock if clock is not None else PerfClock()
        self.capacity = capacity
        self._finished: deque = deque(maxlen=capacity)
        self._local = threading.local()  # per-thread open-span stack
        self._lock = threading.Lock()  # guards ids, sink, hooks, dropped
        self._next_id = 1
        self._hooks: List[Callable[[Span], None]] = []
        self._bridged: List[object] = []  # metrics registries already wired
        self.dropped = 0
        if on_span_end is not None:
            self._hooks.append(on_span_end)

    def _stack(self) -> List[Span]:
        """The calling thread's own open-span stack."""
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    # -- producing spans --------------------------------------------------

    def span(self, name: str, parent_id=_UNSET, **attributes) -> _ActiveSpan:
        """``with tracer.span("node", word="a.b") as span: ...``

        ``parent_id`` overrides stack-based parenting — pool workers use
        it to attach their spans under the scheduling thread's span.
        """
        return _ActiveSpan(self, name, attributes, parent_id)

    def start(self, name: str, parent_id=_UNSET, **attributes) -> Span:
        """Open a span without a ``with`` block (pair with :meth:`finish`)."""
        stack = self._stack()
        if parent_id is _UNSET:
            parent = stack[-1].span_id if stack else None
        else:
            parent = parent_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(span_id, parent, name, self.clock.now(), dict(attributes))
        stack.append(span)
        return span

    def finish(self, span: Optional[Span]) -> None:
        """Close a span: timestamp it, sink it, run the profiling hooks."""
        if span is None or getattr(span, "_sunk", False):
            return  # finished twice; keep the first sink entry authoritative
        span.end = self.clock.now()
        stack = self._stack()
        try:
            stack.remove(span)
        except ValueError:
            pass  # finished off its opening thread; still sink it once
        with self._lock:
            if getattr(span, "_sunk", False):
                return  # lost a concurrent double-finish race
            span._sunk = True  # type: ignore[attr-defined]
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)
            hooks = tuple(self._hooks)
        for hook in hooks:  # outside the lock: hooks may be slow
            hook(span)

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def event(self, name: str, **attributes) -> None:
        """Annotate the current span; silently dropped with no span open."""
        span = self.current()
        if span is not None:
            span.events.append(SpanEvent(name, self.clock.now(),
                                         dict(attributes)))

    def add_hook(self, hook: Callable[[Span], None]) -> None:
        """Register another per-span-end profiling callback."""
        with self._lock:
            self._hooks.append(hook)

    # -- the sink ---------------------------------------------------------

    def finished(self) -> Tuple[Span, ...]:
        """Finished spans, oldest first (creation order ≠ finish order:
        parents finish after their children)."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    # -- export -----------------------------------------------------------

    def export_jsonl(self, destination) -> int:
        """Write finished spans as JSON Lines; returns the span count.

        ``destination`` is a path or a file-like object.  Spans are
        written in span-id (creation) order so traces diff cleanly.
        """
        spans = sorted(self._finished, key=lambda span: span.span_id)
        lines = [json.dumps(span.to_dict(), sort_keys=True) for span in spans]
        text = "\n".join(lines) + ("\n" if lines else "")
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(lines)

    def render_tree(self) -> str:
        """The human span tree (what ``repro.cli stats`` shows)."""
        return render_span_dicts(
            [span.to_dict() for span in self._finished]
        )


class _NullSpan:
    """The shared do-nothing span of :class:`NullTracer`."""

    __slots__ = ()
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The null-object default: every operation is a cheap no-op."""

    enabled = False
    dropped = 0
    clock = None

    def span(self, _name: str, **_attributes) -> _NullSpan:
        return _NULL_SPAN

    def start(self, _name: str, **_attributes) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, _span) -> None:
        pass

    def current(self) -> None:
        return None

    def event(self, _name: str, **_attributes) -> None:
        pass

    def add_hook(self, _hook) -> None:
        pass

    def finished(self) -> Tuple[()]:
        return ()

    def clear(self) -> None:
        pass

    def export_jsonl(self, _destination) -> int:
        return 0

    def render_tree(self) -> str:
        return ""


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# JSONL round-trip and tree rendering
# ---------------------------------------------------------------------------


def spans_from_jsonl(text: str) -> List[dict]:
    """Parse a JSONL trace back into span dicts (blank lines ignored)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _format_duration(duration: Optional[float]) -> str:
    if duration is None:
        return "?"
    if duration >= 1.0:
        return "%.3fs" % duration
    return "%.3fms" % (duration * 1000.0)


def _format_attributes(attributes: dict) -> str:
    return " ".join(
        "%s=%s" % (key, value) for key, value in sorted(attributes.items())
    )


def render_span_dicts(spans: Sequence[dict]) -> str:
    """Render span dicts (live or re-read from JSONL) as a tree.

    Spans whose parent is not in the set (e.g. rotated out of the ring
    buffer) are promoted to roots, so partial traces still render.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span["span_id"])

    lines: List[str] = []

    def emit(span: dict, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        attributes = _format_attributes(span.get("attributes", {}))
        lines.append(
            "%s%s%s (%s)%s"
            % (
                prefix,
                connector,
                span["name"],
                _format_duration(span.get("duration")),
                " " + attributes if attributes else "",
            )
        )
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "│  ")
        )
        kids = children.get(span["span_id"], [])
        for index, kid in enumerate(kids):
            emit(kid, child_prefix, index == len(kids) - 1, False)

    roots = children.get(None, [])
    for index, root in enumerate(roots):
        emit(root, "", index == len(roots) - 1, True)
    return "\n".join(lines)
