"""Streaming quantile estimation: the P² algorithm (Jain & Chlamtac).

The gateway's admission control needs p50/p95/p99 latency, and the
metrics registry must stay zero-dependency, bounded and deterministic —
which rules out keeping every observation.  The P² ("piecewise
parabolic") estimator maintains **five markers** per tracked quantile:
the minimum, the maximum, the quantile itself, and the midpoints between
them.  Each observation shifts marker *positions* by one and then nudges
marker *heights* toward their desired positions with a parabolic
interpolation (falling back to linear when the parabola would leave the
bracketing heights).  Memory is O(1), update cost is a handful of float
operations, and — crucially for the trajectory runner — the estimate is
a pure function of the observation *sequence*: same stream, same
estimate, byte for byte.

Accuracy: for the first five observations the estimate is *exact* (the
buffer is sorted); afterwards the classic P² error bounds apply —
typically well under a percentile of drift on unimodal data
(``tests/test_obs_quantile.py`` checks against sorted-sample ground
truth on seeded uniform, exponential and lognormal streams).

:class:`QuantileSketch` bundles one :class:`P2Quantile` per tracked
quantile behind a single ``observe`` and serializes losslessly
(:meth:`QuantileSketch.to_dict` / :meth:`from_dict`), which is how
histogram sketches survive the metrics JSONL round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: What `MetricsRegistry` histograms track by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def exact_quantile(ordered: Sequence[float], q: float) -> float:
    """The linearly interpolated quantile of an already *sorted* sample.

    This is the ground truth the sketch is judged against (and the exact
    answer returned while fewer than five observations have arrived).
    """
    if not ordered:
        raise ValueError("no observations")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class P2Quantile:
    """One streaming quantile estimate via the P² algorithm.

    Deterministic, O(1) memory, exact until five observations.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions",
                 "_desired", "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be strictly between 0 and 1")
        self.q = float(q)
        self.count = 0
        self._initial: List[float] = []  # first five observations, sorted
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: Tuple[float, ...] = (
            0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0
        )

    # -- updates -----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._initial.append(value)
            self._initial.sort()
            if self.count == 5:
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
                ]
            return

        heights, positions = self._heights, self._positions
        # 1. Find the cell the observation falls into (extending the
        #    extreme markers when it falls outside them).
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        # 2. Shift the positions above the cell, advance the desired ones.
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        # 3. Nudge the three interior markers toward their desired spots.
        for index in (1, 2, 3):
            drift = self._desired[index] - positions[index]
            if (drift >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (h[index + 1] - h[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (h[index] - h[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        other = index + int(step)
        return h[index] + step * (h[other] - h[index]) / (n[other] - n[index])

    # -- reads -------------------------------------------------------------

    def value(self) -> Optional[float]:
        """The current estimate; None before the first observation."""
        if self.count == 0:
            return None
        if self.count <= 5:
            return exact_quantile(self._initial, self.q)
        return self._heights[2]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "q": self.q,
            "count": self.count,
            "initial": list(self._initial),
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "P2Quantile":
        estimator = cls(record["q"])
        estimator.count = int(record["count"])
        estimator._initial = [float(v) for v in record["initial"]]
        estimator._heights = [float(v) for v in record["heights"]]
        estimator._positions = [float(v) for v in record["positions"]]
        estimator._desired = [float(v) for v in record["desired"]]
        return estimator


class QuantileSketch:
    """A bundle of P² estimators sharing one observation stream."""

    __slots__ = ("_estimators",)

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self._estimators = {float(q): P2Quantile(q) for q in quantiles}

    @property
    def count(self) -> int:
        for estimator in self._estimators.values():
            return estimator.count
        return 0

    @property
    def tracked(self) -> Tuple[float, ...]:
        return tuple(self._estimators)

    def observe(self, value: float) -> None:
        for estimator in self._estimators.values():
            estimator.observe(value)

    def quantile(self, q: float) -> Optional[float]:
        """The estimate for one tracked quantile (KeyError otherwise)."""
        return self._estimators[float(q)].value()

    def quantiles(self) -> Dict[float, Optional[float]]:
        """Every tracked quantile's current estimate, sorted by q."""
        return {
            q: self._estimators[q].value() for q in sorted(self._estimators)
        }

    def to_dict(self) -> dict:
        return {
            "quantiles": [
                self._estimators[q].to_dict() for q in sorted(self._estimators)
            ]
        }

    @classmethod
    def from_dict(cls, record: dict) -> "QuantileSketch":
        sketch = cls(quantiles=())
        for entry in record.get("quantiles", ()):
            estimator = P2Quantile.from_dict(entry)
            sketch._estimators[estimator.q] = estimator
        return sketch
