"""Counters, gauges and histograms for the exchange pipeline.

A :class:`MetricsRegistry` owns named metrics with optional labels and
exports them as Prometheus text format (``to_prometheus``), JSON Lines
(``to_jsonl`` / ``from_jsonl`` round-trip) and a human ``summary()``.
Everything is zero-dependency and deterministic: metrics are plain
dictionaries, export orders are sorted, and nothing reads a clock —
timing series are fed from span durations via :meth:`span_observer`
(see :func:`repro.obs.context.install`, which bridges a tracer's
profiling hook into the registry).

The default registry is :data:`NULL_METRICS`, a null object whose
``inc``/``set``/``observe`` do nothing, so uninstrumented runs pay only
a method call per site; hot loops can pre-check ``metrics.enabled``.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .quantile import DEFAULT_QUANTILES, QuantileSketch

#: Generic size buckets (product nodes, word lengths, bytes, ...).
SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                1000.0, 2500.0, 5000.0, 10000.0)
#: Latency buckets in seconds (spans, rewrites, invocations).
TIME_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: A label set, normalized for use as a dict key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in pairs
    )


class Counter:
    """A monotonically increasing value, optionally per label set.

    Updates are lock-protected: read-modify-write on a plain dict would
    lose increments under the concurrent scheduler's worker threads.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label set."""
        return sum(self.values.values())

    def samples(self) -> Iterable[Tuple[str, float]]:
        for key in sorted(self.values):
            yield self.name + _format_labels(key), self.values[key]


class Gauge(Counter):
    """A value that can go up and down (breaker states, cache sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self.values[_label_key(labels)] = float(value)


class Histogram:
    """Cumulative-bucket histogram, Prometheus-style.

    ``counts[key]`` has one slot per finite bucket bound **plus a final
    +Inf overflow slot** — an observation above every finite bound lands
    only there.  The +Inf slot is cumulative like the others, so it
    always equals ``totals[key]``; keeping it explicit means the bucket
    vector alone carries the full distribution (earlier versions derived
    +Inf from ``totals`` at export time, and over-max observations
    silently vanished from ``counts``).

    Each label set also feeds a streaming :class:`QuantileSketch`
    (p50/p95/p99 by default), readable via :meth:`quantile` /
    :meth:`quantiles` and preserved through the JSONL round-trip.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = SIZE_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.counts: Dict[LabelKey, List[int]] = {}
        self.sums: Dict[LabelKey, float] = {}
        self.totals: Dict[LabelKey, int] = {}
        self.sketches: Dict[LabelKey, QuantileSketch] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self.counts.get(key)
            if counts is None:
                counts = self.counts[key] = [0] * (len(self.buckets) + 1)
                self.sums[key] = 0.0
                self.totals[key] = 0
                self.sketches[key] = QuantileSketch()
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            counts[-1] += 1  # the +Inf bucket catches everything
            self.sums[key] += value
            self.totals[key] += 1
            self.sketches[key].observe(value)

    def count(self, **labels) -> int:
        return self.totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self.sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels) -> Optional[float]:
        """The streaming estimate of quantile ``q`` for one label set."""
        sketch = self.sketches.get(_label_key(labels))
        if sketch is None:
            return None
        return sketch.quantile(q)

    def quantiles(self, **labels) -> Dict[float, Optional[float]]:
        """All tracked quantile estimates for one label set."""
        sketch = self.sketches.get(_label_key(labels))
        if sketch is None:
            return {q: None for q in DEFAULT_QUANTILES}
        return sketch.quantiles()

    def samples(self) -> Iterable[Tuple[str, float]]:
        for key in sorted(self.counts):
            cumulative = self.counts[key]
            for bound, count in zip(self.buckets, cumulative):
                yield (
                    self.name + "_bucket"
                    + _format_labels(key, (("le", _format_value(bound)),)),
                    float(count),
                )
            yield (
                self.name + "_bucket" + _format_labels(key, (("le", "+Inf"),)),
                float(cumulative[-1]),
            )
            yield self.name + "_sum" + _format_labels(key), self.sums[key]
            yield self.name + "_count" + _format_labels(key), float(
                self.totals[key]
            )


class MetricsRegistry:
    """Named metrics with Prometheus / JSONL / human exports."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # -- creation (memoized by name, safe to race) -------------------------

    def _get(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    "metric %r already registered as a %s" % (name, metric.kind)
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        return self._get(
            name,
            lambda: Histogram(name, help, buckets or SIZE_BUCKETS),
            "histogram",
        )

    def get(self, name: str):
        """Look a metric up without creating it."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- the tracer bridge -------------------------------------------------

    def span_observer(self) -> Callable:
        """A profiling hook feeding span durations into this registry.

        Installed on a :class:`repro.obs.trace.Tracer` it maintains
        ``repro_spans_total{name=...}`` and the
        ``repro_span_seconds{name=...}`` latency histogram — which is
        where rewrite latency, invocation latency and validation timing
        come from.
        """
        spans = self.counter("repro_spans_total", "Finished spans by name")
        seconds = self.histogram(
            "repro_span_seconds", "Span wall time by name", TIME_BUCKETS
        )

        def observe(span) -> None:
            spans.inc(name=span.name)
            duration = span.duration
            if duration is not None:
                seconds.observe(duration, name=span.name)

        return observe

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            for sample, value in metric.samples():
                lines.append("%s %s" % (sample, _format_value(value)))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonl(self) -> str:
        """One JSON object per (metric, label set); see :meth:`from_jsonl`."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                for key in sorted(metric.counts):
                    lines.append(json.dumps({
                        "name": name, "type": metric.kind,
                        "help": metric.help, "labels": dict(key),
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts[key]),
                        "sum": metric.sums[key], "count": metric.totals[key],
                        "sketch": metric.sketches[key].to_dict(),
                    }, sort_keys=True))
            else:
                for key in sorted(metric.values):
                    lines.append(json.dumps({
                        "name": name, "type": metric.kind,
                        "help": metric.help, "labels": dict(key),
                        "value": metric.values[key],
                    }, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_jsonl` output (round-trip)."""
        registry = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            name, labels = record["name"], record["labels"]
            if record["type"] == "histogram":
                histogram = registry.histogram(
                    name, record.get("help", ""),
                    tuple(record["buckets"]),
                )
                key = _label_key(labels)
                counts = list(record["counts"])
                if len(counts) == len(histogram.buckets):
                    # Legacy record without the explicit +Inf slot: the
                    # overflow bucket is cumulative, i.e. the total count.
                    counts.append(int(record["count"]))
                histogram.counts[key] = counts
                histogram.sums[key] = record["sum"]
                histogram.totals[key] = record["count"]
                if "sketch" in record:
                    histogram.sketches[key] = QuantileSketch.from_dict(
                        record["sketch"]
                    )
                else:
                    histogram.sketches[key] = QuantileSketch()
            elif record["type"] == "gauge":
                registry.gauge(name, record.get("help", "")).set(
                    record["value"], **labels
                )
            else:
                registry.counter(name, record.get("help", "")).inc(
                    record["value"], **labels
                )
        return registry

    def summary(self) -> str:
        """A compact human rendering (totals, histogram count/mean)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                count = sum(metric.totals.values())
                total = sum(metric.sums.values())
                mean = total / count if count else 0.0
                line = (
                    "%s: count=%d sum=%s mean=%s"
                    % (name, count, _format_value(round(total, 6)),
                       _format_value(round(mean, 6)))
                )
                if len(metric.sketches) == 1:
                    # Quantiles cannot be aggregated across label sets,
                    # so only a single-series histogram shows them.
                    (sketch,) = metric.sketches.values()
                    estimates = sketch.quantiles()
                    if all(v is not None for v in estimates.values()):
                        line += "".join(
                            " p%g=%s" % (q * 100, _format_value(round(v, 6)))
                            for q, v in estimates.items()
                        )
                lines.append(line)
            else:
                for key in sorted(metric.values):
                    label_text = _format_labels(key)
                    lines.append(
                        "%s%s: %s"
                        % (name, label_text,
                           _format_value(metric.values[key]))
                    )
        return "\n".join(lines)


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    kind = "null"

    def inc(self, _amount: float = 1.0, **_labels) -> None:
        pass

    def set(self, _value: float, **_labels) -> None:
        pass

    def observe(self, _value: float, **_labels) -> None:
        pass

    def value(self, **_labels) -> float:
        return 0.0

    def count(self, **_labels) -> int:
        return 0

    def sum(self, **_labels) -> float:  # noqa: A003 - mirrors Histogram
        return 0.0

    def quantile(self, _q: float, **_labels) -> None:
        return None

    def quantiles(self, **_labels) -> Dict[float, None]:
        return {q: None for q in DEFAULT_QUANTILES}


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """The null-object default registry: records nothing."""

    enabled = False

    def counter(self, name: str = "", help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str = "", help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str = "", help: str = "",
                  buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def get(self, _name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def span_observer(self) -> Callable:
        return lambda _span: None

    def to_prometheus(self) -> str:
        return ""

    def to_jsonl(self) -> str:
        return ""

    def summary(self) -> str:
        return ""


NULL_METRICS = NullMetricsRegistry()


#: The single counter carrying every algorithmic work figure.  Work
#: counters are *deterministic* — worklist pops, fixpoint iterations,
#: table builds — so equal inputs produce byte-equal values regardless of
#: machine speed, which is what lets `repro bench` detect regressions
#: without trusting wall-clock.
WORK_METRIC = "repro_work_total"


def record_work(registry, stage: str, counters: Mapping[str, float],
                **labels) -> None:
    """Report a batch of algorithmic work counters for one stage.

    Emits ``repro_work_total{stage=..., counter=..., **labels}`` on
    *registry* — one increment per (stage, counter) pair, called once
    per solve/build rather than per inner-loop step so the disabled-obs
    overhead stays amortized.  No-op on the null registry.
    """
    if not registry.enabled:
        return
    work = registry.counter(
        WORK_METRIC, "Deterministic algorithmic work by stage and counter"
    )
    for counter_name, amount in counters.items():
        if amount:
            work.inc(float(amount), stage=stage, counter=counter_name,
                     **labels)


def work_snapshot(registry) -> Dict[str, float]:
    """Flatten ``repro_work_total`` into ``{label-string: value}``.

    The keys are the Prometheus-style sample names (sorted), the values
    plain floats — exactly what a ``BENCH_*.json`` work-counter snapshot
    stores and what the trajectory differ compares.
    """
    work = registry.get(WORK_METRIC)
    if work is None:
        return {}
    return {sample: value for sample, value in work.samples()}
