"""Peak-memory observation: process high-water mark + tracemalloc bridge.

Two complementary views, both stdlib-only:

- :func:`peak_rss_bytes` — the process's resident-set high-water mark
  (``VmHWM`` from ``/proc/self/status``, falling back to
  ``resource.getrusage``).  Cheap, absolute, monotone over the process
  lifetime — the honest "how much memory did this run ever need" figure
  the streaming benchmark reports.
- :func:`traced_peak` — a ``tracemalloc`` window around one callable:
  Python-allocation peak attributable to just that code, comparable
  across runs even when the RSS high-water mark was set earlier.

:func:`memory_snapshot` bundles both for ``/stats`` payloads and bench
receipts; :func:`record_peak_gauge` publishes the high-water mark as the
``repro_peak_rss_bytes`` gauge when metrics are installed.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import context as obs

__all__ = [
    "memory_snapshot",
    "peak_rss_bytes",
    "record_peak_gauge",
    "traced_peak",
]


def _peak_from_proc() -> Optional[int]:
    """``VmHWM`` in bytes, where /proc exists (Linux)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def _peak_from_rusage() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    # Linux reports kilobytes, macOS bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set size, or ``None`` if unreadable."""
    peak = _peak_from_proc()
    return peak if peak is not None else _peak_from_rusage()


def traced_peak(run: Callable[[], Any]) -> Tuple[Any, int]:
    """Run a callable under tracemalloc; return (result, peak bytes).

    The peak covers only allocations made *during* the call (the window
    resets first).  When tracemalloc is already running — e.g. an outer
    profiling session — the existing trace is reused and only the peak
    counter is reset, so nesting is safe.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        result = run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if started_here:
            tracemalloc.stop()
    return result, peak


def record_peak_gauge() -> Optional[int]:
    """Publish the RSS high-water mark as ``repro_peak_rss_bytes``."""
    peak = peak_rss_bytes()
    metrics = obs.metrics()
    if peak is not None and metrics.enabled:
        metrics.gauge(
            "repro_peak_rss_bytes",
            "Process peak resident set size (high-water mark)",
        ).set(peak)
    return peak


def memory_snapshot() -> Dict[str, Any]:
    """The memory block for ``/stats`` payloads and bench receipts."""
    snapshot: Dict[str, Any] = {"peak_rss_bytes": peak_rss_bytes()}
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        snapshot["tracemalloc_current_bytes"] = current
        snapshot["tracemalloc_peak_bytes"] = peak
    return snapshot
