"""Typed edit scripts over intensional documents.

An *edit script* is a sequence of four primitive operations addressed by
node paths (tuples of child indices, as in :mod:`repro.doc.paths`):

- ``insert`` — plug a new subtree in as child ``path[-1]`` of the node
  at ``path[:-1]`` (later siblings shift right);
- ``delete`` — remove the subtree at ``path`` (later siblings shift
  left);
- ``replace`` — swap the subtree at ``path`` for another;
- ``update-call`` — replace the parameter forest of the function call
  at ``path`` (name and SOAP coordinates stay).

This is the update language the incremental enforcement session
(:mod:`repro.incremental.session`) consumes, and the JSON wire format
the gateway's edit-script exchange mode accepts: each edit serializes to
``{"op": ..., "path": [...], ...}`` with subtrees carried as Active XML
fragments (:func:`~repro.doc.xml_io.node_to_xml`).

Applying an edit validates its path against the *current* document and
raises a typed :class:`EditPathError` for dangling addresses —
mutating-document traffic routinely races its own edits, so a precise,
machine-readable rejection is part of the contract.  Application returns
the edit's *inverse* alongside the new tree, built from the very node
objects removed — undo then restores not just an equal tree but the
identical subtree objects, which is what lets the session's caches
recognize the state (see the invalidation property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.doc.document import Document
from repro.doc.nodes import (
    Element,
    FunctionCall,
    Node,
    Text,
    children_of,
    with_children,
)
from repro.doc.normalize import normalize_node
from repro.doc.paths import Path, get_node, replace_at, splice_at
from repro.doc.xml_io import node_from_xml, node_to_xml
from repro.errors import DocumentError, ReproError

#: The four primitive operations.
INSERT = "insert"
DELETE = "delete"
REPLACE = "replace"
UPDATE_CALL = "update-call"

OPS = (INSERT, DELETE, REPLACE, UPDATE_CALL)


class EditError(ReproError):
    """Base class for rejected edit scripts."""


class EditScriptError(EditError):
    """The script itself is malformed (unknown op, bad payload)."""


class EditPathError(EditError):
    """An edit addresses a path the current document does not have."""


@dataclass(frozen=True)
class DocEdit:
    """One primitive edit.

    ``node`` carries the inserted/replacement subtree (``insert`` /
    ``replace``) and ``params`` the new parameter forest
    (``update-call``); both are None for ``delete``.
    """

    op: str
    path: Path
    node: Node = None
    params: Tuple[Node, ...] = None

    def __post_init__(self):
        if self.op not in OPS:
            raise EditScriptError("unknown edit op %r" % (self.op,))
        if self.op in (INSERT, REPLACE) and self.node is None:
            raise EditScriptError("%s edit requires a node" % self.op)
        if self.op == UPDATE_CALL and self.params is None:
            raise EditScriptError("update-call edit requires params")
        if self.op in (INSERT, DELETE) and not self.path:
            raise EditScriptError("%s edit cannot address the root" % self.op)

    def __str__(self) -> str:
        return "%s@/%s" % (self.op, "/".join(str(i) for i in self.path))


def insert(path: Sequence[int], node: Node) -> DocEdit:
    return DocEdit(INSERT, tuple(path), node=node)


def delete(path: Sequence[int]) -> DocEdit:
    return DocEdit(DELETE, tuple(path))


def replace(path: Sequence[int], node: Node) -> DocEdit:
    return DocEdit(REPLACE, tuple(path), node=node)


def update_call(path: Sequence[int], params: Sequence[Node]) -> DocEdit:
    return DocEdit(UPDATE_CALL, tuple(path), params=tuple(params))


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------


def _guard_normal_children(parent: Node, op: str) -> None:
    """Reject an edit whose *result* would leave wire normal form.

    The inserted/replacement subtree is normalized on its own, so the
    only way an edit can break normal form is at the junction: a text
    child landing among siblings under an element (mixed content), or an
    empty text child that the next parse would silently drop.  Both are
    local to the edited parent, so this check costs O(children) — it
    never walks the subtree.
    """
    if not isinstance(parent, Element):
        return  # function-call params are individually wrapped
    kids = children_of(parent)
    texts = sum(1 for kid in kids if isinstance(kid, Text))
    if texts and len(kids) > 1:
        raise EditScriptError(
            "%s edit would create mixed content under <%s> "
            "(%d text node(s) among %d children)"
            % (op, parent.label, texts, len(kids))
        )
    if any(isinstance(kid, Text) and not kid.value for kid in kids):
        raise EditScriptError(
            "%s edit would leave an empty text child under <%s>, "
            "which does not survive an XML round-trip"
            % (op, parent.label)
        )


def _parent_and_index(root: Node, path: Path, op: str) -> Tuple[Node, int]:
    try:
        parent = get_node(root, path[:-1])
    except (IndexError, TypeError):
        raise EditPathError(
            "%s edit: no node at parent path /%s"
            % (op, "/".join(str(i) for i in path[:-1]))
        )
    return parent, path[-1]


def apply_edit(root: Node, edit: DocEdit) -> Tuple[Node, DocEdit]:
    """Apply one edit to a tree; returns ``(new_root, inverse_edit)``.

    Inserted subtrees are wire-normalized
    (:func:`~repro.doc.normalize.normalize_node`) so edit paths computed
    later stay round-trip stable.  The inverse reuses the removed node
    objects, so ``apply_edit(apply_edit(t, e)[0], inverse)`` restores
    the identical subtree objects everywhere off the edit's spine.
    """
    path = edit.path
    if edit.op == INSERT:
        parent, index = _parent_and_index(root, path, INSERT)
        if isinstance(parent, Text):
            raise EditPathError(
                "insert edit: node at /%s is a data leaf"
                % "/".join(str(i) for i in path[:-1])
            )
        kids = children_of(parent)
        if not 0 <= index <= len(kids):
            raise EditPathError(
                "insert index %d out of range (node at /%s has %d children)"
                % (index, "/".join(str(i) for i in path[:-1]), len(kids))
            )
        try:
            node = normalize_node(edit.node)
        except DocumentError as exc:
            raise EditScriptError("insert edit: %s" % exc)
        new_parent = with_children(
            parent, kids[:index] + (node,) + kids[index:]
        )
        _guard_normal_children(new_parent, INSERT)
        return replace_at(root, path[:-1], new_parent), delete(path)
    if edit.op == DELETE:
        parent, index = _parent_and_index(root, path, DELETE)
        kids = children_of(parent)
        if not 0 <= index < len(kids):
            raise EditPathError(
                "delete index %d out of range (node at /%s has %d children)"
                % (index, "/".join(str(i) for i in path[:-1]), len(kids))
            )
        removed = kids[index]
        new_parent = with_children(parent, kids[:index] + kids[index + 1:])
        return replace_at(root, path[:-1], new_parent), DocEdit(
            INSERT, path, node=removed
        )
    if edit.op == REPLACE:
        try:
            previous = get_node(root, path)
        except (IndexError, TypeError):
            raise EditPathError(
                "replace edit: no node at /%s"
                % "/".join(str(i) for i in path)
            )
        try:
            node = normalize_node(edit.node)
        except DocumentError as exc:
            raise EditScriptError("replace edit: %s" % exc)
        if not path and isinstance(node, Text):
            raise EditScriptError(
                "replace edit: a text-only root cannot be serialized"
            )
        new_root = replace_at(root, path, node)
        if path:
            _guard_normal_children(get_node(new_root, path[:-1]), REPLACE)
        return new_root, DocEdit(REPLACE, path, node=previous)
    # UPDATE_CALL
    try:
        previous = get_node(root, path)
    except (IndexError, TypeError):
        raise EditPathError(
            "update-call edit: no node at /%s"
            % "/".join(str(i) for i in path)
        )
    if not isinstance(previous, FunctionCall):
        raise EditPathError(
            "update-call edit: node at /%s is not a function call"
            % "/".join(str(i) for i in path)
        )
    try:
        params = tuple(normalize_node(p) for p in edit.params)
    except DocumentError as exc:
        raise EditScriptError("update-call edit: %s" % exc)
    updated = FunctionCall(
        previous.name, params, previous.endpoint, previous.namespace
    )
    return replace_at(root, path, updated), DocEdit(
        UPDATE_CALL, path, params=previous.params
    )


def apply_edits(
    document: Document, edits: Sequence[DocEdit]
) -> Tuple[Document, Tuple[DocEdit, ...]]:
    """Apply a script in order; returns ``(document, inverse_script)``.

    The inverse script undoes the whole batch when applied in the
    returned order (each edit's inverse, reversed).  Scripts apply
    atomically at the session/gateway layer: a typed failure on edit i
    leaves the caller's document untouched (this function's partial
    tree is simply discarded).
    """
    root = document.root
    inverses: List[DocEdit] = []
    for edit in edits:
        root, inverse = apply_edit(root, edit)
        inverses.append(inverse)
    return Document(root), tuple(reversed(inverses))


# ---------------------------------------------------------------------------
# JSON wire format
# ---------------------------------------------------------------------------


def _node_to_wire(node: Node):
    """One subtree payload: an XML fragment, or ``{"text": ...}`` for a
    bare data leaf (which has no standalone XML serialization)."""
    if isinstance(node, Text):
        return {"text": node.value}
    return node_to_xml(node, pretty=False, declare_ns=True)


def edit_to_json(edit: DocEdit) -> dict:
    """``{"op": ..., "path": [...]}`` plus subtree payloads."""
    payload = {"op": edit.op, "path": list(edit.path)}
    if edit.node is not None:
        payload["node"] = _node_to_wire(edit.node)
    if edit.params is not None:
        payload["params"] = [_node_to_wire(p) for p in edit.params]
    return payload


def _parse_fragment(source, where: str) -> Node:
    if isinstance(source, dict):
        value = source.get("text")
        if not isinstance(value, str):
            raise EditScriptError(
                '%s: a {"text": ...} payload requires a string value'
                % where
            )
        return Text(value)
    if not isinstance(source, str) or not source.strip():
        raise EditScriptError(
            '%s must be a non-empty XML fragment or a {"text": ...} object'
            % where
        )
    try:
        return node_from_xml(source)
    except DocumentError as exc:
        raise EditScriptError("%s: %s" % (where, exc))


def edit_from_json(payload) -> DocEdit:
    """Parse one wire edit; raises :class:`EditScriptError` when malformed."""
    if not isinstance(payload, dict):
        raise EditScriptError("an edit must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise EditScriptError(
            "unknown edit op %r (have: %s)" % (op, ", ".join(OPS))
        )
    path = payload.get("path")
    if not isinstance(path, list) or not all(
        isinstance(step, int) and step >= 0 for step in path
    ):
        raise EditScriptError(
            "edit path must be a list of non-negative child indices"
        )
    node = None
    params = None
    if op in (INSERT, REPLACE):
        node = _parse_fragment(payload.get("node"), "%s edit node" % op)
    elif op == UPDATE_CALL:
        raw = payload.get("params")
        if not isinstance(raw, list):
            raise EditScriptError(
                "update-call edit requires a list of param fragments"
            )
        params = tuple(
            _parse_fragment(item, "update-call param %d" % index)
            for index, item in enumerate(raw)
        )
    return DocEdit(op, tuple(path), node=node, params=params)


def script_from_json(payload) -> Tuple[DocEdit, ...]:
    """Parse a whole wire script (a JSON list of edits)."""
    if not isinstance(payload, list) or not payload:
        raise EditScriptError("an edit script must be a non-empty list")
    return tuple(edit_from_json(item) for item in payload)


def script_to_json(edits: Sequence[DocEdit]) -> list:
    return [edit_to_json(edit) for edit in edits]
