"""Per-document enforcement sessions: re-enforce only what an edit touched.

A :class:`EnforcementSession` keeps one *source* document alive across a
sequence of edit scripts and re-runs the verify → rewrite → validate
pipeline after each batch, producing outcomes **byte-identical** to a
full :meth:`~repro.axml.enforcement.SchemaEnforcer.enforce_document`
over the edited document — while doing work proportional to the edit's
locality, not the document's size.  Four reuse layers stack up:

1. **compile cache** — automata artifacts (DFAs, expansions) are
   interned per session, so re-analyzed spine words never recompile;
2. **analysis cache** — the engine's per-(word, target, dead) memo of
   solved games persists across edits, so an unchanged children word on
   the spine re-analyzes in O(1);
3. **materialization cache** — service answers are memoized by call
   fingerprint; an unchanged call is never re-invoked;
4. **subtree memo** — the heart of the session: a
   :class:`MemoRewriteEngine` keyed by *node identity*.  Edits rebuild
   only the root-to-edit spine (:func:`~repro.doc.paths.replace_at`
   shares every off-spine subtree), so an untouched subtree is the same
   object as last pass and its rewritten result — including the
   invocation-log slice and stats it contributed — replays without
   visiting a single descendant.

Identity keying (not value hashing) is what keeps lookups O(1): hashing
a frozen dataclass is O(subtree), which would silently re-introduce the
full-document cost the session exists to avoid.

Byte-identity with full re-enforcement holds for *per-call-deterministic*
invokers (each call's answer a pure function of the call — the
conformance fuzzer's :func:`~repro.conformance.fuzzer.per_call_invoker`,
the gateway's sampling invoker).  For stateful invokers the session's
semantics are "prior materializations are reused", which is the useful
behavior for subscription traffic but no longer bit-comparable to a
fresh run.  The differential edit fuzzer
(:func:`repro.conformance.differential.run_edit_scenario`) holds the
byte-identity contract down across the engine configuration matrix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.compile.cache import CompilationCache
from repro.doc.document import Document
from repro.doc.nodes import (
    Element,
    FunctionCall,
    Node,
    Text,
    children_of,
    tree_size,
)
from repro.doc.normalize import normalize_document
from repro.doc.paths import iter_nodes
from repro.errors import RewriteError, SchemaError, ServiceError
from repro.exec.fingerprint import call_fingerprint
from repro.incremental.edits import DocEdit, apply_edits
from repro.obs import context as obs
from repro.rewriting.engine import POSSIBLE, SAFE, RewriteEngine
from repro.rewriting.plan import InvocationLog, InvocationRecord
from repro.schema.validate import validate, word_matches
from repro.schema.model import Schema


# ---------------------------------------------------------------------------
# Identity-keyed caches
# ---------------------------------------------------------------------------


class _IdentityMemo:
    """A cache keyed by node identity, validated against the node object.

    Entries hold the node itself (keeping ``id()`` stable and unique for
    the memo's lifetime) plus a value.  Structural sharing guarantees an
    unedited subtree is *the same object* across edits, which makes this
    an exact, O(1) invalidation scheme: the spine rebuilt by an edit has
    fresh ids and simply misses.
    """

    def __init__(self):
        self._entries: Dict[int, Tuple[Node, object]] = {}

    def get(self, node: Node):
        entry = self._entries.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        return None

    def put(self, node: Node, value) -> None:
        self._entries[id(node)] = (node, value)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class _SubtreeEntry:
    """One memoized subtree rewriting (a ``_descend``/``_prepare`` result)."""

    result: Node
    records: Tuple[InvocationRecord, ...]
    cost: float
    words: int
    product: int
    went_possible: bool
    dead_context: frozenset
    dead_added: frozenset
    degradations: int
    size: int  # input subtree size, for O(1) reuse accounting


class ConformanceMemo:
    """Per-node instance checking, memoized by identity.

    Mirrors :func:`repro.schema.validate.validate` (strict) exactly:
    ``ok(root)`` equals ``validate(root, schema, sender).ok``.  Checking
    is per-node-local (declaredness + children word) plus recursion, so
    memoizing by identity makes re-verification after an edit O(spine).
    """

    def __init__(self, schema: Schema, sender_schema: Optional[Schema]):
        self.schema = schema
        self.sender_schema = sender_schema
        self._memo = _IdentityMemo()
        self.checked = 0
        self.reused = 0

    def ok(self, node: Node) -> bool:
        cached = self._memo.get(node)
        if cached is not None:
            self.reused += 1
            return cached
        self.checked += 1
        verdict = self._local_ok(node) and all(
            self.ok(child) for child in children_of(node)
        )
        self._memo.put(node, verdict)
        return verdict

    def _local_ok(self, node: Node) -> bool:
        from repro.doc.paths import child_word

        if isinstance(node, Text):
            return True
        if isinstance(node, Element):
            expr = self.schema.type_of(node.label)
            if expr is None:
                return False  # strict: undeclared label
            return word_matches(
                child_word(node), expr, self.schema, self.sender_schema
            )
        signature = self.schema.signature_of(node.name)
        if signature is None and self.sender_schema is not None:
            signature = self.sender_schema.signature_of(node.name)
        if signature is None:
            # strict: a pattern must admit the function
            return bool(self.schema.matching_patterns(node.name, None))
        return word_matches(
            child_word(node), signature.input_type,
            self.schema, self.sender_schema,
        )


class CachingInvoker:
    """Memoize service answers by call fingerprint (materialization reuse).

    Correct whenever the underlying invoker is per-call deterministic
    (same call → same forest); in a session this is also the *defined*
    semantics for edits: a call the edit did not touch keeps the answer
    already in the enforced document.
    """

    def __init__(self, invoker):
        self._invoker = invoker
        self._memo: Dict[str, Tuple[Node, ...]] = {}
        self.performed = 0
        self.reused = 0
        # timed_invoke reads the invoker's pluggable clock through us.
        clock = getattr(invoker, "clock", None)
        if clock is not None:
            self.clock = clock

    def __call__(self, fc: FunctionCall) -> Tuple[Node, ...]:
        key = call_fingerprint(fc)
        cached = self._memo.get(key)
        if cached is not None:
            self.reused += 1
            return cached
        forest = tuple(self._invoker(fc))
        self._memo[key] = forest
        self.performed += 1
        return forest


# ---------------------------------------------------------------------------
# The memoizing engine
# ---------------------------------------------------------------------------


class MemoRewriteEngine(RewriteEngine):
    """A :class:`RewriteEngine` that memoizes per-subtree rewriting.

    The three overridden stages (:meth:`_rewrite_node` for the root,
    :meth:`_prepare` for function-call parameter prep, :meth:`_descend`
    for kept elements) each run under :meth:`_memoized`: a fresh
    sub-log/sub-stats pair captures exactly what the subtree contributed,
    the entry replays that contribution on a hit — records appended in
    document order, stats merged, AUTO-mode degradations re-applied — so
    a replayed pass is observationally identical to a recomputed one.

    Entries are tagged with the degradation context (``dead`` set) they
    were computed under and only replay in an equal context; the engine
    runs strictly sequentially (``resolved_workers`` pinned to 1 — the
    scheduler's planning pre-pass would analyze the whole document and
    defeat locality; output is bit-identical at any worker count, so
    this is invisible in results).
    """

    def __init__(self, **kwargs):
        kwargs.setdefault("workers", 1)
        super().__init__(**kwargs)
        self._memo = _IdentityMemo()
        self.nodes_reanalyzed = 0
        self.nodes_reused = 0
        self.subtree_nodes_reused = 0

    @property
    def resolved_workers(self) -> int:
        return 1

    def reset_pass_counters(self) -> None:
        self.nodes_reanalyzed = 0
        self.nodes_reused = 0
        self.subtree_nodes_reused = 0

    # -- the overridden recursion points --------------------------------

    def _rewrite_node(self, node, invoker, log, stats):
        return self._memoized(
            node, invoker, log, stats, super()._rewrite_node
        )

    def _prepare(self, node, invoker, log, stats):
        if not isinstance(node, FunctionCall):
            return node
        return self._memoized(node, invoker, log, stats, super()._prepare)

    def _descend(self, node, invoker, log, stats):
        if not isinstance(node, Element):
            return node
        return self._memoized(node, invoker, log, stats, super()._descend)

    # -- memoization core ------------------------------------------------

    def _memoized(self, node, invoker, log, stats, compute):
        dead_context = frozenset(stats.get("dead", ()))
        entry = self._memo.get(node)
        if entry is not None and entry.dead_context == dead_context:
            self._replay(entry, log, stats)
            self.nodes_reused += 1
            self.subtree_nodes_reused += entry.size
            return entry.result
        self.nodes_reanalyzed += 1
        # Share the dead set (degradation is pass-global) but give the
        # subtree its own log/stats so the entry captures exactly its
        # contribution.
        dead = stats.setdefault("dead", set())
        sub_log = InvocationLog()
        sub_stats = {"words": 0, "product": 0, "mode": SAFE, "dead": dead}
        result = compute(node, invoker, sub_log, sub_stats)
        entry = _SubtreeEntry(
            result=result,
            records=tuple(sub_log.records),
            cost=sub_log.cost,
            words=sub_stats["words"],
            product=sub_stats["product"],
            went_possible=sub_stats["mode"] == POSSIBLE,
            dead_context=dead_context,
            dead_added=frozenset(dead) - dead_context,
            degradations=sub_stats.get("degradations", 0),
            size=tree_size(node),
        )
        self._memo.put(node, entry)
        self._replay(entry, log, stats, fresh_dead=False)
        return result

    @staticmethod
    def _replay(entry: _SubtreeEntry, log, stats, fresh_dead=True) -> None:
        log.records.extend(entry.records)
        log.cost += entry.cost
        stats["words"] += entry.words
        stats["product"] += entry.product
        if entry.went_possible:
            stats["mode"] = POSSIBLE
        if entry.degradations:
            stats["degradations"] = (
                stats.get("degradations", 0) + entry.degradations
            )
        if fresh_dead and entry.dead_added:
            stats.setdefault("dead", set()).update(entry.dead_added)


# ---------------------------------------------------------------------------
# Outcomes and the session
# ---------------------------------------------------------------------------


@dataclass
class IncrementalOutcome:
    """One session pass — the full-enforcement receipt plus reuse counters.

    ``document``/``error``/``already_conformant``/``calls_made``/
    ``degraded_functions``/``log`` carry exactly what a fresh
    :meth:`SchemaEnforcer.enforce_document` over the same source would
    report (:meth:`receipt` is the comparison view the differential
    oracle uses); the remaining fields account for what the incremental
    machinery *skipped*.
    """

    document: Optional[Document]
    already_conformant: bool
    calls_made: int
    log: InvocationLog
    error: Optional[str] = None
    degraded_functions: Tuple[str, ...] = ()
    #: Subtree-memo accounting for this pass.
    nodes_reanalyzed: int = 0
    nodes_reused: int = 0
    subtree_nodes_reused: int = 0
    #: Conformance-memo accounting for this pass.
    verify_checked: int = 0
    verify_reused: int = 0
    #: Materialization-cache accounting for this pass.
    invocations_performed: int = 0
    invocations_reused: int = 0
    #: How many edits this pass applied (0 for the initial enforcement).
    edits_applied: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def receipt(self) -> dict:
        """The fields a full re-enforcement must reproduce byte-for-byte.

        Engine-internal cache accounting and wall times are excluded by
        design — reuse is the whole point — but everything a peer can
        observe is in: the document bytes, the verdict, the error text,
        the invocation sequence (names, depths, output symbols,
        backtracking), and the degradation set.
        """
        return {
            "ok": self.ok,
            "error": self.error,
            "already_conformant": self.already_conformant,
            "xml": None if self.document is None else self.document.to_xml(),
            "calls_made": self.calls_made,
            "invocations": [
                (r.function, r.depth, r.output_symbols, r.backtracked)
                for r in self.log.records
            ],
            "degraded": tuple(self.degraded_functions),
        }


def full_receipt(outcome) -> dict:
    """The same comparison view computed from an ``EnforcementOutcome``."""
    return {
        "ok": outcome.ok,
        "error": outcome.error,
        "already_conformant": outcome.already_conformant,
        "xml": None if outcome.document is None else outcome.document.to_xml(),
        "calls_made": outcome.calls_made,
        "invocations": [
            (r.function, r.depth, r.output_symbols, r.backtracked)
            for r in outcome.log.records
        ],
        "degraded": tuple(outcome.degraded_functions),
    }


_session_ids = itertools.count(1)


class EnforcementSession:
    """One mutating document's enforcement state, kept warm across edits.

    Built via :meth:`SchemaEnforcer.session`; drive it with
    :meth:`enforce` (initial pass) and :meth:`apply` (edit script →
    fresh outcome).  The session owns the evolving *source* document;
    the enforced document is recomputed per pass (cheaply, through the
    caches) rather than patched, which is how outcomes stay
    byte-identical to full re-enforcement even when an edit changes
    which rewriting the schema admits globally.
    """

    def __init__(
        self,
        enforcer,
        document: Document,
        invoker: Callable,
        compile_cache=None,
    ):
        self.enforcer = enforcer
        self.session_id = next(_session_ids)
        self._invoker = CachingInvoker(invoker)
        cc = compile_cache
        if cc is None:
            cc = (
                enforcer.compile_cache
                if enforcer.compile_cache is not None
                else CompilationCache()
            )
        self._engine = MemoRewriteEngine(
            target_schema=enforcer.target_schema,
            sender_schema=enforcer.sender_schema,
            k=enforcer.k,
            mode=enforcer.mode,
            policy=enforcer.policy,
            cost_model=enforcer.cost_model,
            eager=enforcer.eager,
            lazy=enforcer.lazy,
            compile_cache=cc,
        )
        self._verify = ConformanceMemo(
            enforcer.target_schema, enforcer.sender_schema
        )
        self.document = normalize_document(document)
        self.enforced: Optional[Document] = None
        self.last_outcome: Optional[IncrementalOutcome] = None
        self.edits_applied = 0
        self.passes = 0

    # -- the passes -----------------------------------------------------

    def enforce(self) -> IncrementalOutcome:
        """Run one (re-)enforcement pass over the current source document."""
        with obs.tracer().span(
            "incremental.enforce", session=self.session_id,
            passes=self.passes,
        ) as span:
            outcome = self._enforce_once()
            span.set(
                ok=outcome.ok,
                reused=outcome.nodes_reused,
                reanalyzed=outcome.nodes_reanalyzed,
            )
        self.passes += 1
        self.last_outcome = outcome
        self.enforced = outcome.document
        self._metrics(outcome)
        return outcome

    def apply(self, edits) -> IncrementalOutcome:
        """Apply one edit script to the source, then re-enforce.

        Typed :class:`~repro.incremental.edits.EditError` failures leave
        the session untouched (the script applies atomically).  Returns
        the fresh outcome; the inverse script is kept on
        ``last_inverse`` for undo.
        """
        edits = tuple(edits)
        with obs.tracer().span(
            "incremental.apply", session=self.session_id, edits=len(edits)
        ):
            document, inverse = apply_edits(self.document, edits)
            self.document = document
            self.last_inverse = inverse
            self.edits_applied += len(edits)
            outcome = self.enforce()
            outcome.edits_applied = len(edits)
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_incremental_edits_total",
                "Edit-script operations applied to live sessions",
            ).inc(len(edits))
        return outcome

    def _enforce_once(self) -> IncrementalOutcome:
        engine = self._engine
        verify = self._verify
        invoker = self._invoker
        engine.reset_pass_counters()
        checked0, reused0 = verify.checked, verify.reused
        performed0, inv_reused0 = invoker.performed, invoker.reused

        def counters(outcome: IncrementalOutcome) -> IncrementalOutcome:
            outcome.nodes_reanalyzed = engine.nodes_reanalyzed
            outcome.nodes_reused = engine.nodes_reused
            outcome.subtree_nodes_reused = engine.subtree_nodes_reused
            outcome.verify_checked = verify.checked - checked0
            outcome.verify_reused = verify.reused - reused0
            outcome.invocations_performed = invoker.performed - performed0
            outcome.invocations_reused = invoker.reused - inv_reused0
            return outcome

        # (i) verify — memoized per subtree
        if verify.ok(self.document.root):
            return counters(IncrementalOutcome(
                self.document, True, 0, InvocationLog(),
            ))
        # (ii) rewrite — through the subtree memo
        try:
            result = engine.rewrite(self.document, invoker)
        except (RewriteError, SchemaError, ServiceError) as exc:
            converted = self._try_converters(invoker)
            if converted is not None:
                return counters(converted)
            return counters(IncrementalOutcome(
                None, False, 0, InvocationLog(), error=str(exc),
            ))
        # (iii) validate the produced document — memoized; on the rare
        # failure path run the full validator for the byte-identical
        # violation report.
        if not verify.ok(result.document.root):
            report = validate(
                result.document, self.enforcer.target_schema,
                self.enforcer.sender_schema,
            )
            return counters(IncrementalOutcome(
                None, False, len(result.log), result.log,
                error="rewriting produced a non-conformant document: %s"
                % report,
                degraded_functions=result.degraded_functions,
            ))
        return counters(IncrementalOutcome(
            result.document, False, len(result.log), result.log,
            degraded_functions=result.degraded_functions,
        ))

    def _try_converters(self, invoker) -> Optional[IncrementalOutcome]:
        """Parity with SchemaEnforcer's converter fallback (rare path)."""
        if not self.enforcer.converters:
            return None
        outcome = self.enforcer._try_converters(self.document, invoker)
        if outcome is None or not outcome.ok:
            return None
        return IncrementalOutcome(
            outcome.document, False, outcome.calls_made, outcome.log,
            degraded_functions=outcome.degraded_functions,
        )

    # -- undo and introspection -----------------------------------------

    last_inverse: Tuple[DocEdit, ...] = ()

    def undo(self) -> IncrementalOutcome:
        """Apply the inverse of the last edit script."""
        if not self.last_inverse:
            raise ValueError("nothing to undo")
        inverse, self.last_inverse = self.last_inverse, ()
        return self.apply(inverse)

    def cache_snapshot(self) -> Dict[Tuple[int, ...], str]:
        """A canonical view of the cached state *reachable* from the
        current source document: path → digest of the memoized subtree
        result.

        Stale spine entries for trees no longer referenced do linger in
        the raw memo (they are garbage, never consulted), so state
        equality after edit + inverse is asserted on this reachable
        view — which also proves the session would do zero rewriting
        work beyond the spine on its next pass.
        """
        import hashlib

        snapshot: Dict[Tuple[int, ...], str] = {}
        for path, node in iter_nodes(self.document.root):
            entry = self._engine._memo.get(node)
            if entry is None:
                continue
            payload = "|".join((
                str(entry.result),
                str(len(entry.records)),
                ".".join(r.function for r in entry.records),
                str(entry.words),
                str(entry.product),
                str(sorted(entry.dead_context)),
            ))
            snapshot[path] = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()[:16]
        return snapshot

    def reuse_totals(self) -> Dict[str, int]:
        """Session-lifetime reuse accounting (all passes)."""
        return {
            "passes": self.passes,
            "edits_applied": self.edits_applied,
            "invocations_performed": self._invoker.performed,
            "invocations_reused": self._invoker.reused,
            "verify_checked": self._verify.checked,
            "verify_reused": self._verify.reused,
        }

    def _metrics(self, outcome: IncrementalOutcome) -> None:
        metrics = obs.metrics()
        if not metrics.enabled:
            return
        nodes = metrics.counter(
            "repro_incremental_nodes_total",
            "Subtree-memo consultations by outcome",
        )
        nodes.inc(outcome.nodes_reused, outcome="reused")
        nodes.inc(outcome.nodes_reanalyzed, outcome="reanalyzed")
        verify = metrics.counter(
            "repro_incremental_verify_total",
            "Conformance-memo consultations by outcome",
        )
        verify.inc(outcome.verify_reused, outcome="reused")
        verify.inc(outcome.verify_checked, outcome="checked")
        calls = metrics.counter(
            "repro_incremental_invocations_total",
            "Materializations served from the session cache vs performed",
        )
        calls.inc(outcome.invocations_reused, outcome="reused")
        calls.inc(outcome.invocations_performed, outcome="performed")
        metrics.counter(
            "repro_incremental_passes_total",
            "Incremental enforcement passes by verdict",
        ).inc(outcome="ok" if outcome.ok else "error")
