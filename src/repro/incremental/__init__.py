"""Incremental enforcement for mutating documents.

Subscription-style exchanges re-send the *same* document over and over
with small mutations between sends.  Re-running full schema enforcement
each time repeats almost all of the previous run's work: the analyses,
the materializations, and the instance checks of every untouched
subtree.  This package keeps that work warm in a per-document
:class:`~repro.incremental.session.EnforcementSession`:

- :mod:`repro.incremental.edits` — the typed edit-script language
  (insert / delete / replace / update-call) with inverses and a JSON
  wire format;
- :mod:`repro.incremental.session` — the session itself: an
  identity-keyed subtree memo over the rewrite engine, a memoized
  conformance checker, and a fingerprint-keyed materialization cache,
  combined so each edit re-analyzes only the root-to-edit spine;
- :mod:`repro.incremental.bench` — benchmark E26, the edit-storm
  speedup and locality measurement.

Entry point: :meth:`repro.axml.enforcement.SchemaEnforcer.session`.
"""

from repro.incremental.edits import (
    DELETE,
    INSERT,
    OPS,
    REPLACE,
    UPDATE_CALL,
    DocEdit,
    EditError,
    EditPathError,
    EditScriptError,
    apply_edit,
    apply_edits,
    delete,
    edit_from_json,
    edit_to_json,
    insert,
    replace,
    script_from_json,
    script_to_json,
    update_call,
)
from repro.incremental.session import (
    CachingInvoker,
    ConformanceMemo,
    EnforcementSession,
    IncrementalOutcome,
    MemoRewriteEngine,
    full_receipt,
)

__all__ = [
    "INSERT",
    "DELETE",
    "REPLACE",
    "UPDATE_CALL",
    "OPS",
    "DocEdit",
    "EditError",
    "EditScriptError",
    "EditPathError",
    "apply_edit",
    "apply_edits",
    "insert",
    "delete",
    "replace",
    "update_call",
    "edit_to_json",
    "edit_from_json",
    "script_to_json",
    "script_from_json",
    "CachingInvoker",
    "ConformanceMemo",
    "EnforcementSession",
    "IncrementalOutcome",
    "MemoRewriteEngine",
    "full_receipt",
]
