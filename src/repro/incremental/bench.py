"""E26 — incremental enforcement under an edit storm.

A magazine document (``magazine = article*``, every ``article`` the
paper's newspaper body needing its ``Get_Temp`` materialized) takes a
seeded storm of small edits at two sizes.  After every edit, the same
re-enforcement runs twice:

- **incremental** — one warm :class:`~repro.incremental.session
  .EnforcementSession` absorbs the edit and re-enforces through its
  caches;
- **full** — a fresh :class:`~repro.axml.enforcement.SchemaEnforcer`
  re-enforces the edited document from scratch (with a warm
  compilation cache, so the comparison isolates the *analysis and
  materialization* reuse, not automata compilation).

The acceptance criteria, asserted by ``benchmarks/
test_bench_incremental.py`` and recorded in ``BENCH_incremental.json``:

- every incremental receipt is byte-identical to the full one
  (``identical_outcomes``);
- the storm runs ≥ 5x faster incrementally at the large size
  (``speedup`` — wall clock, stripped from regression diffs);
- the per-edit re-analysis footprint is a function of edit *locality*,
  not document size: the worst-case ``nodes_reanalyzed`` per edit is
  identical at both sizes while the document doubles
  (``locality_holds`` — deterministic, diffed by CI).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from repro.axml.enforcement import SchemaEnforcer
from repro.compile.cache import CompilationCache
from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Text
from repro.incremental.edits import DocEdit, replace, update_call
from repro.incremental.session import full_receipt
from repro.obs.context import observing
from repro.obs.metrics import MetricsRegistry, work_snapshot
from repro.obs.trace import NULL_TRACER
from repro.schema.model import Schema, SchemaBuilder
from repro.workloads.newspaper import (
    FORECAST_ENDPOINT,
    FORECAST_NS,
    TIMEOUT_ENDPOINT,
    TIMEOUT_NS,
)


def _schemas() -> Tuple[Schema, Schema]:
    """(sender, receiver): the newspaper pair lifted under ``article*``."""

    def base() -> SchemaBuilder:
        return (
            SchemaBuilder()
            .element("title", "data")
            .element("date", "data")
            .element("temp", "data")
            .element("city", "data")
            .element("exhibit", "title.date")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "exhibit*")
            .root("magazine")
        )
    sender = (
        base()
        .element("magazine", "article*")
        .element(
            "article", "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"
        )
        .build()
    )
    receiver = (
        base()
        .element("magazine", "article*")
        .element("article", "title.date.temp.(TimeOut | exhibit*)")
        .build()
    )
    return sender, receiver


def _article(index: int) -> Element:
    """One intensional article whose ``Get_Temp`` must be materialized."""
    return el(
        "article",
        el("title", "article-%d" % index),
        el("date", "04/10/2002"),
        call(
            "Get_Temp",
            el("city", "city-%d" % index),
            endpoint=FORECAST_ENDPOINT,
            namespace=FORECAST_NS,
        ),
        call(
            "TimeOut",
            text("exhibits-%d" % index),
            endpoint=TIMEOUT_ENDPOINT,
            namespace=TIMEOUT_NS,
        ),
    )


def _magazine(articles: int) -> Document:
    return Document(
        el("magazine", *[_article(i) for i in range(articles)])
    )


def _invoker(fc: FunctionCall):
    """Per-call deterministic service: answers are pure functions of the
    call, the property the session's byte-identity contract needs."""
    if fc.name == "Get_Temp":
        seed = fc.params[0].children[0].value if fc.params else "?"
        return (el("temp", "%d" % (sum(ord(c) for c in seed) % 40)),)
    if fc.name == "TimeOut":
        return (el("exhibit", el("title", "P"), el("date", "d")),)
    raise ValueError("unexpected call %r" % fc.name)


def _storm(rng: random.Random, articles: int, edits: int) -> List[DocEdit]:
    """``edits`` single-article touches, spread over the document."""
    storm: List[DocEdit] = []
    for i in range(edits):
        target = rng.randrange(articles)
        if i % 2 == 0:
            # Retitle one article: a pure structural edit, no new calls.
            storm.append(replace(
                (target, 0), el("title", "retitled-%d" % i)
            ))
        else:
            # Repoint one article's Get_Temp at a new city: forces
            # exactly one fresh materialization.
            storm.append(update_call(
                (target, 2), (el("city", "city-%d-%d" % (target, i)),)
            ))
    return storm


def _run_size(articles: int, edits: int, seed: str) -> Dict[str, object]:
    sender, receiver = _schemas()
    rng = random.Random(seed)
    document = _magazine(articles)
    storm = _storm(rng, articles, edits)

    shared_cc = CompilationCache()
    enforcer = SchemaEnforcer(
        target_schema=receiver, sender_schema=sender,
        k=1, mode="safe", compile_cache=shared_cc,
    )
    session = enforcer.session(document, _invoker)
    session.enforce()  # the warm-up pass both paths get for free

    # Warm the full path's compile cache too, so the speedup measures
    # analysis/materialization reuse rather than automata compilation.
    enforcer.enforce_document(session.document, _invoker)

    reanalyzed: List[int] = []
    identical = True
    incremental_elapsed = 0.0
    full_elapsed = 0.0
    current = session.document
    for edit in storm:
        started = time.perf_counter()
        outcome = session.apply([edit])
        incremental_elapsed += time.perf_counter() - started
        reanalyzed.append(outcome.nodes_reanalyzed)
        current = session.document

        started = time.perf_counter()
        fresh = SchemaEnforcer(
            target_schema=receiver, sender_schema=sender,
            k=1, mode="safe", compile_cache=shared_cc,
        ).enforce_document(current, _invoker)
        full_elapsed += time.perf_counter() - started
        if outcome.receipt() != full_receipt(fresh):
            identical = False

    nodes = current.size()
    return {
        "articles": articles,
        "document_nodes": nodes,
        "edits": len(storm),
        "identical_outcomes": identical,
        "max_reanalyzed_per_edit": max(reanalyzed),
        "mean_reanalyzed_per_edit": round(
            sum(reanalyzed) / len(reanalyzed), 2
        ),
        "reanalyzed_bounded": max(reanalyzed) < nodes // 4,
        "incremental_seconds": round(incremental_elapsed, 6),
        "full_seconds": round(full_elapsed, 6),
        "speedup": round(full_elapsed / max(incremental_elapsed, 1e-9), 2),
    }


def run_incremental(smoke: bool = False) -> dict:
    """The E26 payload (``BENCH_incremental.json``)."""
    sizes = (40, 80) if smoke else (150, 300)
    edits = 30 if smoke else 60
    registry = MetricsRegistry()
    with observing(NULL_TRACER, registry):
        small = _run_size(sizes[0], edits, "incremental-storm-small")
        large = _run_size(sizes[1], edits, "incremental-storm-large")
    return {
        "benchmark": "incremental",
        "experiment": "E26",
        "hot_path": "per-edit incremental session pass vs fresh full "
                    "enforcement over the edited document (shared warm "
                    "compile cache)",
        "small": small,
        "large": large,
        "identical_outcomes": (
            small["identical_outcomes"] and large["identical_outcomes"]
        ),
        # The locality claim: doubling the document must not change the
        # worst-case re-analysis footprint of a single-article edit.
        "locality_holds": (
            small["max_reanalyzed_per_edit"]
            == large["max_reanalyzed_per_edit"]
            and large["reanalyzed_bounded"]
        ),
        "speedup": large["speedup"],
        "work": {"default": work_snapshot(registry)},
    }
