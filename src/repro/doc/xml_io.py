"""XML (de)serialization in the Active XML syntax of Section 7.

Function nodes are represented by ``int:fun`` elements in the namespace
``http://www.activexml.com/ns/int``; the SOAP coordinates are carried by
the ``endpointURL`` / ``methodName`` / ``namespaceURI`` attributes, and
parameters sit inside ``int:params`` / ``int:param`` wrappers — exactly
the paper's example document::

    <newspaper xmlns:int="http://www.activexml.com/ns/int">
      <title> The Sun </title>
      <int:fun endpointURL="http://www.forecast.com/soap"
               methodName="Get_Temp" namespaceURI="urn:xmethods-weather">
        <int:params><int:param><city>Paris</city></int:param></int:params>
      </int:fun>
      ...
    </newspaper>

Mixed content is restricted to the paper's simple model: character data
is allowed only where it forms a whole leaf (whitespace around child
elements is ignored).

Both directions are iterative: parsing runs over the expat event stream
of :mod:`repro.stream.parser` (no recursion, so ≥10k-deep documents
parse fine) and serialization drives an explicit stack.
"""

from __future__ import annotations

from typing import List
from xml.sax.saxutils import escape, quoteattr

from repro.doc.document import Document
from repro.doc.names import FUN_TAG as _FUN
from repro.doc.names import INT_NS
from repro.doc.names import PARAM_TAG as _PARAM
from repro.doc.names import PARAMS_TAG as _PARAMS
from repro.doc.nodes import Element, FunctionCall, Node, Text

__all__ = [
    "INT_NS",
    "document_from_xml",
    "document_to_xml",
    "node_from_xml",
    "node_to_xml",
]


def node_to_xml(
    node: Node, indent: int = 0, pretty: bool = True,
    declare_ns: bool = False,
) -> str:
    """Serialize one node (and subtree) to an XML fragment.

    With ``declare_ns`` the ``int:`` namespace is declared on the
    fragment's root tag, making the fragment parseable standalone even
    when it contains (or is) a function call.
    """
    lines: List[str] = []
    _serialize(node, indent, lines, pretty)
    joiner = "\n" if pretty else ""
    body = joiner.join(lines)
    return _declare_int_ns(body) if declare_ns else body


def _declare_int_ns(body: str) -> str:
    import re

    match = re.match(r"<[A-Za-z_][\w.\-]*(?::[\w.\-]+)?", body)
    if match:
        body = (
            body[: match.end()]
            + ' xmlns:int="%s"' % INT_NS
            + body[match.end():]
        )
    return body


def document_to_xml(document: Document, pretty: bool = True) -> str:
    """Serialize a document, declaring the ``int:`` namespace on the root."""
    body = _declare_int_ns(node_to_xml(document.root, pretty=pretty))
    return '<?xml version="1.0"?>\n' + body


def _serialize(node: Node, depth: int, lines: List[str], pretty: bool) -> None:
    stack: list = [(node, depth)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):  # a deferred closing line
            lines.append(item)
            continue
        node, depth = item
        pad = "  " * depth if pretty else ""
        if isinstance(node, Text):
            lines.append(pad + escape(node.value))
            continue
        if isinstance(node, Element):
            attrs = "".join(
                " %s=%s" % (name, quoteattr(value))
                for name, value in node.attributes
            )
            if not node.children:
                lines.append("%s<%s%s/>" % (pad, node.label, attrs))
            elif len(node.children) == 1 and isinstance(node.children[0], Text):
                lines.append(
                    "%s<%s%s>%s</%s>"
                    % (pad, node.label, attrs,
                       escape(node.children[0].value), node.label)
                )
            else:
                lines.append("%s<%s%s>" % (pad, node.label, attrs))
                stack.append("%s</%s>" % (pad, node.label))
                for child in reversed(node.children):
                    stack.append((child, depth + 1))
            continue
        if isinstance(node, FunctionCall):
            attrs = ["methodName=%s" % quoteattr(node.name)]
            if node.endpoint:
                attrs.insert(0, "endpointURL=%s" % quoteattr(node.endpoint))
            if node.namespace:
                attrs.append("namespaceURI=%s" % quoteattr(node.namespace))
            lines.append("%s<int:fun %s>" % (pad, " ".join(attrs)))
            stack.append("%s</int:fun>" % pad)
            if node.params:
                stack.append("%s  </int:params>" % pad)
                for param in reversed(node.params):
                    stack.append("%s    </int:param>" % pad)
                    stack.append((param, depth + 3))
                    stack.append("%s    <int:param>" % pad)
                stack.append("%s  <int:params>" % pad)
            continue
        raise TypeError("not a document node: %r" % (node,))


def document_from_xml(source: str) -> Document:
    """Parse an Active XML document from its XML serialization."""
    return Document(node_from_xml(source))


def node_from_xml(source: str) -> Node:
    """Parse a single XML fragment into a document node."""
    from repro.stream.builder import parse_raw, raw_tree
    from repro.stream.parser import iter_events

    return parse_raw(raw_tree(iter_events(source)))
