"""XML (de)serialization in the Active XML syntax of Section 7.

Function nodes are represented by ``int:fun`` elements in the namespace
``http://www.activexml.com/ns/int``; the SOAP coordinates are carried by
the ``endpointURL`` / ``methodName`` / ``namespaceURI`` attributes, and
parameters sit inside ``int:params`` / ``int:param`` wrappers — exactly
the paper's example document::

    <newspaper xmlns:int="http://www.activexml.com/ns/int">
      <title> The Sun </title>
      <int:fun endpointURL="http://www.forecast.com/soap"
               methodName="Get_Temp" namespaceURI="urn:xmethods-weather">
        <int:params><int:param><city>Paris</city></int:param></int:params>
      </int:fun>
      ...
    </newspaper>

Mixed content is restricted to the paper's simple model: character data
is allowed only where it forms a whole leaf (whitespace around child
elements is ignored).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List
from xml.sax.saxutils import escape, quoteattr

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.errors import DocumentParseError

#: The Active XML intensional namespace.
INT_NS = "http://www.activexml.com/ns/int"

_FUN = "{%s}fun" % INT_NS
_PARAMS = "{%s}params" % INT_NS
_PARAM = "{%s}param" % INT_NS


def node_to_xml(
    node: Node, indent: int = 0, pretty: bool = True,
    declare_ns: bool = False,
) -> str:
    """Serialize one node (and subtree) to an XML fragment.

    With ``declare_ns`` the ``int:`` namespace is declared on the
    fragment's root tag, making the fragment parseable standalone even
    when it contains (or is) a function call.
    """
    lines: List[str] = []
    _serialize(node, indent, lines, pretty)
    joiner = "\n" if pretty else ""
    body = joiner.join(lines)
    return _declare_int_ns(body) if declare_ns else body


def _declare_int_ns(body: str) -> str:
    import re

    match = re.match(r"<[A-Za-z_][\w.\-]*(?::[\w.\-]+)?", body)
    if match:
        body = (
            body[: match.end()]
            + ' xmlns:int="%s"' % INT_NS
            + body[match.end():]
        )
    return body


def document_to_xml(document: Document, pretty: bool = True) -> str:
    """Serialize a document, declaring the ``int:`` namespace on the root."""
    body = _declare_int_ns(node_to_xml(document.root, pretty=pretty))
    return '<?xml version="1.0"?>\n' + body


def _serialize(node: Node, depth: int, lines: List[str], pretty: bool) -> None:
    pad = "  " * depth if pretty else ""
    if isinstance(node, Text):
        lines.append(pad + escape(node.value))
        return
    if isinstance(node, Element):
        attrs = "".join(
            " %s=%s" % (name, quoteattr(value))
            for name, value in node.attributes
        )
        if not node.children:
            lines.append("%s<%s%s/>" % (pad, node.label, attrs))
        elif len(node.children) == 1 and isinstance(node.children[0], Text):
            lines.append(
                "%s<%s%s>%s</%s>"
                % (pad, node.label, attrs,
                   escape(node.children[0].value), node.label)
            )
        else:
            lines.append("%s<%s%s>" % (pad, node.label, attrs))
            for child in node.children:
                _serialize(child, depth + 1, lines, pretty)
            lines.append("%s</%s>" % (pad, node.label))
        return
    if isinstance(node, FunctionCall):
        attrs = ["methodName=%s" % quoteattr(node.name)]
        if node.endpoint:
            attrs.insert(0, "endpointURL=%s" % quoteattr(node.endpoint))
        if node.namespace:
            attrs.append("namespaceURI=%s" % quoteattr(node.namespace))
        lines.append("%s<int:fun %s>" % (pad, " ".join(attrs)))
        if node.params:
            lines.append("%s  <int:params>" % pad)
            for param in node.params:
                lines.append("%s    <int:param>" % pad)
                _serialize(param, depth + 3, lines, pretty)
                lines.append("%s    </int:param>" % pad)
            lines.append("%s  </int:params>" % pad)
        lines.append("%s</int:fun>" % pad)
        return
    raise TypeError("not a document node: %r" % (node,))


def document_from_xml(source: str) -> Document:
    """Parse an Active XML document from its XML serialization."""
    return Document(node_from_xml(source))


def node_from_xml(source: str) -> Node:
    """Parse a single XML fragment into a document node."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise DocumentParseError("malformed XML: %s" % exc) from exc
    return _parse_element(root)


def _parse_element(elem: ET.Element) -> Node:
    if elem.tag == _FUN:
        return _parse_function(elem)
    if elem.tag in (_PARAMS, _PARAM):
        raise DocumentParseError(
            "%s may only appear directly under int:fun" % elem.tag
        )
    if elem.tag.startswith("{"):
        raise DocumentParseError("unsupported namespaced element %r" % elem.tag)

    children: List[Node] = []
    leading = (elem.text or "").strip()
    child_elems = list(elem)
    if leading:
        if child_elems:
            raise DocumentParseError(
                "mixed content under <%s> is not part of the simple model"
                % elem.tag
            )
        children.append(Text(leading))
    for child in child_elems:
        children.append(_parse_element(child))
        if (child.tail or "").strip():
            raise DocumentParseError(
                "mixed content under <%s> is not part of the simple model"
                % elem.tag
            )
    attributes = tuple(sorted(elem.attrib.items()))
    for name, _value in attributes:
        if name.startswith("{"):
            raise DocumentParseError(
                "namespaced attribute %r is not supported" % name
            )
    return Element(elem.tag, tuple(children), attributes)


def _parse_function(elem: ET.Element) -> FunctionCall:
    name = elem.get("methodName")
    if not name:
        raise DocumentParseError("int:fun requires a methodName attribute")
    params: List[Node] = []
    wrappers = [child for child in elem if child.tag == _PARAMS]
    others = [child for child in elem if child.tag != _PARAMS]
    if others:
        raise DocumentParseError(
            "int:fun may only contain int:params, found %r" % others[0].tag
        )
    if len(wrappers) > 1:
        raise DocumentParseError("int:fun may contain at most one int:params")
    for wrapper in wrappers:
        for param in wrapper:
            if param.tag != _PARAM:
                raise DocumentParseError(
                    "int:params may only contain int:param, found %r" % param.tag
                )
            inner_elems = list(param)
            inner_text = (param.text or "").strip()
            if inner_elems and inner_text:
                raise DocumentParseError("mixed content inside int:param")
            if len(inner_elems) > 1:
                raise DocumentParseError(
                    "int:param must wrap exactly one tree (found %d)"
                    % len(inner_elems)
                )
            if inner_elems:
                params.append(_parse_element(inner_elems[0]))
            else:
                params.append(Text(inner_text))
    return FunctionCall(
        name,
        tuple(params),
        endpoint=elem.get("endpointURL"),
        namespace=elem.get("namespaceURI"),
    )
