"""Structural diffing of intensional documents.

Exchange debugging constantly asks "what changed between what I sent and
what arrived / what the rewriting produced?".  :func:`diff_documents`
answers with a list of path-addressed edits:

- ``replaced`` — a node's kind/label/name/value changed;
- ``attributes`` — same element, different attributes;
- ``inserted`` / ``removed`` — children added or dropped (e.g. a call
  replaced by its materialized output shows as one removal plus the
  output's insertions);
- ``params`` — a kept call whose parameters differ.

Children are aligned with :class:`difflib.SequenceMatcher` over equal
subtrees, so a single inserted sibling does not cascade into a diff of
every following position.

Edit paths are computed against the **wire normal form**
(:func:`~repro.doc.normalize.normalize_node`) of both documents: a
whitespace-only text child, or a value with incidental surrounding
whitespace, would otherwise shift or dangle every path after an XML
round-trip — a diff computed on one side of an exchange must address
the same nodes after ``serialize → parse`` on the other side.  Pass
``normalize=False`` to diff the raw in-memory trees instead.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import List, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text, symbol_of
from repro.doc.normalize import normalize_node
from repro.doc.paths import Path


@dataclass(frozen=True)
class Edit:
    """One difference between two documents."""

    kind: str  # "replaced" | "attributes" | "inserted" | "removed" | "params"
    path: Path
    detail: str

    def __str__(self) -> str:
        where = "/" + "/".join(str(i) for i in self.path) if self.path else "/"
        return "%s at %s: %s" % (self.kind, where, self.detail)


def _describe(node: Node) -> str:
    if isinstance(node, Text):
        return "text %r" % node.value
    if isinstance(node, Element):
        return "<%s>" % node.label
    return "call %s(...)" % node.name


def diff_documents(
    left: Document, right: Document, normalize: bool = True
) -> List[Edit]:
    """All edits turning ``left`` into ``right`` (empty when equal).

    With ``normalize`` (the default) both trees are diffed in wire
    normal form, so every returned path addresses the same node after
    an XML round-trip of either document.
    """
    a, b = left.root, right.root
    if normalize:
        a, b = normalize_node(a), normalize_node(b)
    edits: List[Edit] = []
    _diff_nodes(a, b, (), edits)
    return edits


def diff_forests(
    left: Tuple[Node, ...], right: Tuple[Node, ...], path: Path = (),
    normalize: bool = True,
) -> List[Edit]:
    """Edits between two sibling forests (paths round-trip stable, as in
    :func:`diff_documents`)."""
    a, b = tuple(left), tuple(right)
    if normalize:
        a = tuple(normalize_node(node) for node in a)
        b = tuple(normalize_node(node) for node in b)
    edits: List[Edit] = []
    _diff_children(a, b, path, edits)
    return edits


def _diff_nodes(a: Node, b: Node, path: Path, edits: List[Edit]) -> None:
    if a == b:
        return
    if type(a) is not type(b):
        edits.append(
            Edit("replaced", path, "%s -> %s" % (_describe(a), _describe(b)))
        )
        return
    if isinstance(a, Text):
        edits.append(
            Edit("replaced", path, "text %r -> %r" % (a.value, b.value))
        )
        return
    if isinstance(a, Element):
        if a.label != b.label:
            edits.append(
                Edit("replaced", path, "<%s> -> <%s>" % (a.label, b.label))
            )
            return
        if a.attributes != b.attributes:
            edits.append(
                Edit(
                    "attributes",
                    path,
                    "%s -> %s" % (dict(a.attributes), dict(b.attributes)),
                )
            )
        _diff_children(a.children, b.children, path, edits)
        return
    if isinstance(a, FunctionCall):
        if a.name != b.name or a.endpoint != b.endpoint:
            edits.append(
                Edit("replaced", path, "call %s -> call %s" % (a.name, b.name))
            )
            return
        if a.params != b.params:
            edits.append(Edit("params", path, "parameters differ"))
            _diff_children(a.params, b.params, path, edits)
        return
    raise TypeError("not a document node: %r" % (a,))


def _diff_children(
    left: Tuple[Node, ...], right: Tuple[Node, ...], path: Path,
    edits: List[Edit],
) -> None:
    matcher = difflib.SequenceMatcher(a=left, b=right, autojunk=False)
    for op, a_lo, a_hi, b_lo, b_hi in matcher.get_opcodes():
        if op == "equal":
            continue
        if op == "replace" and (a_hi - a_lo) == (b_hi - b_lo):
            # Pairwise recursion keeps the diff local.
            for offset in range(a_hi - a_lo):
                _diff_nodes(
                    left[a_lo + offset],
                    right[b_lo + offset],
                    path + (a_lo + offset,),
                    edits,
                )
            continue
        for index in range(a_lo, a_hi):
            edits.append(
                Edit("removed", path + (index,), _describe(left[index]))
            )
        for index in range(b_lo, b_hi):
            edits.append(
                Edit("inserted", path + (index,), _describe(right[index]))
            )
