"""Node types of the intensional document tree.

Following Definition 1, the labeling function maps nodes to
``L ∪ F ∪ D``: element labels, function names, or data values (the latter
on leaves only).  We realize the three cases as three immutable node
classes; :func:`symbol_of` recovers the *symbol* a node contributes to
its parent's children word — the alphabet the schema regexes range over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.automata.symbols import DATA, intern_symbol


@dataclass(frozen=True, slots=True)
class Text:
    """A leaf carrying an atomic data value from ``D``."""

    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Element:
    """A data node: an element label from ``L`` with ordered children.

    ``attributes`` extends the paper's simple model toward full XML
    (Section 2.1, "XML and XML Schema"): they are carried, serialized
    and compared, but the schema language does not constrain them — the
    simple model types element *content* only.  Stored as a sorted tuple
    of (name, value) pairs so elements stay hashable and attribute order
    never affects equality.
    """

    label: str
    children: Tuple["Node", ...] = ()
    attributes: Tuple[Tuple[str, str], ...] = ()

    #: Class-level flag; sealed stream nodes (already enforced) override it
    #: so the engine's descend pass can skip their subtrees.
    enforced = False

    def __post_init__(self):
        if not self.label or self.label.startswith("#"):
            raise ValueError("invalid element label %r" % (self.label,))
        object.__setattr__(self, "label", intern_symbol(self.label))
        normalized = tuple(
            (intern_symbol(name), value)
            for name, value in sorted(self.attributes)
        )
        object.__setattr__(self, "attributes", normalized)
        names = [name for name, _value in normalized]
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute on <%s>" % self.label)

    def get_attribute(self, name: str, default: Optional[str] = None):
        """The value of one attribute, or ``default``."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default

    def __str__(self) -> str:
        attrs = "".join(
            ' %s="%s"' % (name, value) for name, value in self.attributes
        )
        if not self.children:
            return "<%s%s/>" % (self.label, attrs)
        inner = " ".join(str(child) for child in self.children)
        return "<%s%s> %s </%s>" % (self.label, attrs, inner, self.label)


@dataclass(frozen=True, slots=True)
class FunctionCall:
    """A function node: an embedded service call with parameter subtrees.

    ``name`` is the function name from ``F``; in the implementation it is
    complemented by the SOAP triple (endpoint URL, method name, namespace
    URI) carried in the XML serialization.  ``params`` are the children
    subtrees passed to the service when the call is materialized.
    """

    name: str
    params: Tuple["Node", ...] = ()
    endpoint: Optional[str] = None
    namespace: Optional[str] = None

    def __post_init__(self):
        if not self.name or self.name.startswith("#"):
            raise ValueError("invalid function name %r" % (self.name,))
        object.__setattr__(self, "name", intern_symbol(self.name))

    def __str__(self) -> str:
        inner = ", ".join(str(param) for param in self.params)
        return "%s(%s)" % (self.name, inner)


#: Any node of an intensional document tree.
Node = Union[Text, Element, FunctionCall]

#: An ordered sequence of sibling trees — what a function call returns.
Forest = Tuple[Node, ...]


def symbol_of(node: Node) -> str:
    """The symbol a node contributes to its parent's children word.

    Data leaves contribute the reserved :data:`~repro.automata.symbols.DATA`
    symbol; elements contribute their label; function nodes their name.
    """
    if isinstance(node, Text):
        return DATA
    if isinstance(node, Element):
        return node.label
    if isinstance(node, FunctionCall):
        return node.name
    raise TypeError("not a document node: %r" % (node,))


def children_of(node: Node) -> Tuple[Node, ...]:
    """The ordered children (or parameters) of a node; leaves have none."""
    if isinstance(node, Element):
        return node.children
    if isinstance(node, FunctionCall):
        return node.params
    return ()


def _same_forest(a: Tuple[Node, ...], b: Tuple[Node, ...]) -> bool:
    return a is b or (
        len(a) == len(b) and all(x is y for x, y in zip(a, b))
    )


def with_children(node: Node, children: Tuple[Node, ...]) -> Node:
    """A copy of ``node`` with its children (or parameters) replaced.

    When every child is (identically) unchanged the original node is
    returned, so rebuilt spines share structure with their source tree.
    """
    kids = tuple(children)
    if isinstance(node, Element):
        if _same_forest(kids, node.children):
            return node
        return Element(node.label, kids, node.attributes)
    if isinstance(node, FunctionCall):
        if _same_forest(kids, node.params):
            return node
        return FunctionCall(node.name, kids, node.endpoint, node.namespace)
    if kids:
        raise ValueError("data leaves cannot have children")
    return node


def iter_subtree(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, pre-order (iteratively)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        kids = children_of(current)
        if kids:
            stack.extend(reversed(kids))


def tree_size(node: Node) -> int:
    """Number of nodes in the subtree rooted at ``node``."""
    return sum(1 for _ in iter_subtree(node))


def tree_depth(node: Node) -> int:
    """Height of the subtree rooted at ``node`` (a leaf has depth 1)."""
    deepest = 0
    stack = [(node, 1)]
    while stack:
        current, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        for child in children_of(current):
            stack.append((child, depth + 1))
    return deepest


def count_function_nodes(node: Node) -> int:
    """How many function nodes appear in the subtree (intensional size)."""
    return sum(1 for n in iter_subtree(node) if isinstance(n, FunctionCall))


def is_extensional(node: Node) -> bool:
    """True iff the subtree contains no function node (fully materialized)."""
    return count_function_nodes(node) == 0
