"""Shared XML name constants for the Active XML serialization.

Both the DOM-building parser (:mod:`repro.doc.xml_io`) and the
streaming pipeline (:mod:`repro.stream`) need the ``int:`` namespace
and the Clark-notation tags of the three intensional wrapper elements;
keeping them here avoids an import cycle between the two.
"""

from __future__ import annotations

from repro.automata.symbols import intern_symbol

#: The Active XML intensional namespace.
INT_NS = "http://www.activexml.com/ns/int"

#: Clark-notation tags of the intensional wrapper elements.
FUN_TAG = intern_symbol("{%s}fun" % INT_NS)
PARAMS_TAG = intern_symbol("{%s}params" % INT_NS)
PARAM_TAG = intern_symbol("{%s}param" % INT_NS)
