"""Path-based navigation and splicing over immutable document trees.

A *path* is a tuple of child indices from the root; the empty path is the
root itself.  Because nodes are immutable, a rewriting step (replacing a
function node by the forest a call returned, Definition 4) is realized by
:func:`splice_at`, which rebuilds the spine from the root down to the
spliced position and shares every untouched subtree.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.doc.nodes import (
    FunctionCall,
    Node,
    children_of,
    symbol_of,
    with_children,
)

Path = Tuple[int, ...]


def get_node(root: Node, path: Path) -> Node:
    """The node addressed by ``path`` (IndexError if out of range)."""
    node = root
    for index in path:
        node = children_of(node)[index]
    return node


def iter_nodes(root: Node) -> Iterator[Tuple[Path, Node]]:
    """Yield ``(path, node)`` for every node, pre-order."""
    stack: List[Tuple[Path, Node]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield path, node
        kids = children_of(node)
        for index in range(len(kids) - 1, -1, -1):
            stack.append((path + (index,), kids[index]))


def find_function_nodes(root: Node) -> List[Tuple[Path, FunctionCall]]:
    """All function nodes with their paths, in document (pre-)order."""
    return [
        (path, node)
        for path, node in iter_nodes(root)
        if isinstance(node, FunctionCall)
    ]


def outermost_function_nodes(root: Node) -> List[Tuple[Path, FunctionCall]]:
    """Function nodes not nested inside another function node's parameters."""
    result: List[Tuple[Path, FunctionCall]] = []

    def visit(node: Node, path: Path) -> None:
        if isinstance(node, FunctionCall):
            result.append((path, node))
            return  # do not descend: inner calls live in the parameters
        for index, child in enumerate(children_of(node)):
            visit(child, path + (index,))

    visit(root, ())
    return result


def replace_at(root: Node, path: Path, replacement: Node) -> Node:
    """A new tree with the node at ``path`` replaced by ``replacement``."""
    if not path:
        return replacement
    return _rebuild(root, path, (replacement,))


def splice_at(root: Node, path: Path, forest: Sequence[Node]) -> Node:
    """A new tree with the node at ``path`` replaced by a sibling forest.

    This is the paper's rewriting step: "the node v and the subtree rooted
    at it are deleted from t, and the forest trees of some output instance
    of f are plugged at the place of v" (Definition 4, footnote 3).

    Splicing at the root is only defined for single-tree forests.
    """
    if not path:
        if len(forest) != 1:
            raise ValueError(
                "cannot splice a forest of %d trees at the root" % len(forest)
            )
        return forest[0]
    return _rebuild(root, path, tuple(forest))


def _rebuild(node: Node, path: Path, forest: Tuple[Node, ...]) -> Node:
    index = path[0]
    kids = children_of(node)
    if index >= len(kids):
        raise IndexError("path step %d out of range" % index)
    if len(path) == 1:
        new_kids = kids[:index] + forest + kids[index + 1:]
    else:
        new_kids = (
            kids[:index]
            + (_rebuild(kids[index], path[1:], forest),)
            + kids[index + 1:]
        )
    return with_children(node, new_kids)


def child_word(node: Node) -> Tuple[str, ...]:
    """The word formed by the symbols of a node's children.

    This is the word ``w`` the per-node rewriting of Section 4 operates
    on: element labels, function names, and ``#data`` for data leaves.
    """
    return tuple(symbol_of(child) for child in children_of(node))
