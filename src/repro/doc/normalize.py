"""Wire normalization: make node paths survive an XML round-trip.

The diff/edit machinery addresses nodes by *paths* — tuples of child
indices.  For a path computed on one side of an exchange to address the
same node on the other side, ``parse(serialize(t))`` must reproduce the
exact child lists of ``t``.  The serialization of :mod:`repro.doc.xml_io`
is faithful for trees in *wire normal form* but silently perturbs three
shapes the in-memory model admits:

- a whitespace-only :class:`~repro.doc.nodes.Text` child disappears on
  re-parse (the parser strips and ignores empty text), shifting the
  indices of every later sibling;
- a text value with leading/trailing whitespace comes back stripped, so
  the node compares unequal even though its *path* still resolves;
- mixed content (a non-blank text among element/call siblings, or
  several adjacent text children) either fails to parse or collapses
  into a single merged leaf, again renumbering siblings.

:func:`normalize_node` puts a tree into wire normal form — drops
whitespace-only text children, strips the surviving text values, and
rejects the genuinely unserializable mixed-content shapes with a typed
:class:`~repro.errors.DocumentError` — so that afterwards

    ``parse(serialize(t)) == t``  and every path of ``t`` addresses the
    same node before and after the round-trip.

The incremental enforcement sessions (:mod:`repro.incremental`) and the
gateway's edit-script mode normalize every document and edited fragment
at ingestion, which is what makes client-computed edit paths stable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.errors import DocumentError


class UnserializableDocumentError(DocumentError):
    """The tree has no faithful XML serialization (mixed content)."""


def normalize_node(node: Node) -> Node:
    """The wire normal form of a subtree (see module docstring).

    Idempotent; raises :class:`UnserializableDocumentError` for mixed
    content the ``int:`` syntax cannot carry.  Returns ``node`` itself
    (same object) when it is already normal, so normalization preserves
    structural sharing — an already-normal subtree keeps its identity.
    """
    if isinstance(node, Text):
        stripped = node.value.strip()
        return node if stripped == node.value else Text(stripped)
    if isinstance(node, Element):
        children, changed = _normal_children(node.children, node.label)
        if not changed:
            return node
        return Element(node.label, children, node.attributes)
    if isinstance(node, FunctionCall):
        # int:param wraps each parameter individually, so a Text
        # parameter round-trips even when empty — only strip values.
        params: List[Node] = []
        changed = False
        for param in node.params:
            if isinstance(param, Text):
                normal: Node = normalize_node(param)
            else:
                normal = normalize_node(param)
                if isinstance(normal, Text) and not normal.value:
                    raise UnserializableDocumentError(
                        "empty non-text parameter of %r cannot be "
                        "serialized" % node.name
                    )
            changed = changed or normal is not param
            params.append(normal)
        if not changed:
            return node
        return FunctionCall(
            node.name, tuple(params), node.endpoint, node.namespace
        )
    raise TypeError("not a document node: %r" % (node,))


def _normal_children(
    children: Tuple[Node, ...], label: str
) -> Tuple[Tuple[Node, ...], bool]:
    normal: List[Node] = []
    changed = False
    for child in children:
        if isinstance(child, Text) and not child.value.strip():
            changed = True  # dropped: it would vanish on re-parse
            continue
        result = normalize_node(child)
        changed = changed or result is not child
        normal.append(result)
    texts = sum(1 for child in normal if isinstance(child, Text))
    if texts and len(normal) > 1:
        raise UnserializableDocumentError(
            "mixed content under <%s> does not survive an XML "
            "round-trip (%d text node(s) among %d children)"
            % (label, texts, len(normal))
        )
    return tuple(normal), changed


def normalize_document(document: Document) -> Document:
    """Wire normal form of a whole document.

    The root must be an element or a function call — a bare text root
    has no XML serialization at all.
    """
    if isinstance(document.root, Text):
        raise UnserializableDocumentError(
            "a text-only root cannot be serialized as a document"
        )
    root = normalize_node(document.root)
    return document if root is document.root else Document(root)


def is_wire_normal(node: Node) -> bool:
    """True iff :func:`normalize_node` would return ``node`` unchanged."""
    try:
        return normalize_node(node) is node
    except DocumentError:
        return False
