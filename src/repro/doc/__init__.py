"""Intensional XML documents (Definition 1 of the paper).

An intensional document is an ordered labeled tree with two kinds of
internal structure:

- *data nodes*: elements labeled from ``L`` with ordered children, and
  leaves carrying atomic data values from ``D``;
- *function nodes*: embedded Web-service calls labeled from ``F``, whose
  children subtrees are the call's parameters.

Nodes are immutable; rewriting steps (Definition 4) produce new trees via
the path-based splicing helpers in :mod:`repro.doc.paths`.  The XML
serialization (the ``int:`` namespace syntax of Section 7) lives in
:mod:`repro.doc.xml_io`.
"""

from repro.doc.nodes import Element, FunctionCall, Node, Text, symbol_of
from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.doc.paths import (
    child_word,
    find_function_nodes,
    get_node,
    iter_nodes,
    replace_at,
    splice_at,
)
from repro.doc.xml_io import document_from_xml, document_to_xml, node_from_xml, node_to_xml
from repro.doc.diff import Edit, diff_documents, diff_forests
from repro.doc.normalize import (
    UnserializableDocumentError,
    is_wire_normal,
    normalize_document,
    normalize_node,
)

__all__ = [
    "Node",
    "Element",
    "Text",
    "FunctionCall",
    "symbol_of",
    "el",
    "text",
    "call",
    "Document",
    "get_node",
    "iter_nodes",
    "replace_at",
    "splice_at",
    "child_word",
    "find_function_nodes",
    "document_to_xml",
    "document_from_xml",
    "node_to_xml",
    "node_from_xml",
    "Edit",
    "diff_documents",
    "diff_forests",
    "UnserializableDocumentError",
    "is_wire_normal",
    "normalize_document",
    "normalize_node",
]
