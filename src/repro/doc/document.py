"""The :class:`Document` wrapper around a root node.

A document is just a root node plus convenience methods; keeping it thin
means every helper also works on bare nodes (function outputs are
forests, not documents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.doc import paths
from repro.doc.nodes import (
    FunctionCall,
    Node,
    count_function_nodes,
    is_extensional,
    iter_subtree,
    symbol_of,
    tree_depth,
    tree_size,
)


@dataclass(frozen=True)
class Document:
    """An intensional XML document (Definition 1)."""

    root: Node

    @property
    def root_symbol(self) -> str:
        """The symbol of the root node (label, function name or ``#data``)."""
        return symbol_of(self.root)

    def size(self) -> int:
        """Total number of nodes."""
        return tree_size(self.root)

    def depth(self) -> int:
        """Tree height."""
        return tree_depth(self.root)

    def function_count(self) -> int:
        """Number of embedded service calls (intensional parts)."""
        return count_function_nodes(self.root)

    def is_extensional(self) -> bool:
        """True iff the document is fully materialized (no calls left)."""
        return is_extensional(self.root)

    def nodes(self) -> Iterator[Tuple[paths.Path, Node]]:
        """Yield ``(path, node)`` pairs, pre-order."""
        return paths.iter_nodes(self.root)

    def function_nodes(self) -> List[Tuple[paths.Path, FunctionCall]]:
        """All function nodes with their paths, document order."""
        return paths.find_function_nodes(self.root)

    def get(self, path: paths.Path) -> Node:
        """The node at ``path``."""
        return paths.get_node(self.root, path)

    def replace(self, path: paths.Path, replacement: Node) -> "Document":
        """A new document with the node at ``path`` swapped out."""
        return Document(paths.replace_at(self.root, path, replacement))

    def splice(self, path: paths.Path, forest) -> "Document":
        """A new document with the node at ``path`` replaced by a forest.

        This is one rewriting step ``t --v--> t'`` of Definition 4.
        """
        return Document(paths.splice_at(self.root, path, forest))

    def to_xml(self, pretty: bool = True) -> str:
        """Serialize to the Active XML ``int:`` namespace syntax."""
        from repro.doc.xml_io import document_to_xml

        return document_to_xml(self, pretty=pretty)

    @staticmethod
    def from_xml(source: str) -> "Document":
        """Parse from the Active XML syntax."""
        from repro.doc.xml_io import document_from_xml

        return document_from_xml(source)

    def pretty(self) -> str:
        """An indented, human-oriented rendering used in examples/tests."""
        lines: List[str] = []
        _pretty(self.root, 0, lines)
        return "\n".join(lines)


def _pretty(node: Node, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    from repro.doc.nodes import Element, Text

    if isinstance(node, Text):
        lines.append('%s"%s"' % (pad, node.value))
    elif isinstance(node, Element):
        lines.append("%s%s" % (pad, node.label))
        for child in node.children:
            _pretty(child, depth + 1, lines)
    else:
        lines.append("%s[%s]  (service call)" % (pad, node.name))
        for param in node.params:
            _pretty(param, depth + 1, lines)
