"""Fluent construction helpers for intensional documents.

The running example of the paper (Figure 2.a) becomes::

    from repro.doc import el, call, text

    newspaper = el(
        "newspaper",
        el("title", "The Sun"),
        el("date", "04/10/2002"),
        call("Get_Temp", el("city", "Paris"),
             endpoint="http://www.forecast.com/soap",
             namespace="urn:xmethods-weather"),
        call("TimeOut", text("exhibits"),
             endpoint="http://www.timeout.com/paris",
             namespace="urn:timeout-program"),
    )

Bare strings passed as children are coerced to :class:`Text` leaves.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.doc.nodes import Element, FunctionCall, Node, Text

Child = Union[Node, str]


def text(value: str) -> Text:
    """A data leaf."""
    return Text(str(value))


def _coerce(children: Tuple[Child, ...]) -> Tuple[Node, ...]:
    coerced = []
    for child in children:
        if isinstance(child, str):
            coerced.append(Text(child))
        elif isinstance(child, (Text, Element, FunctionCall)):
            coerced.append(child)
        else:
            raise TypeError("not a document node or string: %r" % (child,))
    return tuple(coerced)


def el(label: str, *children: Child, attrs: dict | None = None) -> Element:
    """An element node; string children become data leaves.

    ``attrs`` carries XML attributes, e.g.
    ``el("exhibit", ..., attrs={"id": "42"})``.
    """
    attributes = tuple(sorted((attrs or {}).items()))
    return Element(label, _coerce(children), attributes)


def call(
    name: str,
    *params: Child,
    endpoint: str | None = None,
    namespace: str | None = None,
) -> FunctionCall:
    """A function node (embedded service call) with parameter subtrees."""
    return FunctionCall(name, _coerce(params), endpoint, namespace)
