"""Command-line interface: validate, rewrite and compare on files.

A thin, scriptable front end over the library, mirroring how the paper's
Schema Enforcement module would be driven operationally:

- ``validate`` — is a document (``int:`` XML) an instance of a schema
  (XML Schema_int)?
- ``rewrite`` — materialize a document into an exchange schema; since
  the CLI has no live services, calls are served by a *sampling*
  responder seeded from ``--seed`` (deterministic), drawing outputs from
  the declared signatures;
- ``compat`` — the Section 6 check between two schema files;
- ``inspect`` — document statistics (size, depth, embedded calls);
- ``figures`` — regenerate the paper's automata figures as Graphviz DOT;
- ``stats`` — render a trace captured with ``rewrite --trace`` as a span
  tree;
- ``profile`` — aggregate such a trace into a deterministic call-tree
  profile with per-phase (compile/determinize/product/game/materialize)
  attribution;
- ``bench`` — run the named benchmark suite, emit ``BENCH_<name>.json``
  trajectory files, and fail on deterministic work-counter regressions;
- ``fuzz`` — the differential conformance harness: fuzz seeded
  scenarios through the engine configuration matrix and the reference
  interpreter, freeze shrunk failures as corpus entries, replay them.

Usage::

    python -m repro.cli validate doc.xml schema.xsd
    python -m repro.cli rewrite doc.xml sender.xsd exchange.xsd -o out.xml
    python -m repro.cli rewrite doc.xml s.xsd e.xsd --trace t.jsonl --metrics -
    python -m repro.cli compat sender.xsd exchange.xsd --k 2
    python -m repro.cli inspect doc.xml
    python -m repro.cli figures out/
    python -m repro.cli stats t.jsonl
    python -m repro.cli profile t.jsonl --json profile.json
    python -m repro.cli bench --smoke --out bench-out
    python -m repro.cli fuzz --seeds 200
    python -m repro.cli fuzz --replay tests/corpus
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
from typing import List, Optional

from repro.axml.enforcement import SchemaEnforcer
from repro.doc.document import Document
from repro.errors import ReproError, TransientFault
from repro.schema.generator import InstanceGenerator
from repro.schema.model import Schema
from repro.schema.validate import validate
from repro.schemarewrite.compat import schema_safely_rewrites
from repro.services.resilience import ResiliencePolicy, ResilientInvoker
from repro.xschema.compile import compile_xschema
from repro.xschema.parser import parse_xschema


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_schema(path: str, root: Optional[str] = None) -> Schema:
    return compile_xschema(parse_xschema(_read(path), root=root))


def _effective_workers(args) -> int:
    """The worker count the engine will resolve (flag, else env, else 1)."""
    if args.workers is not None:
        return max(1, args.workers)
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return 1


def _sampling_invoker(schema: Schema, seed: int, per_call: bool = False):
    """Serve calls by sampling output instances of declared signatures.

    The default draws from one sequential RNG stream — byte-compatible
    with earlier releases, but dependent on invocation *order*.  With
    ``per_call`` each call's output is drawn from an RNG derived from
    ``(seed, call fingerprint)`` instead, so results do not depend on
    scheduling — which is what makes ``rewrite --workers N``
    deterministic and output-identical at any worker count.
    """
    generator = InstanceGenerator(schema, random.Random(seed), max_depth=4)

    def invoker(fc):
        if schema.output_type(fc.name) is None:
            raise ReproError(
                "no signature for %r in the sender schema" % fc.name
            )
        if per_call:
            from repro.exec.fingerprint import call_fingerprint

            rng = random.Random("%s|%s" % (seed, call_fingerprint(fc)))
            return InstanceGenerator(
                schema, rng, max_depth=4
            ).output_forest(fc.name)
        return generator.output_forest(fc.name)

    return invoker


def cmd_validate(args) -> int:
    document = Document.from_xml(_read(args.document))
    schema = _load_schema(args.schema)
    report = validate(document, schema, strict=not args.lenient)
    if report.ok:
        print("valid")
        return 0
    print("INVALID:")
    for violation in report.violations:
        print("  " + str(violation))
    return 1


def _resilient_invoker(args, invoker):
    """Wrap the sampling invoker per the CLI's resilience knobs.

    ``--flaky N`` injects a transient fault on every Nth call; any of the
    other knobs (or an injection) enables the resilient layer.
    """
    if args.flaky:
        inner, counter = invoker, {"calls": 0}
        counter_lock = threading.Lock()  # workers share the injection count

        def invoker(fc):
            with counter_lock:
                counter["calls"] += 1
                calls = counter["calls"]
            if calls % args.flaky == 0:
                raise TransientFault("injected outage (call #%d)" % calls)
            return inner(fc)

    wanted = (
        args.flaky
        or args.retries is not None
        or args.call_budget is not None
        or args.call_timeout is not None
        or args.document_deadline is not None
    )
    if not wanted:
        return invoker, None
    retries = 3 if args.retries is None else args.retries
    policy = ResiliencePolicy(
        max_attempts=retries + 1,
        jitter_seed=args.jitter_seed,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        call_budget=args.call_budget,
        call_timeout=args.call_timeout,
        document_deadline=args.document_deadline,
    )
    resilient = ResilientInvoker(invoker, policy)
    return resilient, resilient


def _compile_cache_option(args):
    """Resolve ``--compile-cache``: None = ambient, off-ish = disabled,
    anything else = a persistence directory for compiled artifacts."""
    from repro.compile import DISABLED, CompilationCache

    value = getattr(args, "compile_cache", None)
    if value is None:
        return None
    if value.strip().lower() in ("off", "0", "false", "no", "disabled"):
        return DISABLED
    return CompilationCache(persist_dir=value)


def _file_chunks(path: str, size: int = 1 << 16):
    """Yield a document's bytes in bounded chunks (streaming input)."""
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(size)
            if not chunk:
                return
            yield chunk


def _cmd_rewrite_stream(args) -> int:
    """``rewrite --stream``: bounded-memory single-pass enforcement.

    The document is never fully materialized: the file is read in
    chunks, children words are rewritten as their elements close, and
    the enforced serialization is written out while the tail is still
    being parsed.  Output bytes match the DOM path exactly; on error a
    partial prefix may already be out, so a ``--output`` file is removed.
    """
    if args.mode == "possible":
        print("FAILED: --stream supports safe/auto modes only",
              file=sys.stderr)
        return 2
    sender = _load_schema(args.sender_schema)
    exchange = _load_schema(args.exchange_schema)
    enforcer = SchemaEnforcer(
        exchange, sender, k=args.k, mode=args.mode,
        workers=args.workers, dedup=args.dedup,
        compile_cache=_compile_cache_option(args),
    )
    invoker, resilient = _resilient_invoker(
        args, _sampling_invoker(sender, args.seed, per_call=True)
    )
    source = _file_chunks(args.document)
    if args.output:
        sink = open(args.output, "w", encoding="utf-8")
        write = sink.write
    else:
        sink = None
        write = sys.stdout.write
    try:
        outcome = enforcer.enforce_stream(source, invoker, write)
    except BaseException:
        if sink is not None:
            sink.close()
            os.remove(args.output)  # discard the partial prefix
        raise
    finally:
        if sink is not None:
            sink.close()
    if resilient is not None:
        print("resilience: %s" % resilient.report.summary(), file=sys.stderr)
    if not outcome.ok:
        if args.output:
            os.remove(args.output)  # discard the partial prefix
        print("FAILED: %s" % outcome.error, file=sys.stderr)
        return 1
    if not args.output:
        sys.stdout.write("\n")
    print(
        "rewritten with %d call(s): %s"
        % (outcome.calls_made, ", ".join(outcome.log.invoked) or "none"),
        file=sys.stderr,
    )
    print(
        "analysis cache: %d hit(s), %d miss(es)"
        % (outcome.cache_hits, outcome.cache_misses),
        file=sys.stderr,
    )
    if outcome.degraded_functions:
        print(
            "degraded around unavailable function(s): %s"
            % ", ".join(outcome.degraded_functions),
            file=sys.stderr,
        )
    return 0


def cmd_rewrite(args) -> int:
    from repro.compile import context as compile_context
    from repro.obs import MetricsRegistry, Tracer, observing

    if args.stream:
        return _cmd_rewrite_stream(args)
    document = Document.from_xml(_read(args.document))
    sender = _load_schema(args.sender_schema)
    exchange = _load_schema(args.exchange_schema)
    workers = _effective_workers(args)
    compile_cache = _compile_cache_option(args)
    enforcer = SchemaEnforcer(
        exchange, sender, k=args.k, mode=args.mode,
        workers=args.workers, dedup=args.dedup,
        compile_cache=compile_cache,
    )
    effective_cache = (
        compile_cache if compile_cache is not None else compile_context.cache()
    )
    compile_before = effective_cache.stats()
    invoker, resilient = _resilient_invoker(
        args, _sampling_invoker(sender, args.seed, per_call=workers > 1)
    )
    observe = args.trace or args.metrics
    tracer, registry = Tracer(), MetricsRegistry()
    if observe:
        with observing(tracer, registry):
            outcome = enforcer.enforce_document(document, invoker)
    else:
        outcome = enforcer.enforce_document(document, invoker)
    if args.trace:
        tracer.export_jsonl(args.trace)
        print("trace: %d span(s) -> %s" % (len(tracer.finished()), args.trace),
              file=sys.stderr)
    if args.metrics:
        text = registry.to_prometheus()
        if args.metrics == "-":
            sys.stdout.write(text)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
            print("metrics -> %s" % args.metrics, file=sys.stderr)
    if resilient is not None:
        print("resilience: %s" % resilient.report.summary(), file=sys.stderr)
    if not outcome.ok:
        print("FAILED: %s" % outcome.error, file=sys.stderr)
        return 1
    xml = outcome.document.to_xml()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(xml)
    else:
        print(xml)
    print(
        "rewritten with %d call(s): %s"
        % (outcome.calls_made, ", ".join(outcome.log.invoked) or "none"),
        file=sys.stderr,
    )
    print(
        "analysis cache: %d hit(s), %d miss(es)"
        % (outcome.cache_hits, outcome.cache_misses),
        file=sys.stderr,
    )
    if effective_cache.enabled:
        print(
            "compile cache: %s" % _compile_delta(
                compile_before, effective_cache.stats()
            ),
            file=sys.stderr,
        )
    else:
        print("compile cache: off", file=sys.stderr)
    if outcome.exec_report is not None:
        print(outcome.exec_report.summary(), file=sys.stderr)
    if outcome.degraded_functions:
        print(
            "degraded around unavailable function(s): %s"
            % ", ".join(outcome.degraded_functions),
            file=sys.stderr,
        )
    return 0


def _compile_delta(before, after) -> str:
    """This run's share of the compilation-cache accounting."""
    from repro.compile import CacheStats

    delta = CacheStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        evictions=after.evictions - before.evictions,
        entries=after.entries,
        interned=after.interned,
        persist_hits=after.persist_hits - before.persist_hits,
        persist_misses=after.persist_misses - before.persist_misses,
        persist_errors=after.persist_errors - before.persist_errors,
    )
    return delta.summary()


def cmd_compat(args) -> int:
    sender = _load_schema(args.sender_schema, root=args.root)
    receiver = _load_schema(args.exchange_schema)
    report = schema_safely_rewrites(
        sender, receiver, root=args.root, k=args.k
    )
    print(report)
    return 0 if report.compatible else 1


def cmd_figures(args) -> int:
    """Regenerate the paper's automata figures as Graphviz DOT files."""
    import os

    from repro.automata.dfa import complete, determinize
    from repro.automata.dot import dfa_to_dot, expansion_to_dot, product_to_dot
    from repro.automata.glushkov import glushkov_nfa
    from repro.regex.parser import parse_regex
    from repro.rewriting.expansion import build_expansion
    from repro.rewriting.lazy import analyze_safe_lazy
    from repro.rewriting.safe import (
        analyze_safe,
        problem_alphabet,
        target_complement,
    )

    word = ("title", "date", "Get_Temp", "TimeOut")
    outputs = {
        "Get_Temp": parse_regex("temp"),
        "TimeOut": parse_regex("(exhibit | performance)*"),
    }
    target2 = parse_regex("title.date.temp.(TimeOut | exhibit*)")
    target3 = parse_regex("title.date.temp.exhibit*")

    os.makedirs(args.output_dir, exist_ok=True)
    figures = {
        "fig4_awk.dot": expansion_to_dot(
            build_expansion(word, outputs, k=1), "Figure 4: A_w^1"
        ),
        "fig5_complement_star2.dot": dfa_to_dot(
            target_complement(
                target2, problem_alphabet(word, outputs, target2)
            ),
            "Figure 5: complement of (**)",
        ),
        "fig6_product_star2.dot": product_to_dot(
            analyze_safe(word, outputs, target2, k=1), "Figure 6"
        ),
        "fig7_complement_star3.dot": dfa_to_dot(
            target_complement(
                target3, problem_alphabet(word, outputs, target3)
            ),
            "Figure 7: complement of (***)",
        ),
        "fig8_product_star3.dot": product_to_dot(
            analyze_safe(word, outputs, target3, k=1), "Figure 8"
        ),
        "fig10_target_star3.dot": dfa_to_dot(
            complete(determinize(
                glushkov_nfa(target3),
                problem_alphabet(word, outputs, target3),
            )),
            "Figure 10: automaton A for (***)",
        ),
        "fig12_lazy_star2.dot": product_to_dot(
            analyze_safe_lazy(word, outputs, target2, k=1), "Figure 12"
        ),
    }
    for name, dot in figures.items():
        path = os.path.join(args.output_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dot + "\n")
        print("wrote %s" % path)
    return 0


def cmd_stats(args) -> int:
    """Render a JSONL trace (from ``rewrite --trace``) as a span tree."""
    from repro.obs import render_span_dicts, spans_from_jsonl

    spans = spans_from_jsonl(_read(args.trace))
    if not spans:
        print("no spans in %s" % args.trace, file=sys.stderr)
        return 1
    print(render_span_dicts(spans))
    print("%d span(s), %.3fs total in root span(s)" % (
        len(spans),
        sum(
            span.get("duration") or 0.0
            for span in spans
            if span.get("parent_id") is None
        ),
    ), file=sys.stderr)
    compile_spans = [
        span for span in spans
        if str(span.get("name", "")).startswith("compile.")
    ]
    if compile_spans:
        print("compile: %d artifact build(s), %.3fs" % (
            len(compile_spans),
            sum(span.get("duration") or 0.0 for span in compile_spans),
        ), file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    """Aggregate a JSONL trace into a flame-style call-tree profile."""
    from repro.obs import profile_spans, spans_from_jsonl

    spans = spans_from_jsonl(_read(args.trace))
    if not spans:
        print("no spans in %s" % args.trace, file=sys.stderr)
        return 1
    profile = profile_spans(spans)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(profile.to_json())
        print("profile -> %s" % args.json, file=sys.stderr)
    print(profile.render(max_depth=args.max_depth))
    return 0


def cmd_bench(args) -> int:
    """Run named benchmarks; diff work counters against the trajectory.

    Exit codes: 0 — no counter regressions (or nothing to compare);
    1 — at least one deterministic counter regressed beyond the
    threshold; 2 — operational error.
    """
    from repro.obs import bench as bench_mod

    if args.list:
        for name, bench in bench_mod.BENCHES.items():
            summary = (bench.__doc__ or "").strip().splitlines()
            print("%-16s %s" % (name, summary[0] if summary else ""))
        return 0
    names = args.names or list(bench_mod.BENCHES)
    unknown = [name for name in names if name not in bench_mod.BENCHES]
    if unknown:
        print("error: unknown bench(es): %s (have: %s)"
              % (", ".join(unknown), ", ".join(bench_mod.BENCHES)),
              file=sys.stderr)
        return 2
    out_dir = args.out or os.environ.get("REPRO_BENCH_DIR", ".")
    failures = 0
    for name in names:
        payload = bench_mod.run_bench(name, smoke=args.smoke)
        baseline_dir = args.baseline or out_dir
        baseline_path = os.path.join(
            baseline_dir, bench_mod.bench_filename(name)
        )
        # Read the baseline before the write below replaces it.
        regressions = bench_mod.compare_against(
            payload, baseline_path, threshold=args.threshold
        )
        path = bench_mod.write_payload(payload, out_dir)
        wall = ", ".join(
            "%s=%.3fs" % (key, value)
            for key, value in sorted(payload.items())
            if key.endswith("_seconds") and isinstance(value, float)
        )
        print("%s -> %s%s" % (name, path, " (%s)" % wall if wall else ""))
        if regressions is None:
            print("  no comparable baseline (first run, or smoke flag "
                  "differs)")
            continue
        if not regressions:
            print("  no counter regressions vs %s" % baseline_path)
            continue
        failures += 1
        print("  REGRESSIONS vs %s:" % baseline_path)
        for line in regressions:
            print("    " + line)
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Run the exchange gateway until interrupted (SIGINT/SIGTERM).

    Exits 0 after a graceful drain; 2 on startup failure (port in use,
    unreadable registry or snapshot).
    """
    import asyncio
    import signal

    from repro.gateway import Gateway, GatewayConfig

    config = GatewayConfig(
        host=args.host,
        port=args.port,
        registry_path=args.registry,
        queue_limit=args.queue_limit,
        per_peer_limit=args.per_peer,
        pool_size=args.pool,
        engine_workers=args.workers,
        max_body_bytes=args.max_body,
        default_deadline=args.deadline,
        k=args.k,
        mode=args.mode,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        compile_cache_dir=args.compile_cache,
    )
    gateway = Gateway(config=config)
    if args.snapshot:
        with open(args.snapshot, "rb") as handle:
            blob = handle.read()
        try:
            imported = gateway.compile_cache.import_snapshot(blob)
        except ValueError as error:
            print("error: bad snapshot %s: %s" % (args.snapshot, error),
                  file=sys.stderr)
            return 2
        print("warm-start: %d compiled artifact(s) from %s"
              % (imported, args.snapshot), file=sys.stderr)
    if gateway.registry.load_errors:
        for note in gateway.registry.load_errors:
            print("registry warning: %s" % note, file=sys.stderr)

    async def run() -> int:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop; ctrl-C still raises KeyboardInterrupt
        try:
            await gateway.start()
        except OSError as error:
            print("error: cannot bind %s:%d: %s"
                  % (config.host, config.port, error), file=sys.stderr)
            return 2
        print("gateway listening on http://%s:%d (%d peer(s) registered)"
              % (config.host, gateway.port, len(gateway.registry.names())))
        sys.stdout.flush()
        try:
            await stop.wait()
        except asyncio.CancelledError:
            pass
        print("draining...", file=sys.stderr)
        await gateway.stop(drain=True)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_fuzz(args) -> int:
    """Differential conformance fuzzing (and corpus replay).

    Exit codes: 0 — every scenario agreed across the configuration
    matrix and with the reference interpreter; 1 — at least one
    disagreement (each is shrunk and frozen under ``--corpus-dir``
    unless ``--self-test``); 2 — operational error.
    """
    from repro.conformance import corpus as corpus_mod
    from repro.conformance import differential, fuzzer

    if args.replay:
        failures = 0
        entries = 0
        for target in args.replay:
            for path in corpus_mod.corpus_paths(target):
                entries += 1
                found = corpus_mod.replay_entry(corpus_mod.load_entry(path))
                if found:
                    failures += 1
                    print("REPLAY FAILED: %s" % path)
                    for disagreement in found:
                        print("  " + str(disagreement))
        print("replayed %d corpus entr%s, %d failure(s)"
              % (entries, "y" if entries == 1 else "ies", failures))
        return 1 if failures else 0

    if getattr(args, "edits", False):
        args.kind = "edits"
    matrix = (
        differential.SELF_TEST_MATRIX if args.self_test
        else differential.DEFAULT_MATRIX
    )
    report = differential.DifferentialReport()
    failures = 0
    for seed in range(args.start, args.start + args.seeds):
        before = len(report.disagreements)
        differential.run_seed(
            seed, kind=args.kind, matrix=matrix,
            invert_reference=args.self_test, report=report,
        )
        fresh = report.disagreements[before:]
        if not fresh:
            continue
        failures += 1
        for disagreement in fresh:
            print("DISAGREEMENT: %s" % disagreement)
        if not args.self_test:
            for path in _freeze_failures(args, seed, fresh, matrix):
                print("  corpus entry -> %s" % path)
        if failures >= args.max_failures:
            print("stopping after %d failing seed(s)" % failures,
                  file=sys.stderr)
            break
    print(report.summary())
    if args.self_test:
        detected = not report.ok
        print("self-test: harness %s the injected divergence"
              % ("DETECTED" if detected else "MISSED"))
        return 1 if detected else 2
    return 0 if report.ok else 1


def _freeze_failures(args, seed: int, fresh, matrix) -> List[str]:
    """Shrink each failing scenario of one seed and write corpus entries."""
    from repro.conformance import corpus as corpus_mod
    from repro.conformance import differential, fuzzer

    paths: List[str] = []
    kinds = {disagreement.kind for disagreement in fresh}
    note = "; ".join(str(d) for d in fresh[:3])
    if "word" in kinds:
        scenario = fuzzer.fuzz_word_scenario(seed)

        def word_fails(candidate) -> bool:
            return bool(differential.run_word_scenario(candidate)[0])

        scenario = corpus_mod.shrink_word_scenario(scenario, word_fails)
        paths.append(corpus_mod.save_entry(
            args.corpus_dir, corpus_mod.word_entry(scenario, note=note)
        ))
    if "document" in kinds:
        scenario = fuzzer.fuzz_document_scenario(seed)

        def document_fails(candidate) -> bool:
            return bool(
                differential.run_document_scenario(candidate, matrix)
            )

        scenario = corpus_mod.shrink_document_scenario(
            scenario, document_fails
        )
        paths.append(corpus_mod.save_entry(
            args.corpus_dir, corpus_mod.document_entry(scenario, note=note)
        ))
    if "edits" in kinds:
        scenario = fuzzer.fuzz_edit_scenario(seed)

        def edits_fail(candidate) -> bool:
            return bool(differential.run_edit_scenario(candidate))

        scenario = corpus_mod.shrink_edit_scenario(scenario, edits_fail)
        paths.append(corpus_mod.save_entry(
            args.corpus_dir, corpus_mod.edit_entry(scenario, note=note)
        ))
    return paths


def cmd_inspect(args) -> int:
    document = Document.from_xml(_read(args.document))
    calls = [fc.name for _path, fc in document.function_nodes()]
    print("root      : %s" % document.root_symbol)
    print("nodes     : %d" % document.size())
    print("depth     : %d" % document.depth())
    print("calls     : %d%s" % (
        len(calls), " (%s)" % ", ".join(calls) if calls else ""))
    print("extensional: %s" % document.is_extensional())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exchange intensional XML data (SIGMOD 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="check a document against a schema")
    p.add_argument("document")
    p.add_argument("schema")
    p.add_argument("--lenient", action="store_true",
                   help="allow undeclared labels (Definition 3 literally)")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("rewrite", help="materialize into an exchange schema")
    p.add_argument("document")
    p.add_argument("sender_schema")
    p.add_argument("exchange_schema")
    p.add_argument("-o", "--output", help="write result here (default stdout)")
    p.add_argument("--k", type=int, default=1, help="depth bound (Def. 7)")
    p.add_argument("--mode", choices=["safe", "possible", "auto"],
                   default="safe")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the simulated service outputs")
    p.add_argument("--flaky", type=int, default=0, metavar="N",
                   help="inject a transient fault on every Nth call")
    p.add_argument("--retries", type=int, default=None,
                   help="retries per call on transient faults "
                        "(default 3 once the resilient layer is enabled)")
    p.add_argument("--jitter-seed", type=int, default=0,
                   help="seed for deterministic backoff jitter")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive faults before a breaker opens")
    p.add_argument("--breaker-cooldown", type=float, default=1.0,
                   help="seconds an open breaker waits before half-open")
    p.add_argument("--call-budget", type=int, default=None,
                   help="max invocation attempts for the whole document")
    p.add_argument("--call-timeout", type=float, default=None,
                   help="per-attempt timeout (simulated clock)")
    p.add_argument("--document-deadline", type=float, default=None,
                   help="deadline for the whole document (simulated clock)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker threads for concurrent call "
                        "materialization (default: $REPRO_WORKERS or 1; "
                        "parallel runs sample service outputs per call, "
                        "so output is identical at any worker count)")
    p.add_argument("--dedup", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="deduplicate identical in-flight calls while "
                        "prefetching (default: $REPRO_DEDUP or on)")
    p.add_argument("--trace", metavar="PATH",
                   help="export a JSONL span trace of the rewrite here")
    p.add_argument("--metrics", metavar="PATH",
                   help="export Prometheus-format metrics here ('-' = stdout)")
    p.add_argument("--compile-cache", metavar="DIR|off", default=None,
                   help="automata compilation cache: 'off' disables it, a "
                        "directory persists compiled artifacts across runs "
                        "(default: in-memory process cache, or "
                        "$REPRO_COMPILE_CACHE)")
    p.add_argument("--stream", action="store_true",
                   help="single-pass streaming enforcement: parse, rewrite "
                        "and emit incrementally with memory bounded by "
                        "document depth (safe/auto modes; simulated service "
                        "outputs are sampled per call as with --workers N, "
                        "and the output is byte-identical to such a run)")
    p.set_defaults(func=cmd_rewrite)

    p = sub.add_parser("compat", help="Section 6 schema compatibility")
    p.add_argument("sender_schema")
    p.add_argument("exchange_schema")
    p.add_argument("--root", help="root label (default: schema's own)")
    p.add_argument("--k", type=int, default=1)
    p.set_defaults(func=cmd_compat)

    p = sub.add_parser(
        "figures", help="regenerate the paper's automata figures (DOT)"
    )
    p.add_argument("output_dir", nargs="?", default="figures")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing and corpus replay",
    )
    p.add_argument("--seeds", type=int, default=25, metavar="N",
                   help="number of seeds to fuzz (default 25)")
    p.add_argument("--start", type=int, default=0, metavar="S",
                   help="first seed (default 0)")
    p.add_argument("--kind", choices=["word", "document", "edits", "all"],
                   default="all",
                   help="scenario family to generate (default all; "
                        "'edits' runs the incremental-vs-full edit "
                        "oracle over the edit matrix)")
    p.add_argument("--edits", action="store_true",
                   help="shorthand for --kind edits")
    p.add_argument("--replay", nargs="+", metavar="PATH",
                   help="replay corpus entries (files or directories) "
                        "instead of fuzzing")
    p.add_argument("--corpus-dir", default="tests/corpus",
                   help="where shrunk failures are frozen "
                        "(default tests/corpus)")
    p.add_argument("--max-failures", type=int, default=5,
                   help="stop after this many failing seeds (default 5)")
    p.add_argument("--self-test", action="store_true",
                   help="corrupt one configuration and invert the reference "
                        "verdicts; exits 1 when the harness catches it "
                        "(proving divergences cannot slip through)")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the exchange gateway (schema enforcement as a service)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8374,
                   help="TCP port (0 = ephemeral; default 8374)")
    p.add_argument("--registry", metavar="PATH", default=None,
                   help="JSON peer-registry file, persisted atomically "
                        "(default: in-memory only)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="admitted (queued + running) request cap "
                        "(default 256; beyond it requests shed with 503)")
    p.add_argument("--per-peer", type=int, default=8,
                   help="default per-peer inflight cap (default 8; "
                        "registration may override per peer)")
    p.add_argument("--pool", type=int, default=4,
                   help="enforcement thread-pool size (default 4)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="wave-scheduler workers inside each enforcement "
                        "(default: $REPRO_WORKERS or 1)")
    p.add_argument("--max-body", type=int, default=4 * 1024 * 1024,
                   help="request-body byte cap, 413 beyond it "
                        "(default 4 MiB)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="default per-request deadline when the request "
                        "carries none (504 on expiry)")
    p.add_argument("--k", type=int, default=1, help="depth bound (Def. 7)")
    p.add_argument("--mode", choices=["safe", "possible", "auto"],
                   default="safe")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive enforcement failures before a peer's "
                        "breaker opens (default 5)")
    p.add_argument("--breaker-cooldown", type=float, default=1.0,
                   help="seconds an open breaker waits before half-open")
    p.add_argument("--compile-cache", metavar="DIR", default=None,
                   help="persist compiled automata here across restarts "
                        "(default: in-memory)")
    p.add_argument("--snapshot", metavar="PATH", default=None,
                   help="pre-seed the compilation cache from a snapshot "
                        "blob (as served by GET /snapshot)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("inspect", help="document statistics")
    p.add_argument("document")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("stats", help="render a JSONL trace as a span tree")
    p.add_argument("trace")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "profile",
        help="aggregate a JSONL trace into a call-tree profile",
    )
    p.add_argument("trace")
    p.add_argument("--json", metavar="PATH",
                   help="also export the profile tree as JSON here")
    p.add_argument("--max-depth", type=int, default=None, metavar="N",
                   help="truncate the rendered tree below depth N")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "bench",
        help="run named benchmarks; fail on work-counter regressions",
    )
    p.add_argument("names", nargs="*", metavar="NAME",
                   help="benches to run (default: all; see --list)")
    p.add_argument("--list", action="store_true",
                   help="list available benches and exit")
    p.add_argument("--smoke", action="store_true",
                   help="reduced scenario sets (CI-sized)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="where BENCH_<name>.json lands "
                        "(default: $REPRO_BENCH_DIR or .)")
    p.add_argument("--baseline", metavar="DIR", default=None,
                   help="diff against this directory's BENCH files "
                        "(default: the output directory's prior files)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="allowed relative counter growth (default 0.10)")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
