"""Canonical structural digests for compilation-cache keys.

Hash-consing needs a key that is (a) *injective* on the structures being
interned — two regexes share a digest iff they are structurally equal —
and (b) cheap to compare and store.  Python's frozen dataclasses give
structural equality, but hashing them is O(size) on every lookup and the
hash is per-process; a content digest is stable across processes, which
is what lets the on-disk cache warm-start peer restarts and repeated CLI
runs (see :mod:`repro.compile.persist`).

The serialization below is a prefix code: every variable-length field
(symbols, child lists) is length-prefixed, so distinct ASTs can never
serialize to the same byte string.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
)


def _symbol(out: List[str], symbol: str) -> None:
    out.append("%d:%s" % (len(symbol), symbol))


def _serialize(r: Regex, out: List[str]) -> None:
    if isinstance(r, Atom):
        out.append("a")
        _symbol(out, r.symbol)
    elif isinstance(r, Epsilon):
        out.append("e")
    elif isinstance(r, Empty):
        out.append("0")
    elif isinstance(r, AnySymbol):
        exclude = sorted(r.exclude)
        out.append("w%d" % len(exclude))
        for symbol in exclude:
            _symbol(out, symbol)
    elif isinstance(r, Seq):
        out.append("s%d(" % len(r.items))
        for item in r.items:
            _serialize(item, out)
        out.append(")")
    elif isinstance(r, Alt):
        out.append("|%d(" % len(r.options))
        for option in r.options:
            _serialize(option, out)
        out.append(")")
    elif isinstance(r, Star):
        out.append("*(")
        _serialize(r.item, out)
        out.append(")")
    elif isinstance(r, Repeat):
        out.append("r%d,%s(" % (r.low, "" if r.high is None else r.high))
        _serialize(r.item, out)
        out.append(")")
    else:
        raise TypeError("cannot digest unknown regex node %r" % (r,))


def _hexdigest(parts: Iterable[str]) -> str:
    return hashlib.sha256("".join(parts).encode("utf-8")).hexdigest()


def regex_digest(r: Regex) -> str:
    """Content digest of a regex AST (injective on structural equality)."""
    out: List[str] = []
    _serialize(r, out)
    return _hexdigest(out)


def symbols_digest(symbols: Iterable[str]) -> str:
    """Content digest of a symbol set (alphabets, invocable partitions)."""
    out: List[str] = ["S"]
    for symbol in sorted(symbols):
        _symbol(out, symbol)
    return _hexdigest(out)


def word_digest(word: Sequence[str]) -> str:
    """Content digest of a children word."""
    out: List[str] = ["W%d" % len(word)]
    for symbol in word:
        _symbol(out, symbol)
    return _hexdigest(out)


def mapping_digest(pairs: Dict[str, str]) -> str:
    """Content digest of a ``name -> digest`` mapping (output types)."""
    out: List[str] = ["M%d" % len(pairs)]
    for name in sorted(pairs):
        _symbol(out, name)
        _symbol(out, pairs[name])
    return _hexdigest(out)


def key_digest(key: Tuple) -> str:
    """Filename-safe digest of a fully-interned cache key.

    Keys are flat tuples of strings and ints by construction (see
    :meth:`repro.compile.cache.CompilationCache`), so ``repr`` is stable
    and unambiguous.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
