"""The shared compilation cache: hash-consed automata artifacts.

Every word analysis in the rewriting stack needs compiled automata — the
Glushkov NFA of each output type, the complete (minimized) DFA of the
target, its complement ``Ā``, the k-depth expansion ``A_w^k`` — and
until this module existed each analysis recompiled them from scratch,
per engine, per document, per peer.  The game state space, not the
document, dominates cost ("Games for Active XML Revisited"), so the two
levers pulled here are:

- **sharing**: artifacts are interned process-wide by canonical content
  digest (:mod:`repro.compile.digest`), so structurally equal types
  compile once no matter which engine, document, or peer asks — and,
  with a persistence directory, once per *content* across process
  restarts (:mod:`repro.compile.persist`);
- **shrinking**: Hopcroft minimization is part of the cached pipeline
  (``regex → NFA → determinize → complete → minimize → complement``),
  so every product construction and marking game downstream runs on the
  Myhill–Nerode-minimal automaton.  Minimization preserves the language,
  and the game verdict and strategy depend on the complement only
  through its language residuals, so results are bit-identical — a
  contract the differential harness fuzzes continuously (the
  ``shared-cache`` configuration in
  :mod:`repro.conformance.differential`).

The cache is thread-safe (one lock around the LRU store and counters;
builds run outside it, racing duplicates are discarded) and LRU-bounded.
Hit/miss/eviction counts surface through :func:`stats` and, when
observability is installed, through ``compile.*`` spans and the
``repro_compile_*`` metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.automata.bitset import (
    BitDFA,
    antichain_language_subset,
    bit_complement as bit_complement_of,
    bit_determinize,
    bit_minimize,
)
from repro.automata.dfa import DFA, complement as complement_dfa, determinize, minimize_hopcroft
from repro.automata.glushkov import glushkov_nfa
from repro.automata.nfa import NFA
from repro.automata.symbols import Alphabet
from repro.compile.digest import (
    key_digest,
    mapping_digest,
    regex_digest,
    symbols_digest,
    word_digest,
)
from repro.compile.persist import PersistentStore
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex

#: Default LRU bound, overridable via ``REPRO_COMPILE_CACHE_SIZE``.
DEFAULT_MAXSIZE = 1024

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A monotonic snapshot of one cache's accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    interned: int = 0
    persist_hits: int = 0
    persist_misses: int = 0
    persist_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        text = "%d hit(s), %d miss(es), %d eviction(s), %d entr%s" % (
            self.hits, self.misses, self.evictions,
            self.entries, "y" if self.entries == 1 else "ies",
        )
        if self.persist_hits or self.persist_misses or self.persist_errors:
            text += ", disk %d/%d (%d corrupt)" % (
                self.persist_hits,
                self.persist_hits + self.persist_misses,
                self.persist_errors,
            )
        return text


class CompilationCache:
    """Process-wide, thread-safe, LRU-bounded automata compilation cache.

    Args:
        maxsize: LRU bound on compiled artifacts (the intern tables for
            digests are unbounded — they hold strings for schema-level
            types, which are few and small).
        persist_dir: optional directory for the on-disk artifact store;
            compiled DFAs, NFAs and expansions are written there keyed by
            content digest so later processes warm-start.
    """

    enabled = True

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE,
                 persist_dir: Optional[str] = None):
        self.maxsize = max(1, int(maxsize))
        self._lock = threading.Lock()
        self._store: "OrderedDict[Tuple, object]" = OrderedDict()
        self._digests: Dict[Regex, str] = {}
        self._by_id: Dict[int, Tuple[Regex, str]] = {}
        self._interned: Dict[str, Regex] = {}
        self._alphabet_digests: Dict[frozenset, str] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._persist_hits = 0
        self._persist_misses = 0
        self._persist_errors = 0
        self._persist = (
            PersistentStore(persist_dir) if persist_dir else None
        )

    # -- interning / digests ------------------------------------------------

    def digest(self, r: Regex) -> str:
        """Content digest of a regex, memoized by identity then structure.

        The identity fast path makes repeated lookups O(1) regardless of
        the expression's size: engines key their per-document analysis
        caches on these digests instead of hashing deep ASTs every time.
        """
        with self._lock:
            entry = self._by_id.get(id(r))
            if entry is not None and entry[0] is r:
                return entry[1]
            digest = self._digests.get(r)
            if digest is not None:
                self._by_id[id(r)] = (r, digest)
                return digest
        digest = regex_digest(r)
        with self._lock:
            self._digests.setdefault(r, digest)
            self._by_id[id(r)] = (r, digest)
            self._interned.setdefault(digest, r)
        return digest

    def intern(self, r: Regex) -> Regex:
        """The canonical instance for this regex's structure (hash-consing).

        Equal regexes intern to one shared object, so downstream
        identity-keyed memoization (including :meth:`digest` itself)
        collapses across engines and documents.
        """
        digest = self.digest(r)
        with self._lock:
            return self._interned.setdefault(digest, r)

    def regex_key(self, r: Regex) -> str:
        """A cheap, exact dictionary key standing for a regex."""
        return self.digest(r)

    def word_key(self, word: Tuple[str, ...]) -> str:
        """A cheap, exact dictionary key standing for a children word."""
        return word_digest(word)

    def alphabet_key(self, alphabet: Alphabet) -> str:
        with self._lock:
            digest = self._alphabet_digests.get(alphabet.symbols)
        if digest is None:
            digest = symbols_digest(alphabet.symbols)
            with self._lock:
                self._alphabet_digests.setdefault(alphabet.symbols, digest)
        return digest

    # -- the compiled pipeline ----------------------------------------------

    def nfa(self, r: Regex) -> NFA:
        """The Glushkov NFA of a regex, shared by digest."""
        key = ("nfa", self.digest(r))
        return self._get_or_build(key, "nfa", lambda: glushkov_nfa(r))

    def target_dfa(self, target: Regex, alphabet: Alphabet) -> DFA:
        """The complete, Hopcroft-minimized DFA of ``target``.

        This is the automaton ``A`` of Figure 9 — and the front half of
        the complement pipeline of Figure 3 step 4.
        """
        key = ("dfa", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "dfa",
            lambda: minimize_hopcroft(determinize(self.nfa(target), alphabet)),
        )

    def complement(self, target: Regex, alphabet: Alphabet) -> DFA:
        """The complete minimized complement ``Ā`` (Figure 3 step 4)."""
        key = ("comp", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "comp",
            lambda: complement_dfa(self.target_dfa(target, alphabet)),
        )

    # -- the bitset core's artifacts -----------------------------------------
    #
    # Same pipeline on flat integer-indexed automata.  The artifacts are
    # keyed under distinct kind tags ("bitdfa"/"bitcomp"/…) so both cores
    # share one store — in memory and on disk — without collisions, and
    # the dict-DFA *views* are cached too: by the canonical-numbering
    # identity (see :mod:`repro.automata.bitset`) they are byte-identical
    # to what the dict pipeline would compile, at the cost of one
    # ``to_dfa`` per content digest instead of a determinization.

    def bit_target_dfa(self, target: Regex, alphabet: Alphabet) -> BitDFA:
        """The complete minimized :class:`BitDFA` of ``target``."""
        key = ("bitdfa", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "bitdfa",
            lambda: bit_minimize(bit_determinize(self.nfa(target), alphabet)),
        )

    def bit_complement(self, target: Regex, alphabet: Alphabet) -> BitDFA:
        """The complete minimized complement ``Ā`` as a :class:`BitDFA`."""
        key = ("bitcomp", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "bitcomp",
            lambda: bit_complement_of(self.bit_target_dfa(target, alphabet)),
        )

    def target_dfa_view(self, target: Regex, alphabet: Alphabet) -> DFA:
        """Dict-DFA view of :meth:`bit_target_dfa` (numbering-identical)."""
        key = ("bitdfaview", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "bitdfaview",
            lambda: self.bit_target_dfa(target, alphabet).to_dfa(),
        )

    def complement_view(self, target: Regex, alphabet: Alphabet) -> DFA:
        """Dict-DFA view of :meth:`bit_complement` (numbering-identical)."""
        key = ("bitcompview", self.digest(target), self.alphabet_key(alphabet))
        return self._get_or_build(
            key, "bitcompview",
            lambda: self.bit_complement(target, alphabet).to_dfa(),
        )

    def antichain_subset(
        self, left: Regex, right: Regex, alphabet: Alphabet
    ) -> bool:
        """``lang(left) ⊆ lang(right)`` by the antichain method, memoized.

        The right-hand side stays a Glushkov NFA — no determinization,
        no complement — which is the Section 6 extensional fast path.
        """
        key = (
            "subset",
            self.digest(left),
            self.digest(right),
            self.alphabet_key(alphabet),
        )
        return self._get_or_build(
            key, "subset",
            lambda: antichain_language_subset(
                self.bit_target_dfa(left, alphabet),
                self.nfa(right),
                alphabet,
            ),
        )

    def expansion_key(
        self,
        word: Tuple[str, ...],
        output_types: Dict[str, Regex],
        k: int,
        invocable_names: Iterable[str],
    ) -> Tuple:
        """The exact content key of one ``A_w^k`` construction.

        For the schema-compatibility reduction the word is a single
        virtual function, so this key *is* the paper's "k-depth expansion
        template per (output-type digest, k)".
        """
        outputs = {
            name: self.digest(expr) for name, expr in output_types.items()
        }
        return (
            "expansion",
            word_digest(word),
            mapping_digest(outputs),
            int(k),
            symbols_digest(invocable_names),
        )

    def expansion(self, key: Tuple, build: Callable[[], object]):
        """Memoize one expansion build under a key from :meth:`expansion_key`.

        The builder stays in :mod:`repro.rewriting.expansion` (this
        module never imports the rewriting layer); expansions are
        immutable after construction, so sharing them across engines and
        threads is safe.
        """
        return self._get_or_build(key, "expansion", build)

    # -- snapshots (peer warm-start) ------------------------------------------

    def export_snapshot(self) -> bytes:
        """The whole in-memory artifact store as one transferable blob.

        A gateway serves this from its snapshot endpoint so a restarted
        or newly joined peer can pre-seed its cache instead of paying
        the cold ``regex → … → complement`` pipeline per content.  The
        store is copied under the lock; pickling runs outside it.
        """
        from repro.compile.persist import dump_snapshot

        with self._lock:
            entries = list(self._store.items())
        return dump_snapshot(entries)

    def import_snapshot(self, blob: bytes) -> int:
        """Merge a snapshot blob into this cache; returns entries added.

        Existing entries win (the local artifact is as good and already
        hot); malformed blobs raise ``ValueError`` without touching the
        store.  Imported artifacts count as neither hits nor misses —
        they change future lookups, not past accounting.
        """
        from repro.compile.persist import load_snapshot

        entries = load_snapshot(blob)
        for key, _value in entries:
            if not isinstance(key, tuple) or not key:
                raise ValueError("snapshot entry has a malformed key")
        added = 0
        with self._lock:
            for key, value in entries:
                if key in self._store:
                    continue
                self._store[key] = value
                added += 1
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self._evictions += 1
        return added

    # -- bookkeeping ----------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._store),
                interned=len(self._interned),
                persist_hits=self._persist_hits,
                persist_misses=self._persist_misses,
                persist_errors=self._persist_errors,
            )

    def clear(self) -> None:
        """Drop every compiled artifact (intern tables included)."""
        with self._lock:
            self._store.clear()
            self._digests.clear()
            self._by_id.clear()
            self._interned.clear()
            self._alphabet_digests.clear()

    # -- the memoization core -------------------------------------------------

    def _note(self, kind: str, outcome: str) -> None:
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_compile_cache_total", "Compilation cache lookups"
            ).inc(kind=kind, outcome=outcome)

    def _get_or_build(self, key: Tuple, kind: str, build: Callable[[], object]):
        with self._lock:
            value = self._store.get(key, _MISSING)
            if value is not _MISSING:
                self._store.move_to_end(key)
                self._hits += 1
        if value is not _MISSING:
            self._note(kind, "hit")
            return value
        with self._lock:
            self._misses += 1
        self._note(kind, "miss")

        file_digest = None
        loaded = None
        if self._persist is not None:
            file_digest = key_digest(key)
            loaded, corrupted = self._persist.load(file_digest, kind)
            with self._lock:
                if corrupted:
                    self._persist_errors += 1
                elif loaded is not None:
                    self._persist_hits += 1
                else:
                    self._persist_misses += 1
        value = loaded
        if value is None:
            # Built outside the lock: compilation can be expensive and
            # must not serialize concurrent engines; a racing duplicate
            # build is simply discarded below.
            with obs.tracer().span("compile." + kind, key=key[1][:12]):
                value = build()
            record_work(obs.metrics(), "compile", {"builds": 1}, kind=kind)

        evicted = 0
        with self._lock:
            existing = self._store.get(key, _MISSING)
            if existing is not _MISSING:
                self._store.move_to_end(key)
                return existing
            self._store[key] = value
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            metrics = obs.metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_compile_cache_evictions_total",
                    "Artifacts dropped by the compile-cache LRU",
                ).inc(evicted)
        if self._persist is not None and loaded is None:
            if not self._persist.store(file_digest, kind, value):
                with self._lock:
                    self._persist_errors += 1
        return value


class NullCompilationCache:
    """The disabled cache: same pipeline, no sharing.

    Every request compiles fresh — including Hopcroft minimization, so
    the *artifacts* are identical to the shared cache's; only the
    reuse is gone.  This is what the differential harness runs its
    baseline configurations on.
    """

    enabled = False

    def digest(self, r: Regex) -> str:
        return regex_digest(r)

    def intern(self, r: Regex) -> Regex:
        return r

    def regex_key(self, r: Regex):
        return r

    def word_key(self, word: Tuple[str, ...]):
        return word

    def nfa(self, r: Regex) -> NFA:
        return glushkov_nfa(r)

    def target_dfa(self, target: Regex, alphabet: Alphabet) -> DFA:
        return minimize_hopcroft(determinize(glushkov_nfa(target), alphabet))

    def complement(self, target: Regex, alphabet: Alphabet) -> DFA:
        return complement_dfa(self.target_dfa(target, alphabet))

    def bit_target_dfa(self, target: Regex, alphabet: Alphabet) -> BitDFA:
        return bit_minimize(bit_determinize(glushkov_nfa(target), alphabet))

    def bit_complement(self, target: Regex, alphabet: Alphabet) -> BitDFA:
        return bit_complement_of(self.bit_target_dfa(target, alphabet))

    def target_dfa_view(self, target: Regex, alphabet: Alphabet) -> DFA:
        return self.bit_target_dfa(target, alphabet).to_dfa()

    def complement_view(self, target: Regex, alphabet: Alphabet) -> DFA:
        return self.bit_complement(target, alphabet).to_dfa()

    def antichain_subset(
        self, left: Regex, right: Regex, alphabet: Alphabet
    ) -> bool:
        return antichain_language_subset(
            self.bit_target_dfa(left, alphabet), glushkov_nfa(right), alphabet
        )

    def expansion_key(self, word, output_types, k, invocable_names) -> Tuple:
        return ()

    def expansion(self, key: Tuple, build: Callable[[], object]):
        return build()

    def export_snapshot(self) -> bytes:
        from repro.compile.persist import dump_snapshot

        return dump_snapshot([])

    def import_snapshot(self, blob: bytes) -> int:
        from repro.compile.persist import load_snapshot

        load_snapshot(blob)  # still validates — bad blobs raise
        return 0

    def stats(self) -> CacheStats:
        return CacheStats()

    def clear(self) -> None:
        pass


#: The shared singleton standing for "compile caching off".
DISABLED = NullCompilationCache()
