"""On-disk persistence for compiled automata artifacts.

Artifacts are stored one file per cache key under a directory, named by
the key's content digest (:func:`repro.compile.digest.key_digest`), so
repeated CLI runs and peer restarts warm-start: the expensive
``regex → Glushkov NFA → determinize → complete → minimize → complement``
pipeline runs once per *content*, not once per process.

The store is deliberately paranoid about its own files:

- writes are atomic (temp file + ``os.replace``), so a crashed run never
  leaves a half-written artifact behind;
- every file carries a format-version magic; version mismatches and any
  unpickling error are treated as a miss — the artifact is recompiled
  and the bad file overwritten, never trusted (see the corrupted-cache
  round-trip test in ``tests/test_compile_cache.py``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

#: Bumped whenever the pickled artifact layout changes.
FORMAT_VERSION = 1

_MAGIC = "repro-compile-cache"

_SNAPSHOT_MAGIC = "repro-compile-snapshot"


def dump_snapshot(entries: Any) -> bytes:
    """Serialize cache entries as one transferable snapshot blob.

    ``entries`` is a list of ``(key, value)`` pairs as stored by
    :class:`repro.compile.cache.CompilationCache`.  The blob carries the
    same format version as the on-disk store — an artifact that would be
    rejected from disk is rejected from the wire too.
    """
    return pickle.dumps(
        (_SNAPSHOT_MAGIC, FORMAT_VERSION, list(entries)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_snapshot(blob: bytes) -> Any:
    """Deserialize a snapshot blob; raises ``ValueError`` when invalid.

    Validation mirrors :meth:`PersistentStore.load`'s paranoia: wrong
    magic, wrong version, or any unpickling trouble rejects the whole
    blob — a warm-start must never install artifacts of uncertain
    provenance.
    """
    try:
        record = pickle.loads(blob)
    except Exception as exc:
        raise ValueError("snapshot blob could not be unpickled: %s" % exc)
    if (
        not isinstance(record, tuple)
        or len(record) != 3
        or record[0] != _SNAPSHOT_MAGIC
        or record[1] != FORMAT_VERSION
    ):
        raise ValueError("snapshot blob has the wrong magic or version")
    entries = record[2]
    if not isinstance(entries, list):
        raise ValueError("snapshot blob carries no entry list")
    return entries


class PersistentStore:
    """A directory of pickled ``(magic, version, kind, value)`` records."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, digest + ".pkl")

    def load(self, digest: str, kind: str) -> Tuple[Optional[Any], bool]:
        """Returns ``(value, corrupted)``; value is None on miss/corruption."""
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            return None, False
        except Exception:
            return None, True
        if (
            not isinstance(record, tuple)
            or len(record) != 4
            or record[0] != _MAGIC
            or record[1] != FORMAT_VERSION
            or record[2] != kind
        ):
            return None, True
        return record[3], False

    def store(self, digest: str, kind: str, value: Any) -> bool:
        """Atomically write one artifact; returns False on I/O trouble."""
        record = (_MAGIC, FORMAT_VERSION, kind, value)
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=digest[:16] + ".", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(digest))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            return False
        return True

    def entry_count(self) -> int:
        """How many artifact files the directory currently holds."""
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".pkl")
            )
        except OSError:
            return 0
