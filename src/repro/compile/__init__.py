"""``repro.compile`` — the shared automata compilation cache.

The paper's algorithms spend their time building automata: the complete
complement ``Ā`` of the target type (Figure 3 step 4), the target DFA
for possible rewriting (Figure 9), and the k-depth expansions of output
types.  This subsystem compiles each *content* once per process (and,
optionally, once per disk) instead of once per analysis:

- :mod:`repro.compile.digest` — canonical structural digests, the
  hash-consing identity;
- :mod:`repro.compile.cache` — the thread-safe LRU cache over the
  memoized pipeline ``regex → NFA → determinize → complete → minimize →
  complement``, with Hopcroft minimization on the hot path;
- :mod:`repro.compile.persist` — the on-disk artifact store behind
  ``--compile-cache`` / ``REPRO_COMPILE_CACHE``;
- :mod:`repro.compile.context` — process-wide installation, mirroring
  :mod:`repro.obs`.

See ``docs/PERFORMANCE.md`` for the operational picture and benchmark
E22 for the measured cold/warm/persistent-warm speedups.
"""

from repro.compile.cache import (
    DEFAULT_MAXSIZE,
    DISABLED,
    CacheStats,
    CompilationCache,
    NullCompilationCache,
)
from repro.compile.context import cache, compiling, install, uninstall
from repro.compile.digest import (
    key_digest,
    mapping_digest,
    regex_digest,
    symbols_digest,
    word_digest,
)
from repro.compile.persist import FORMAT_VERSION, PersistentStore

__all__ = [
    "CacheStats",
    "CompilationCache",
    "NullCompilationCache",
    "DISABLED",
    "DEFAULT_MAXSIZE",
    "FORMAT_VERSION",
    "PersistentStore",
    "cache",
    "compiling",
    "install",
    "uninstall",
    "key_digest",
    "mapping_digest",
    "regex_digest",
    "symbols_digest",
    "word_digest",
]
