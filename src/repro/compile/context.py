"""Process-wide installation of the shared compilation cache.

Mirrors :mod:`repro.obs.context`: compilation sites throughout the stack
(the safe/lazy/possible solvers, the expansion builder, the language
ops) call :func:`cache` for the currently installed cache.  The default
is one shared, enabled :class:`~repro.compile.cache.CompilationCache`
for the whole process — equal types compile once no matter which engine,
document, or peer asks.

Environment knobs, read when the default cache is first materialized:

- ``REPRO_COMPILE_CACHE``: ``off``/``0``/``false``/``no`` disables the
  cache; any other non-empty value is a *directory path* enabling the
  persistent on-disk store; unset means in-memory only.
- ``REPRO_COMPILE_CACHE_SIZE``: LRU bound (default
  :data:`~repro.compile.cache.DEFAULT_MAXSIZE`).

Engines that must not share ambient state (the differential harness's
baseline configurations, tests) pass an explicit cache — possibly
:data:`~repro.compile.cache.DISABLED` — instead of swapping the global
via :func:`compiling`, which is not thread-safe against concurrent
ambient users.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.compile.cache import (
    DEFAULT_MAXSIZE,
    DISABLED,
    CompilationCache,
    NullCompilationCache,
)

_state = {"cache": None}

_OFF_VALUES = ("off", "0", "false", "no", "disabled")


def _default_cache():
    env = os.environ.get("REPRO_COMPILE_CACHE", "").strip()
    if env.lower() in _OFF_VALUES:
        return DISABLED
    size = os.environ.get("REPRO_COMPILE_CACHE_SIZE", "").strip()
    try:
        maxsize = int(size) if size else DEFAULT_MAXSIZE
    except ValueError:
        maxsize = DEFAULT_MAXSIZE
    return CompilationCache(maxsize=maxsize, persist_dir=env or None)


def cache():
    """The currently installed compilation cache (never None).

    Lazily builds the environment-configured default on first use.
    """
    current = _state["cache"]
    if current is None:
        current = _state["cache"] = _default_cache()
    return current


def install(new_cache=None):
    """Install a cache process-wide; ``None`` re-reads the environment."""
    _state["cache"] = new_cache if new_cache is not None else _default_cache()
    return _state["cache"]


def uninstall() -> None:
    """Forget the installed cache; the next :func:`cache` call rebuilds."""
    _state["cache"] = None


@contextmanager
def compiling(new_cache):
    """Scoped :func:`install`: restores the previous cache on exit.

    Pass a :class:`CompilationCache` to share, or
    :data:`~repro.compile.cache.DISABLED` to switch caching off within
    the scope.
    """
    previous = _state["cache"]
    _state["cache"] = new_cache
    try:
        yield new_cache
    finally:
        _state["cache"] = previous
