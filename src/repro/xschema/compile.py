"""Compile XML Schema_int declarations to the simple schema model.

Particles translate directly into the regex AST of Definition 2:
``sequence`` → concatenation, ``choice`` → alternation, occurrence bounds
→ bounded repetition, ``any`` → wildcard atoms, references → atoms over
the referenced name.  Function patterns need a *predicate resolver*: the
XML carries the SOAP coordinates of the boolean predicate service, and
the resolver turns them into a live callable (the default accepts every
name, matching the paper's convention for omitted coordinates).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import XMLSchemaIntError
from repro.regex import ast as rast
from repro.regex.ast import Regex
from repro.automata.symbols import DATA
from repro.schema.model import FunctionPattern, FunctionSignature, Schema
from repro.xschema.model import (
    AllGroup,
    AnyParticle,
    Choice,
    DataParticle,
    FunctionPatternDecl,
    Particle,
    Sequence,
    XMLSchemaInt,
    ONCE,
    ElementRef,
    FunctionRef,
    PatternRef,
    Occurs,
)
from repro.xschema.parser import _TypeRef

#: Resolves a pattern declaration's predicate service to a callable.
PredicateResolver = Callable[[FunctionPatternDecl], Callable[[str], bool]]


def _default_resolver(decl: FunctionPatternDecl) -> Callable[[str], bool]:
    """The paper's convention: no predicate coordinates → always true."""
    return lambda _name: True


def _apply_occurs(expr: Regex, occurs: Occurs) -> Regex:
    if occurs.is_default():
        return expr
    return rast.repeat(expr, occurs.low, occurs.high)


def particle_to_regex(particle: Particle, schema: XMLSchemaInt) -> Regex:
    """Translate one particle into a type expression."""
    if isinstance(particle, AllGroup):
        import itertools

        # Each item with minOccurs=0 becomes optional inside every
        # permutation, which yields exactly the unordered-group language:
        # any admissible word is some subset of the items in some order,
        # and that order extends to a full permutation whose absent
        # members are skipped through their optionality.
        def once(item: Particle) -> Regex:
            item_occurs = getattr(item, "occurs", ONCE)
            expr = particle_to_regex(_with_once(item), schema)
            if item_occurs.low == 0:
                return rast.opt(expr)
            return expr

        options = [
            rast.seq(*(once(item) for item in order))
            for order in itertools.permutations(particle.items)
        ]
        return _apply_occurs(rast.alt(*options), particle.occurs)
    if isinstance(particle, Sequence):
        inner = rast.seq(*(particle_to_regex(p, schema) for p in particle.items))
        return _apply_occurs(inner, particle.occurs)
    if isinstance(particle, Choice):
        if not particle.options:
            raise XMLSchemaIntError("<choice> must have at least one option")
        inner = rast.alt(*(particle_to_regex(p, schema) for p in particle.options))
        return _apply_occurs(inner, particle.occurs)
    if isinstance(particle, ElementRef):
        return _apply_occurs(rast.atom(particle.name), particle.occurs)
    if isinstance(particle, FunctionRef):
        if particle.name not in schema.functions:
            raise XMLSchemaIntError(
                "reference to undeclared function %r" % particle.name
            )
        return _apply_occurs(rast.atom(particle.name), particle.occurs)
    if isinstance(particle, PatternRef):
        if particle.name not in schema.patterns:
            raise XMLSchemaIntError(
                "reference to undeclared functionPattern %r" % particle.name
            )
        return _apply_occurs(rast.atom(particle.name), particle.occurs)
    if isinstance(particle, AnyParticle):
        return _apply_occurs(
            rast.AnySymbol(frozenset(particle.exclude)), particle.occurs
        )
    if isinstance(particle, DataParticle):
        return _apply_occurs(rast.atom(DATA), particle.occurs)
    if isinstance(particle, _TypeRef):
        named = schema.types.get(particle.name)
        if named is None:
            raise XMLSchemaIntError(
                "reference to undeclared complexType %r" % particle.name
            )
        return particle_to_regex(named, schema)
    raise TypeError("unknown particle %r" % (particle,))


def _with_once(item: Particle) -> Particle:
    """A copy of an <all> item with its occurrence pinned to exactly once."""
    from dataclasses import replace

    if hasattr(item, "occurs"):
        return replace(item, occurs=ONCE)
    return item


def _signature(
    decl, schema: XMLSchemaInt
) -> FunctionSignature:
    input_type = rast.seq(*(particle_to_regex(p, schema) for p in decl.params))
    output_type = particle_to_regex(decl.result, schema)
    return FunctionSignature(input_type, output_type)


#: Fetches a WSDL_int document by URI (for ``WSDLSignature`` references).
WsdlLoader = Callable[[str], str]


def _wsdl_signature(
    decl: FunctionPatternDecl, wsdl_loader: Optional[WsdlLoader]
) -> FunctionSignature:
    """Resolve a pattern's signature from its WSDLSignature reference.

    Section 7: "XML Schema_int allows WSDL or WSDL_int descriptions to be
    referenced in the definition of a function or function pattern,
    instead of defining the signature explicitly (using the
    WSDLSignature attribute)."  The reference has the form
    ``<location>#<operation>``; the loader maps the location to the
    WSDL_int text.
    """
    from repro.services.wsdl import parse_wsdl

    if wsdl_loader is None:
        raise XMLSchemaIntError(
            "pattern %r uses WSDLSignature=%r but no wsdl_loader was given"
            % (decl.name, decl.wsdl_signature)
        )
    location, _, operation = decl.wsdl_signature.partition("#")
    description = parse_wsdl(wsdl_loader(location))
    wanted = operation or decl.name
    signature = description.signatures.get(wanted)
    if signature is None:
        raise XMLSchemaIntError(
            "WSDL at %r declares no operation %r" % (location, wanted)
        )
    return signature


def compile_xschema(
    schema: XMLSchemaInt,
    predicate_resolver: Optional[PredicateResolver] = None,
    wsdl_loader: Optional[WsdlLoader] = None,
) -> Schema:
    """Compile to a :class:`repro.schema.Schema`.

    Raises :class:`XMLSchemaIntError` on dangling references.
    ``wsdl_loader`` resolves ``WSDLSignature`` attributes (Section 7) to
    WSDL_int texts.
    """
    resolver = predicate_resolver or _default_resolver

    label_types: Dict[str, Regex] = {}
    for name, decl in schema.elements.items():
        if decl.content is None:
            label_types[name] = rast.atom(DATA)
        else:
            label_types[name] = particle_to_regex(decl.content, schema)

    functions: Dict[str, FunctionSignature] = {
        name: _signature(decl, schema) for name, decl in schema.functions.items()
    }
    patterns: Dict[str, FunctionPattern] = {}
    for name, decl in schema.patterns.items():
        if decl.wsdl_signature:
            signature = _wsdl_signature(decl, wsdl_loader)
        else:
            signature = _signature(decl, schema)
        patterns[name] = FunctionPattern(
            name, signature, resolver(decl), decl.match
        )

    root = schema.root
    if root is not None and root not in label_types:
        raise XMLSchemaIntError("root element %r is not declared" % root)
    return Schema(label_types, functions, patterns, root)
