"""XML Schema_int: XML Schema extended with functions (Section 7).

The paper enriches XML Schema with two constructs — ``function`` and
``functionPattern`` — declared and referenced like elements and types.
This subpackage provides the paper's implementation counterpart:

- :mod:`repro.xschema.model` — declarations and particles (sequence,
  choice, element/function/pattern references, wildcards, occurrence
  bounds);
- :mod:`repro.xschema.parser` — a parser for the XML syntax, covering
  the feature set the paper's own parser did ("complex types,
  element/type references and schema import"; no inheritance or keys);
- :mod:`repro.xschema.writer` — emit XML Schema_int documents from
  simple schemas;
- :mod:`repro.xschema.compile` — compile parsed declarations down to the
  simple regex-based :class:`repro.schema.Schema` the algorithms run on.
"""

from repro.xschema.model import (
    AnyParticle,
    Choice,
    DataParticle,
    ElementDecl,
    ElementRef,
    FunctionDecl,
    FunctionPatternDecl,
    FunctionRef,
    Particle,
    PatternRef,
    Sequence,
    XMLSchemaInt,
)
from repro.xschema.parser import parse_xschema
from repro.xschema.writer import schema_to_xschema
from repro.xschema.compile import compile_xschema

__all__ = [
    "XMLSchemaInt",
    "ElementDecl",
    "FunctionDecl",
    "FunctionPatternDecl",
    "Particle",
    "Sequence",
    "Choice",
    "ElementRef",
    "FunctionRef",
    "PatternRef",
    "AnyParticle",
    "DataParticle",
    "parse_xschema",
    "schema_to_xschema",
    "compile_xschema",
]
