"""Declarations and particles of XML Schema_int.

The model mirrors the subset of XML Schema the paper's parser covered,
plus the intensional extensions:

- **particles** describe content: ``sequence``, ``choice``, references
  to elements / functions / function patterns, wildcards (``any``) and
  atomic data, each with ``minOccurs``/``maxOccurs``;
- **element declarations** bind a name to a content particle or to
  atomic data (simple types collapse to ``data`` in the simple model);
- **function / functionPattern declarations** carry the SOAP triple
  (``methodName``, ``endpointURL``, ``namespaceURI``), the signature as
  ``params`` / ``return`` particles, and — for patterns — the predicate
  service coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class Occurs:
    """minOccurs / maxOccurs bounds; ``None`` max means unbounded."""

    low: int = 1
    high: Optional[int] = 1

    def is_default(self) -> bool:
        return self.low == 1 and self.high == 1

    def __str__(self) -> str:
        high = "unbounded" if self.high is None else str(self.high)
        return "{%d,%s}" % (self.low, high)


ONCE = Occurs()


@dataclass(frozen=True)
class Sequence:
    """An ordered group of particles."""

    items: Tuple["Particle", ...]
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class Choice:
    """A choice between particles."""

    options: Tuple["Particle", ...]
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class AllGroup:
    """An unordered group: every item once, in any order.

    XML Schema restricts ``<all>`` to element particles with
    ``maxOccurs <= 1``; the compiler expands the group into the choice of
    all permutations (optional members skippable), so group size is
    capped to keep the expansion small.
    """

    items: Tuple["Particle", ...]
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class ElementRef:
    """A reference to a (globally declared) element."""

    name: str
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class FunctionRef:
    """A reference to a declared function."""

    name: str
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class PatternRef:
    """A reference to a declared function pattern."""

    name: str
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class AnyParticle:
    """The wildcard: any element or function, minus exclusions."""

    exclude: Tuple[str, ...] = ()
    occurs: Occurs = ONCE


@dataclass(frozen=True)
class DataParticle:
    """Atomic character data (a simple-typed position)."""

    occurs: Occurs = ONCE


Particle = Union[
    Sequence, Choice, AllGroup, ElementRef, FunctionRef, PatternRef,
    AnyParticle, DataParticle,
]


@dataclass(frozen=True)
class ElementDecl:
    """A global element declaration.

    ``content`` is ``None`` for simple-typed (data) elements; otherwise
    the element's content particle.
    """

    name: str
    content: Optional[Particle]


@dataclass(frozen=True)
class FunctionDecl:
    """A declared function (a concrete Web-service operation)."""

    name: str  # the id / methodName used in type expressions
    params: Tuple[Particle, ...]
    result: Particle
    endpoint: Optional[str] = None
    namespace: Optional[str] = None
    method_name: Optional[str] = None


@dataclass(frozen=True)
class FunctionPatternDecl:
    """A declared function pattern.

    The predicate is itself a Web service identified by the SOAP triple;
    "as a convention, when these parameters are omitted, the predicate
    returns true for all functions" (Section 7).
    """

    name: str
    params: Tuple[Particle, ...]
    result: Particle
    predicate_endpoint: Optional[str] = None
    predicate_namespace: Optional[str] = None
    predicate_method: Optional[str] = None
    wsdl_signature: Optional[str] = None
    match: str = "exact"  # or "subsume" (wildcard signatures)


@dataclass
class XMLSchemaInt:
    """One parsed XML Schema_int document."""

    elements: Dict[str, ElementDecl] = field(default_factory=dict)
    types: Dict[str, Particle] = field(default_factory=dict)  # named complexTypes
    functions: Dict[str, FunctionDecl] = field(default_factory=dict)
    patterns: Dict[str, FunctionPatternDecl] = field(default_factory=dict)
    root: Optional[str] = None
    imports: List[str] = field(default_factory=list)

    def merge(self, other: "XMLSchemaInt") -> "XMLSchemaInt":
        """Merge an imported schema into this one (imports compose)."""
        from repro.errors import XMLSchemaIntError

        for kind, ours, theirs in (
            ("element", self.elements, other.elements),
            ("type", self.types, other.types),
            ("function", self.functions, other.functions),
            ("functionPattern", self.patterns, other.patterns),
        ):
            for name, decl in theirs.items():
                if name in ours and ours[name] != decl:
                    raise XMLSchemaIntError(
                        "conflicting %s declaration %r across imports"
                        % (kind, name)
                    )
                ours[name] = decl
        if self.root is None:
            self.root = other.root
        return self
