"""Parser for the XML syntax of XML Schema_int.

Covers the subset the paper's own parser implemented: global element
declarations, named and anonymous complex types, ``sequence`` / ``choice``
groups, element/type references, ``minOccurs`` / ``maxOccurs``, schema
import, wildcards — plus the intensional extensions ``function`` and
``functionPattern`` (declared globally with an ``id``, referenced inside
content models with ``ref``, exactly as Section 7 describes).  Simple
types (``type="xs:string"`` etc.) collapse to atomic data.

Example (the paper's ``newspaper`` element)::

    <schema xmlns="http://www.w3.org/2001/XMLSchema">
      <element name="newspaper">
        <complexType>
          <sequence>
            <element ref="title"/>
            <element ref="date"/>
            <choice>
              <functionPattern ref="Forecast"/>
              <element ref="temp"/>
            </choice>
            <choice>
              <function ref="TimeOut"/>
              <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
            </choice>
          </sequence>
        </complexType>
      </element>
      ...
    </schema>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, List, Optional, Tuple

from repro.errors import XMLSchemaIntError
from repro.xschema.model import (
    AllGroup,
    AnyParticle,
    Choice,
    DataParticle,
    ElementDecl,
    ElementRef,
    FunctionDecl,
    FunctionPatternDecl,
    FunctionRef,
    Occurs,
    Particle,
    PatternRef,
    Sequence,
    XMLSchemaInt,
)

XS_NS = "http://www.w3.org/2001/XMLSchema"

#: Loader callback for <import schemaLocation="..."/>.
ImportLoader = Callable[[str], str]


def _local(tag: str) -> str:
    """Strip the XML Schema namespace from a tag."""
    if tag.startswith("{%s}" % XS_NS):
        return tag[len(XS_NS) + 2:]
    if tag.startswith("{"):
        raise XMLSchemaIntError("unexpected namespaced element %r" % tag)
    return tag


def _occurs(elem: ET.Element) -> Occurs:
    low_text = elem.get("minOccurs", "1")
    high_text = elem.get("maxOccurs", "1")
    try:
        low = int(low_text)
    except ValueError as exc:
        raise XMLSchemaIntError("bad minOccurs %r" % low_text) from exc
    if high_text == "unbounded":
        high: Optional[int] = None
    else:
        try:
            high = int(high_text)
        except ValueError as exc:
            raise XMLSchemaIntError("bad maxOccurs %r" % high_text) from exc
        if high < low:
            raise XMLSchemaIntError(
                "maxOccurs %d smaller than minOccurs %d" % (high, low)
            )
    return Occurs(low, high)


def parse_xschema(
    source: str,
    loader: Optional[ImportLoader] = None,
    root: Optional[str] = None,
) -> XMLSchemaInt:
    """Parse one XML Schema_int document (resolving imports via ``loader``)."""
    try:
        tree = ET.fromstring(source)
    except ET.ParseError as exc:
        raise XMLSchemaIntError("malformed XML Schema_int: %s" % exc) from exc
    if _local(tree.tag) != "schema":
        raise XMLSchemaIntError("root element must be <schema>, got %r" % tree.tag)

    parser = _Parser()
    schema = parser.parse_schema(tree)
    schema.root = root or tree.get("root") or schema.root

    for location in schema.imports:
        if loader is None:
            raise XMLSchemaIntError(
                "schema imports %r but no loader was provided" % location
            )
        schema.merge(parse_xschema(loader(location), loader))
    return schema


class _Parser:
    """Stateful walk over one schema document."""

    def __init__(self):
        self.schema = XMLSchemaInt()
        self._anon = 0

    def parse_schema(self, tree: ET.Element) -> XMLSchemaInt:
        for child in tree:
            kind = _local(child.tag)
            if kind == "element":
                self._global_element(child)
            elif kind == "complexType":
                self._named_type(child)
            elif kind == "function":
                self._function(child)
            elif kind == "functionPattern":
                self._pattern(child)
            elif kind == "import":
                location = child.get("schemaLocation")
                if not location:
                    raise XMLSchemaIntError("<import> requires schemaLocation")
                self.schema.imports.append(location)
            elif kind == "annotation":
                continue
            else:
                raise XMLSchemaIntError("unsupported top-level <%s>" % kind)
        return self.schema

    # -- declarations ---------------------------------------------------------

    def _global_element(self, elem: ET.Element) -> None:
        name = elem.get("name")
        if not name:
            raise XMLSchemaIntError("global <element> requires a name")
        if name in self.schema.elements:
            raise XMLSchemaIntError("element %r declared twice" % name)
        self.schema.elements[name] = ElementDecl(name, self._element_content(elem))

    def _element_content(self, elem: ET.Element) -> Optional[Particle]:
        type_name = elem.get("type")
        inline = [c for c in elem if _local(c.tag) == "complexType"]
        if type_name and inline:
            raise XMLSchemaIntError(
                "element %r has both a type attribute and an inline type"
                % elem.get("name")
            )
        if type_name:
            if self._is_simple_type(type_name):
                return None  # atomic data
            return _TypeRef(type_name)  # resolved at compile time
        if inline:
            return self._complex_type(inline[0])
        return None  # no content model: data element

    @staticmethod
    def _is_simple_type(type_name: str) -> bool:
        bare = type_name.split(":")[-1]
        return bare in {
            "string", "int", "integer", "decimal", "float", "double",
            "boolean", "date", "dateTime", "anyURI", "token",
        }

    def _named_type(self, elem: ET.Element) -> None:
        name = elem.get("name")
        if not name:
            raise XMLSchemaIntError("top-level <complexType> requires a name")
        if name in self.schema.types:
            raise XMLSchemaIntError("complexType %r declared twice" % name)
        self.schema.types[name] = self._complex_type(elem)

    def _complex_type(self, elem: ET.Element) -> Particle:
        groups = [c for c in elem if _local(c.tag) != "annotation"]
        if len(groups) != 1:
            raise XMLSchemaIntError(
                "complexType must contain exactly one content group"
            )
        return self._particle(groups[0])

    # -- particles ----------------------------------------------------------

    def _particle(self, elem: ET.Element) -> Particle:
        kind = _local(elem.tag)
        occurs = _occurs(elem)
        if kind == "sequence":
            return Sequence(tuple(self._group_items(elem)), occurs)
        if kind == "choice":
            return Choice(tuple(self._group_items(elem)), occurs)
        if kind == "all":
            items = tuple(self._group_items(elem))
            if len(items) > 5:
                raise XMLSchemaIntError(
                    "<all> groups with more than 5 items are not supported "
                    "(the permutation expansion would explode)"
                )
            for item in items:
                item_occurs = getattr(item, "occurs", None)
                if item_occurs is not None and (
                    item_occurs.high is None or item_occurs.high > 1
                ):
                    raise XMLSchemaIntError(
                        "<all> items must have maxOccurs <= 1"
                    )
            return AllGroup(items, occurs)
        if kind == "element":
            return self._element_particle(elem, occurs)
        if kind == "function":
            ref = elem.get("ref")
            if not ref:
                raise XMLSchemaIntError("inline <function> must use ref=")
            return FunctionRef(ref, occurs)
        if kind == "functionPattern":
            ref = elem.get("ref")
            if not ref:
                raise XMLSchemaIntError("inline <functionPattern> must use ref=")
            return PatternRef(ref, occurs)
        if kind == "any":
            exclude = tuple(
                name for name in (elem.get("except") or "").split() if name
            )
            return AnyParticle(exclude, occurs)
        if kind == "data":
            return DataParticle(occurs)
        raise XMLSchemaIntError("unsupported particle <%s>" % kind)

    def _group_items(self, elem: ET.Element) -> List[Particle]:
        return [
            self._particle(child)
            for child in elem
            if _local(child.tag) != "annotation"
        ]

    def _element_particle(self, elem: ET.Element, occurs: Occurs) -> Particle:
        ref = elem.get("ref")
        if ref:
            return ElementRef(ref, occurs)
        name = elem.get("name")
        if not name:
            raise XMLSchemaIntError("element particle needs ref= or name=")
        # Local element declaration: hoist to a global one (names must be
        # globally consistent in the simple model).
        decl = ElementDecl(name, self._element_content(elem))
        existing = self.schema.elements.get(name)
        if existing is not None and existing != decl:
            raise XMLSchemaIntError(
                "conflicting declarations for element %r" % name
            )
        self.schema.elements[name] = decl
        return ElementRef(name, occurs)

    # -- functions -----------------------------------------------------------

    def _signature(self, elem: ET.Element) -> Tuple[Tuple[Particle, ...], Particle]:
        params: List[Particle] = []
        result: Optional[Particle] = None
        for child in elem:
            kind = _local(child.tag)
            if kind == "params":
                for param in child:
                    if _local(param.tag) != "param":
                        raise XMLSchemaIntError(
                            "<params> may only contain <param>"
                        )
                    inner = [c for c in param if _local(c.tag) != "annotation"]
                    if len(inner) != 1:
                        raise XMLSchemaIntError(
                            "<param> must wrap exactly one particle"
                        )
                    params.append(self._particle(inner[0]))
            elif kind in ("return", "result"):
                inner = [c for c in child if _local(c.tag) != "annotation"]
                if len(inner) != 1:
                    raise XMLSchemaIntError(
                        "<%s> must wrap exactly one particle" % kind
                    )
                result = self._particle(inner[0])
            elif kind == "annotation":
                continue
            else:
                raise XMLSchemaIntError(
                    "unsupported <%s> inside a function declaration" % kind
                )
        if result is None:
            result = Sequence((), Occurs(1, 1))  # returns nothing
        return tuple(params), result

    def _function(self, elem: ET.Element) -> None:
        name = elem.get("id") or elem.get("methodName")
        if not name:
            raise XMLSchemaIntError("<function> requires id= or methodName=")
        if name in self.schema.functions or name in self.schema.patterns:
            raise XMLSchemaIntError("function %r declared twice" % name)
        params, result = self._signature(elem)
        self.schema.functions[name] = FunctionDecl(
            name,
            params,
            result,
            endpoint=elem.get("endpointURL"),
            namespace=elem.get("namespaceURI"),
            method_name=elem.get("methodName") or name,
        )

    def _pattern(self, elem: ET.Element) -> None:
        name = elem.get("id")
        if not name:
            raise XMLSchemaIntError("<functionPattern> requires id=")
        if name in self.schema.functions or name in self.schema.patterns:
            raise XMLSchemaIntError("functionPattern %r declared twice" % name)
        params, result = self._signature(elem)
        match = elem.get("match", "exact")
        if match not in ("exact", "subsume"):
            raise XMLSchemaIntError(
                "functionPattern match= must be 'exact' or 'subsume'"
            )
        self.schema.patterns[name] = FunctionPatternDecl(
            name,
            params,
            result,
            predicate_endpoint=elem.get("endpointURL"),
            predicate_namespace=elem.get("namespaceURI"),
            predicate_method=elem.get("methodName"),
            wsdl_signature=elem.get("WSDLSignature"),
            match=match,
        )


class _TypeRef(tuple):
    """Internal marker: element content referring to a named complexType.

    Compiled away in :mod:`repro.xschema.compile`; modeled as a tuple so
    the model dataclasses stay frozen/hashable.
    """

    def __new__(cls, name: str):
        return super().__new__(cls, (name,))

    @property
    def name(self) -> str:
        return self[0]
