"""Emit XML Schema_int documents from simple schemas.

The inverse of parse-then-compile: a :class:`repro.schema.Schema` is
rendered as the XML syntax of Section 7.  Used to publish a peer's
exchange schema, to embed types into WSDL_int descriptions, and by the
round-trip property tests (emit → parse → compile must preserve the
language of every type).
"""

from __future__ import annotations

from typing import List
from xml.sax.saxutils import quoteattr

from repro.automata.symbols import DATA
from repro.errors import XMLSchemaIntError
from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
)
from repro.schema.model import Schema


def schema_to_xschema(schema: Schema) -> str:
    """Render a simple schema as an XML Schema_int document."""
    lines: List[str] = ['<schema xmlns="http://www.w3.org/2001/XMLSchema"']
    if schema.root:
        lines[0] += " root=%s" % quoteattr(schema.root)
    lines[0] += ">"

    for name in sorted(schema.label_types):
        expr = schema.label_types[name]
        if isinstance(expr, Atom) and expr.symbol == DATA:
            lines.append('  <element name=%s type="string"/>' % quoteattr(name))
            continue
        lines.append("  <element name=%s>" % quoteattr(name))
        lines.append("    <complexType>")
        _emit_group(expr, schema, lines, indent=6)
        lines.append("    </complexType>")
        lines.append("  </element>")

    for name in sorted(schema.functions):
        signature = schema.functions[name]
        lines.append("  <function id=%s methodName=%s>" % (
            quoteattr(name), quoteattr(name)))
        _emit_signature(signature.input_type, signature.output_type, schema, lines)
        lines.append("  </function>")

    for name in sorted(schema.patterns):
        pattern = schema.patterns[name]
        match_attr = (
            ' match="subsume"' if pattern.match == "subsume" else ""
        )
        lines.append(
            "  <functionPattern id=%s%s>" % (quoteattr(name), match_attr)
        )
        _emit_signature(
            pattern.signature.input_type, pattern.signature.output_type,
            schema, lines,
        )
        lines.append("  </functionPattern>")

    lines.append("</schema>")
    return "\n".join(lines)


def _emit_signature(input_type, output_type, schema, lines: List[str]) -> None:
    params = (
        list(input_type.items) if isinstance(input_type, Seq) else
        [] if isinstance(input_type, Epsilon) else [input_type]
    )
    lines.append("    <params>")
    for param in params:
        lines.append("      <param>")
        _emit_particle(param, schema, lines, indent=8)
        lines.append("      </param>")
    lines.append("    </params>")
    lines.append("    <return>")
    _emit_particle(output_type, schema, lines, indent=6)
    lines.append("    </return>")


def _emit_group(expr: Regex, schema: Schema, lines: List[str], indent: int) -> None:
    """Emit a content model, wrapping lone particles in a sequence."""
    if isinstance(expr, Seq):
        _emit_particle(expr, schema, lines, indent)
    else:
        pad = " " * indent
        lines.append(pad + "<sequence>")
        _emit_particle(expr, schema, lines, indent + 2)
        lines.append(pad + "</sequence>")


def _ref_tag(symbol: str, schema: Schema) -> str:
    if symbol in schema.functions:
        return "function"
    if symbol in schema.patterns:
        return "functionPattern"
    return "element"


def _emit_particle(
    expr: Regex,
    schema: Schema,
    lines: List[str],
    indent: int,
    occurs: str = "",
) -> None:
    pad = " " * indent
    if isinstance(expr, Epsilon):
        lines.append(pad + "<sequence%s/>" % occurs)
        return
    if isinstance(expr, Empty):
        raise XMLSchemaIntError("the empty language is not expressible")
    if isinstance(expr, Atom):
        if expr.symbol == DATA:
            lines.append(pad + "<data%s/>" % occurs)
        else:
            lines.append(
                pad + "<%s ref=%s%s/>"
                % (_ref_tag(expr.symbol, schema), quoteattr(expr.symbol), occurs)
            )
        return
    if isinstance(expr, AnySymbol):
        exc = (
            " except=%s" % quoteattr(" ".join(sorted(expr.exclude)))
            if expr.exclude
            else ""
        )
        lines.append(pad + "<any%s%s/>" % (exc, occurs))
        return
    if isinstance(expr, Seq):
        lines.append(pad + "<sequence%s>" % occurs)
        for item in expr.items:
            _emit_particle(item, schema, lines, indent + 2)
        lines.append(pad + "</sequence>")
        return
    if isinstance(expr, Alt):
        lines.append(pad + "<choice%s>" % occurs)
        for option in expr.options:
            _emit_particle(option, schema, lines, indent + 2)
        lines.append(pad + "</choice>")
        return
    if isinstance(expr, Star):
        _emit_occurring(expr.item, schema, lines, indent, 0, None)
        return
    if isinstance(expr, Repeat):
        _emit_occurring(expr.item, schema, lines, indent, expr.low, expr.high)
        return
    raise TypeError("unknown regex node %r" % (expr,))


def _emit_occurring(
    inner: Regex, schema: Schema, lines: List[str], indent: int, low, high
) -> None:
    """Attach occurrence bounds, wrapping compound inners in a sequence."""
    occurs = ' minOccurs="%d" maxOccurs=%s' % (
        low,
        '"unbounded"' if high is None else '"%d"' % high,
    )
    if isinstance(inner, (Atom, AnySymbol, Alt, Epsilon)):
        _emit_particle(inner, schema, lines, indent, occurs)
        return
    pad = " " * indent
    lines.append(pad + "<sequence%s>" % occurs)
    _emit_particle(inner, schema, lines, indent + 2)
    lines.append(pad + "</sequence>")
