"""Concurrent materialization: waves, dedup, batching, replay.

The scheduler turns the :mod:`repro.exec.dag` plan into overlapped
round-trips without giving up the sequential engine's guarantees:

1. **Plan** — a *planning clone* of the engine (same schemas, mode, k,
   policy; its own analysis cache and counters) extracts the call DAG.
   The real engine is never consulted, so its cache accounting stays
   bit-identical to a sequential run.
2. **Prefetch** — tasks run in topological waves on a bounded
   ``ThreadPoolExecutor``.  Each task rewrites its call's parameters
   through the planning clone (replaying nested prefetched results) and
   invokes the rewritten call once, storing the returned forest in a
   fingerprint-keyed result store.  Identical ``(function,
   normalized-args)`` occurrences collapse: statically at plan time and
   dynamically via in-flight coalescing (waiters block on the leader's
   round-trip instead of issuing their own).
3. **Replay** — the ordinary sequential pass then runs with the store
   wrapped around the invoker.  Every call it decides to make is
   answered from the store when prefetched (a *replay hit*, zero
   round-trips) and forwarded to the real invoker otherwise.  Because
   the sequential pass alone decides which results enter the document
   and in which order, output is **bit-identical** to ``max_workers=1``
   no matter how the prefetch raced.

A prefetch task failure is never fatal: the *fault itself* is stored
and replayed (one-shot) when the sequential pass reaches that call, so
the engine error-handles it exactly as it would a live failure —
including AUTO-mode graceful degradation — without granting a stateful
service an extra attempt it would not have seen sequentially.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.doc.nodes import FunctionCall, Node, with_children
from repro.exec.dag import CallDAG, CallTask, build_call_dag
from repro.exec.fingerprint import call_fingerprint, fingerprint_digest
from repro.obs import context as obs


@dataclass(frozen=True)
class ExecPolicy:
    """How (and whether) to overlap a document's service calls.

    Args:
        max_workers: worker threads for the prefetch pool; ``1`` (the
            default) disables prefetching entirely — the classical
            sequential engine runs untouched.
        dedup: collapse identical ``(function, normalized-args)`` calls
            to one round-trip (static plan-time dedup plus in-flight
            coalescing).  Off disables both, scheduling every
            occurrence; note the replay store stays fingerprint-keyed
            either way — determinism requires it — so a duplicate whose
            twin already *completed* is still answered locally.
        batch: group each wave's tasks by endpoint and run each group on
            one worker, so a worker drains an endpoint's queue instead
            of interleaving connections.
    """

    max_workers: int = 1
    dedup: bool = True
    batch: bool = False

    @property
    def parallel(self) -> bool:
        return self.max_workers > 1


@dataclass
class ExecReport:
    """What the scheduler planned, prefetched, deduplicated and saved."""

    max_workers: int = 1
    dedup: bool = True
    batch: bool = False
    #: Call occurrences the planner saw (scheduled or left sequential).
    planned_calls: int = 0
    #: Occurrences the analysis kept sequential ("depends" decisions).
    sequenced_calls: int = 0
    #: Tasks actually submitted to the pool (after static dedup).
    scheduled_tasks: int = 0
    #: Duplicate occurrences collapsed at plan time (dedup only).
    static_dedup_saved: int = 0
    waves: int = 0
    batches: int = 0
    tasks_ok: int = 0
    tasks_failed: int = 0
    #: Invocations that really crossed the wire through the store.
    physical_calls: int = 0
    #: Calls answered from the store with no round-trip.
    replay_hits: int = 0
    #: Concurrent duplicates that waited on an in-flight leader.
    inflight_hits: int = 0

    @property
    def saved_round_trips(self) -> int:
        """Round-trips avoided vs. a store-less sequential run.

        A sequential engine performs one round-trip per planned
        occurrence; here every occurrence that was scheduled (or
        collapsed at plan time into an already-scheduled twin) is
        answered by ``physical_calls`` wire crossings.  The difference
        is the true saving — 0 when every call is unique, one per extra
        occurrence of a deduplicated call.  (``replay_hits`` is *not*
        the right numerator: nested results are legitimately read
        several times — by the parent's prefetch and again by the
        sequential pass — without any round-trip being saved.)
        """
        return max(
            0,
            self.scheduled_tasks + self.static_dedup_saved
            - self.physical_calls,
        )

    @property
    def prefetched(self) -> bool:
        return self.scheduled_tasks > 0

    def summary(self) -> str:
        if not self.prefetched:
            return "exec: sequential (%d call(s) planned)" % self.planned_calls
        return (
            "exec: %d worker(s), %d task(s) in %d wave(s), "
            "%d ok / %d failed, dedup %s, %d round-trip(s) saved"
            % (
                self.max_workers,
                self.scheduled_tasks,
                self.waves,
                self.tasks_ok,
                self.tasks_failed,
                "on" if self.dedup else "off",
                self.saved_round_trips,
            )
        )


class _Inflight:
    """One in-flight leader round-trip that duplicates wait on."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[Tuple[Node, ...]] = None
        self.error: Optional[BaseException] = None


class _StoredError:
    """A prefetched fault, replayed once so the sequential pass sees the
    same failure the prefetch did (instead of retrying a stateful
    service that already consumed the attempt)."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


class ScheduledInvoker:
    """The fingerprint-keyed result store, shaped like an invoker.

    Wraps the real invoker for both the prefetch tasks and the replay
    pass.  Results are read-many (the same stored forest answers the
    parent task's parameter rewriting *and* the sequential pass), and
    the ``clock`` / ``report`` attributes of the wrapped invoker shine
    through so ``timed_invoke`` and fault accounting keep working.
    """

    def __init__(self, inner, dedup: bool, report: ExecReport):
        self.inner = inner
        self._dedup = dedup
        self._report = report
        self._lock = threading.Lock()
        self._results: Dict[str, Tuple[Node, ...]] = {}
        self._inflight: Dict[str, _Inflight] = {}

    @property
    def clock(self):
        return getattr(self.inner, "clock", None)

    @property
    def report(self):
        return getattr(self.inner, "report", None)

    def __call__(self, call: FunctionCall) -> Tuple[Node, ...]:
        fingerprint = call_fingerprint(call)
        while True:
            leader = True
            cell: Optional[_Inflight] = None
            with self._lock:
                stored = self._results.get(fingerprint)
                if stored is not None:
                    self._report.replay_hits += 1
                    hit = "replay"
                    if isinstance(stored, _StoredError):
                        # One-shot: a later occurrence retries live, as
                        # the sequential engine would have.
                        del self._results[fingerprint]
                elif self._dedup:
                    cell = self._inflight.get(fingerprint)
                    if cell is None:
                        cell = self._inflight[fingerprint] = _Inflight()
                    else:
                        leader = False
                        self._report.inflight_hits += 1
                        hit = "coalesced"
            if stored is not None:
                self._count_store(hit)
                if isinstance(stored, _StoredError):
                    raise stored.error
                return stored
            if leader:
                return self._invoke(fingerprint, call, cell)
            self._count_store(hit)
            cell.event.wait()
            if cell.error is None:
                return cell.result
            # The leader's round-trip failed.  Retry from the top: we
            # either find a fresher result or become the leader and
            # surface the fault to our own caller.

    def _invoke(self, fingerprint: str, call: FunctionCall,
                cell: Optional[_Inflight]) -> Tuple[Node, ...]:
        try:
            forest = tuple(self.inner(call))
        except BaseException as exc:
            with self._lock:
                # A failed attempt still crossed the wire, and its fault
                # is worth replaying — never clobber a stored success.
                self._report.physical_calls += 1
                self._results.setdefault(fingerprint, _StoredError(exc))
                if cell is not None and \
                        self._inflight.get(fingerprint) is cell:
                    del self._inflight[fingerprint]
            if cell is not None:
                cell.error = exc
                cell.event.set()
            raise
        with self._lock:
            self._results.setdefault(fingerprint, forest)
            self._report.physical_calls += 1
            if cell is not None and \
                    self._inflight.get(fingerprint) is cell:
                del self._inflight[fingerprint]
        if cell is not None:
            cell.result = forest
            cell.event.set()
        self._count_store("miss")
        return forest

    @staticmethod
    def _count_store(outcome: str) -> None:
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_exec_store_total", "Result-store lookups by outcome"
            ).inc(outcome=outcome)


class MaterializationScheduler:
    """Prefetches a document's independent calls on a bounded pool.

    Args:
        plan_engine: the engine's *planning clone* — same configuration,
            private analysis cache (see
            :meth:`repro.rewriting.RewriteEngine._planning_engine`).
        policy: the :class:`ExecPolicy` knobs.
    """

    def __init__(self, plan_engine, policy: ExecPolicy):
        self.engine = plan_engine
        self.policy = policy

    def prefetch(self, document, invoker) -> Tuple[object, ExecReport]:
        """Plan and prefetch; returns ``(invoker-for-the-real-pass, report)``.

        With nothing schedulable (sequential policy, possible-mode
        engine, no predictable calls) the original invoker is returned
        unchanged — the ``max_workers=1`` path is behavior-identical to
        a build without this subsystem.
        """
        report = ExecReport(
            max_workers=self.policy.max_workers,
            dedup=self.policy.dedup,
            batch=self.policy.batch,
        )
        tracer = obs.tracer()
        with tracer.span("exec.plan") as plan_span:
            dag = build_call_dag(document, self.engine)
            plan_span.set(
                calls=dag.planned_calls,
                tasks=len(dag.tasks),
                edges=dag.n_edges,
                sequenced=len(dag.sequenced),
            )
        report.planned_calls = dag.planned_calls
        report.sequenced_calls = len(dag.sequenced)
        if not self.policy.parallel or not dag.tasks:
            return invoker, report

        waves = dag.waves()
        if self.policy.dedup:
            waves, report.static_dedup_saved = _static_dedup(waves)
        report.scheduled_tasks = sum(len(wave) for wave in waves)
        report.waves = len(waves)
        store = ScheduledInvoker(invoker, self.policy.dedup, report)
        lock = threading.Lock()
        workers = min(self.policy.max_workers, max(1, report.scheduled_tasks))
        with tracer.span(
            "exec.schedule",
            workers=workers,
            tasks=report.scheduled_tasks,
            waves=report.waves,
            dedup=self.policy.dedup,
        ) as span:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-exec"
            )
            try:
                for index, wave in enumerate(waves):
                    self._run_wave(index, wave, store, report, lock, pool)
            finally:
                pool.shutdown(wait=True)
            span.set(ok=report.tasks_ok, failed=report.tasks_failed)
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_exec_waves_total", "Prefetch waves executed"
            ).inc(report.waves)
            metrics.histogram(
                "repro_exec_wave_tasks", "Tasks per prefetch wave"
            ).observe(report.scheduled_tasks / report.waves
                      if report.waves else 0.0)
        return store, report

    # -- internals ---------------------------------------------------------

    def _run_wave(self, index, wave, store, report, lock, pool) -> None:
        tracer = obs.tracer()
        with tracer.span("exec.wave", index=index, tasks=len(wave)) as wspan:
            parent_id = getattr(wspan, "span_id", None)
            if self.policy.batch:
                groups = _endpoint_batches(wave)
            else:
                groups = [[task] for task in wave]
            report.batches += len(groups)
            futures = [
                pool.submit(self._run_group, group, store, report, lock,
                            parent_id)
                for group in groups
            ]
            for future in futures:
                future.result()
            wspan.set(failed=report.tasks_failed)

    def _run_group(self, group: Sequence[CallTask], store, report, lock,
                   parent_id) -> None:
        tracer = obs.tracer()
        metrics = obs.metrics()
        for task in group:
            with tracer.span(
                "exec.task",
                parent_id=parent_id,
                function=task.function,
                call=fingerprint_digest(task.fingerprint),
            ) as span:
                try:
                    self._materialize(task, store)
                except Exception as exc:
                    # Prefetch is an optimization: the fault (stored by
                    # the invoker wrapper) replays to the sequential
                    # pass, which error-handles the call itself.
                    span.set(outcome="error",
                             error=str(exc) or type(exc).__name__)
                    with lock:
                        report.tasks_failed += 1
                    outcome = "error"
                else:
                    span.set(outcome="ok")
                    with lock:
                        report.tasks_ok += 1
                    outcome = "ok"
            if metrics.enabled:
                metrics.counter(
                    "repro_exec_tasks_total", "Prefetch tasks by outcome"
                ).inc(outcome=outcome, function=task.function)

    def _materialize(self, task: CallTask, store) -> None:
        """Rewrite one call's parameters (replaying nested prefetches)
        and perform its round-trip into the store."""
        params = self.engine.rewrite_forest(
            task.call.params, task.input_type, store
        )
        store(with_children(task.call, tuple(params)))


def _static_dedup(
    waves: List[List[CallTask]],
) -> Tuple[List[List[CallTask]], int]:
    """Drop plan-time duplicates, keeping each fingerprint's first
    (document-order, earliest-wave) occurrence."""
    seen: Dict[str, CallTask] = {}
    saved = 0
    deduped: List[List[CallTask]] = []
    for wave in waves:
        kept: List[CallTask] = []
        for task in wave:
            if task.fingerprint in seen:
                saved += 1
                continue
            seen[task.fingerprint] = task
            kept.append(task)
        if kept:
            deduped.append(kept)
    return deduped, saved


def _endpoint_batches(wave: Sequence[CallTask]) -> List[List[CallTask]]:
    """Group one wave's tasks by endpoint, preserving document order
    within each group and first-appearance order across groups."""
    groups: Dict[object, List[CallTask]] = {}
    ordered: List[List[CallTask]] = []
    for task in wave:
        key = (task.call.endpoint, task.call.namespace)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = []
            ordered.append(bucket)
        bucket.append(task)
    return ordered
