"""Concurrent materialization of embedded service calls.

The sequential document driver (Section 5) pays one round-trip of
latency per embedded call.  This package overlaps the independent ones:

- :mod:`repro.exec.fingerprint` — canonical ``(function, normalized
  args)`` identity of a call;
- :mod:`repro.exec.dag` — dependency-DAG extraction (param-before-call
  edges; sibling edges only where the safe analysis requires order);
- :mod:`repro.exec.scheduler` — wave scheduling on a bounded thread
  pool, in-flight dedup, endpoint batching, and the result store whose
  document-order replay keeps parallel output bit-identical to the
  sequential engine.

Entry point: ``RewriteEngine(..., workers=8)`` (or the CLI's
``rewrite --workers 8``); see ``docs/CONCURRENCY.md``.
"""

from repro.exec.dag import CallDAG, CallTask, build_call_dag
from repro.exec.fingerprint import call_fingerprint, fingerprint_digest
from repro.exec.scheduler import (
    ExecPolicy,
    ExecReport,
    MaterializationScheduler,
    ScheduledInvoker,
)

__all__ = [
    "CallDAG",
    "CallTask",
    "ExecPolicy",
    "ExecReport",
    "MaterializationScheduler",
    "ScheduledInvoker",
    "build_call_dag",
    "call_fingerprint",
    "fingerprint_digest",
]
