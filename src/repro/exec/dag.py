"""Dependency-DAG extraction for concurrent call materialization.

The document-level driver (Section 5) materializes embedded calls one at
a time, but the only real ordering constraints in a document are:

- **param-before-call**: every call invoked while a call's parameters
  are being rewritten must complete before that call itself can fire
  (stage 1 of the driver rewrites parameters bottom-up); and
- **analysis-ordered siblings**: within one children word, the safe
  strategy's choice for a later call can depend on what earlier invoked
  siblings actually returned — exactly the positions
  :meth:`~repro.rewriting.safe.SafeAnalysis.preview_decisions` reports
  as ``"depends"``.

Everything else is independent, and — intensional data living on many
peers — independence means overlappable round-trips.  This module walks
a document the same way the engine will, asks the engine's *planning
clone* for each word's solved safe analysis, and extracts:

- one :class:`CallTask` per call occurrence the strategy will
  *unconditionally* invoke (action ``"invoke"`` at every reachable
  product node), with ``depends_on`` edges to every task scheduled
  inside its parameter forest (transitively, elements included);
- a record of the positions left sequential (``"depends"`` decisions,
  words without a safe analysis, possible-mode words) — those calls are
  executed by the ordinary sequential pass, results merged in document
  order either way.

The planner never invokes anything and never touches the engine that
will perform the real rewrite (so the real engine's cache accounting is
bit-identical to a sequential run); it works against a disposable clone
whose analysis cache the prefetch tasks then reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.doc.nodes import Element, FunctionCall, Node, Text, symbol_of
from repro.exec.fingerprint import call_fingerprint
from repro.rewriting.plan import DEPENDS, INVOKE

#: An upper bound on planned occurrences — a runaway-recursion backstop,
#: far above any real document (prefetching degrades to partial, never
#: wrong: unplanned calls simply run sequentially).
MAX_PLANNED = 100_000


@dataclass(frozen=True)
class CallTask:
    """One call occurrence the scheduler may prefetch."""

    task_id: int
    call: FunctionCall  # the original (pre-rewrite) node
    input_type: object  # Regex the parameters are rewritten into
    depends_on: Tuple[int, ...]  # param-before-call edges (task ids)
    fingerprint: str  # of the original node, for static dedup

    @property
    def function(self) -> str:
        return self.call.name


@dataclass
class CallDAG:
    """The extracted dependency DAG of one document."""

    tasks: List[CallTask] = field(default_factory=list)
    #: (function name, word position) pairs the analysis forced to stay
    #: sequential — decisions that depend on earlier siblings' outputs.
    sequenced: List[Tuple[str, int]] = field(default_factory=list)
    #: Call occurrences seen during planning (scheduled or not).
    planned_calls: int = 0

    def add_task(
        self, call: FunctionCall, input_type, depends_on: Tuple[int, ...]
    ) -> CallTask:
        task = CallTask(
            task_id=len(self.tasks),
            call=call,
            input_type=input_type,
            depends_on=tuple(depends_on),
            fingerprint=call_fingerprint(call),
        )
        self.tasks.append(task)
        return task

    def waves(self) -> List[List[CallTask]]:
        """Tasks grouped in topological waves (longest-path layering).

        Wave 0 holds tasks with no prerequisites (innermost parameter
        calls); wave ``i`` holds tasks whose deepest prerequisite sits in
        wave ``i - 1``.  Within a wave, tasks keep document order, so a
        run with one worker degenerates to the sequential order.
        """
        level: Dict[int, int] = {}
        for task in self.tasks:  # tasks are created children-first
            level[task.task_id] = (
                1 + max((level[dep] for dep in task.depends_on), default=-1)
            )
        if not level:
            return []
        buckets: List[List[CallTask]] = [[] for _ in range(max(level.values()) + 1)]
        for task in self.tasks:
            buckets[level[task.task_id]].append(task)
        return buckets

    @property
    def n_edges(self) -> int:
        return sum(len(task.depends_on) for task in self.tasks)


def build_call_dag(document, engine) -> CallDAG:
    """Extract the call DAG of ``document`` under ``engine``'s plan.

    ``engine`` is a :class:`repro.rewriting.RewriteEngine` (normally the
    scheduler's private planning clone); only its schemas, mode, depth
    bound and analysis helpers are consulted — nothing is invoked.
    """
    dag = CallDAG()
    root = document.root
    if isinstance(root, Text):
        return dag
    if isinstance(root, FunctionCall):
        input_type = engine._input_type(root.name)
        if input_type is not None:
            _plan_forest(dag, engine, root.params, input_type)
        return dag
    content = engine.target_schema.type_of(root.label)
    if content is not None:
        _plan_forest(dag, engine, root.children, content)
    return dag


def _plan_forest(dag: CallDAG, engine, forest, target) -> List[int]:
    """Plan one children word; returns ids of every task scheduled
    anywhere inside it (they all complete before an enclosing call may
    fire — the param-before-call edges of the enclosing task)."""
    word = tuple(symbol_of(node) for node in forest)
    actions = _preview_actions(engine, word, target)
    scheduled: List[int] = []
    for position, node in enumerate(forest):
        if isinstance(node, Element):
            content = engine.target_schema.type_of(node.label)
            if content is not None:
                scheduled.extend(_plan_forest(dag, engine, node.children, content))
            continue
        if not isinstance(node, FunctionCall):
            continue
        dag.planned_calls += 1
        if dag.planned_calls > MAX_PLANNED:
            return scheduled
        input_type = engine._input_type(node.name)
        nested: List[int] = []
        if input_type is not None:
            # Stage 1 rewrites this call's parameters whether the call
            # is later kept or invoked, so nested invocations prefetch
            # usefully in every case.
            nested = _plan_forest(dag, engine, node.params, input_type)
        scheduled.extend(nested)
        action = actions.get(position)
        if action == INVOKE and input_type is not None:
            task = dag.add_task(node, input_type, tuple(nested))
            scheduled.append(task.task_id)
        elif action == DEPENDS:
            dag.sequenced.append((node.name, position))
    return scheduled


def _preview_actions(engine, word, target) -> Dict[int, str]:
    """position -> keep/invoke/depends, when the word has a safe plan.

    Words without one (possible-mode engines, words that will fall back
    to possible rewriting, schema errors) predict nothing: their calls
    run in the ordinary sequential pass.
    """
    analysis = engine.analyze_word(word, target)
    if analysis is None or not analysis.exists:
        return {}
    try:
        decisions = analysis.preview_decisions()
    except Exception:  # defensive: a preview bug must not break rewriting
        return {}
    return {decision.position: decision.action for decision in decisions}
