"""Canonical fingerprints for embedded service calls.

Deduplicating in-flight invocations, replaying prefetched results, and
deriving reproducible per-call backoff jitter all need one notion of
"the same call": same function, same SOAP coordinates, same parameters
after normalization.  :func:`call_fingerprint` provides it as an exact
canonical string (no hashing, so distinct calls can never collide), and
:func:`fingerprint_digest` compresses it for display and metric labels.

Normalization follows the document model's own equality: element
attributes are already stored sorted (see :class:`repro.doc.nodes.Element`),
so two calls whose parameter forests are equal as trees fingerprint
identically regardless of how they were built.
"""

from __future__ import annotations

import hashlib

from repro.doc.nodes import Element, FunctionCall, Node, Text


def _canonical(node: Node) -> str:
    """An unambiguous s-expression for one parameter subtree."""
    if isinstance(node, Text):
        return "t:%r" % (node.value,)
    if isinstance(node, Element):
        attrs = ";".join("%r=%r" % pair for pair in node.attributes)
        kids = ",".join(_canonical(child) for child in node.children)
        return "e:%r[%s](%s)" % (node.label, attrs, kids)
    if isinstance(node, FunctionCall):
        params = ",".join(_canonical(param) for param in node.params)
        return "f:%r@%r#%r(%s)" % (
            node.name, node.endpoint, node.namespace, params,
        )
    raise TypeError("not a document node: %r" % (node,))


def call_fingerprint(call: FunctionCall) -> str:
    """The exact canonical identity of one call: ``(function, args)``.

    Two :class:`FunctionCall` nodes get the same fingerprint iff they
    name the same operation at the same endpoint/namespace with
    tree-equal parameter forests.
    """
    return _canonical(call)


def fingerprint_digest(fingerprint: str, length: int = 12) -> str:
    """A short, stable digest of a fingerprint (for labels and logs)."""
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:length]
