"""The paper's running example: the newspaper home page.

This module reproduces, verbatim, the artifacts of Sections 2-5:

- :func:`document` — the intensional document of Figure 2.a, with a
  ``Get_Temp`` call (parameter ``<city>Paris</city>``) and a ``TimeOut``
  call;
- :func:`materialized_document` — Figure 2.b, after invoking ``Get_Temp``;
- :func:`schema_star` — schema (*): ``tau(newspaper) =
  title.date.(Get_Temp | temp).(TimeOut | exhibit*)``;
- :func:`schema_star2` — schema (**): ``tau'(newspaper) =
  title.date.temp.(TimeOut | exhibit*)`` (safe rewriting exists);
- :func:`schema_star3` — schema (***): ``tau''(newspaper) =
  title.date.temp.exhibit*`` (only a possible rewriting exists);
- :func:`pattern_schema` — the Section 2.1 variant using the ``Forecast``
  function pattern instead of a concrete ``Get_Temp``.

The paper's own conclusions, used as ground truth by tests and benches:
the document safely rewrites into (**) by invoking ``Get_Temp`` and *not*
``TimeOut``; it only possibly rewrites into (***) (both calls must be
invoked, and success depends on ``TimeOut`` returning only exhibits).
"""

from __future__ import annotations

from typing import Callable

from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.schema.model import Schema, SchemaBuilder

#: SOAP coordinates used in the paper's XML listing (Section 7).
FORECAST_ENDPOINT = "http://www.forecast.com/soap"
FORECAST_NS = "urn:xmethods-weather"
TIMEOUT_ENDPOINT = "http://www.timeout.com/paris"
TIMEOUT_NS = "urn:timeout-program"


def document() -> Document:
    """The intensional newspaper document of Figure 2.a."""
    return Document(
        el(
            "newspaper",
            el("title", "The Sun"),
            el("date", "04/10/2002"),
            call(
                "Get_Temp",
                el("city", "Paris"),
                endpoint=FORECAST_ENDPOINT,
                namespace=FORECAST_NS,
            ),
            call(
                "TimeOut",
                text("exhibits"),
                endpoint=TIMEOUT_ENDPOINT,
                namespace=TIMEOUT_NS,
            ),
        )
    )


def materialized_document(temperature: str = "15") -> Document:
    """Figure 2.b: the document after invoking ``Get_Temp``."""
    return document().splice((2,), (el("temp", temperature),))


def _base_builder() -> SchemaBuilder:
    """Declarations shared by the three schemas; only tau(newspaper) varies."""
    return (
        SchemaBuilder()
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.(Get_Date | date)")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
    )


def schema_star() -> Schema:
    """Schema (*): calls may stay intensional."""
    return (
        _base_builder()
        .element("newspaper", "title.date.(Get_Temp | temp).(TimeOut | exhibit*)")
        .build(strict=False)  # `performance` is intentionally undeclared
    )


def schema_star2() -> Schema:
    """Schema (**): the temperature must be materialized."""
    return (
        _base_builder()
        .element("newspaper", "title.date.temp.(TimeOut | exhibit*)")
        .build(strict=False)
    )


def schema_star3() -> Schema:
    """Schema (***): everything materialized, exhibits only."""
    return (
        _base_builder()
        .element("newspaper", "title.date.temp.exhibit*")
        .build(strict=False)
    )


def pattern_schema(
    forecast_predicate: Callable[[str], bool] = lambda _name: True,
) -> Schema:
    """The Section 2.1 schema using the ``Forecast`` function pattern.

    ``tau(newspaper) = title.date.(Forecast | temp).(TimeOut | exhibit*)``
    where ``Forecast`` admits any function named acceptably by the given
    predicate (the paper's ``UDDIF ∧ InACL``) with signature
    ``city -> temp``.
    """
    return (
        SchemaBuilder()
        .element("newspaper", "title.date.(Forecast | temp).(TimeOut | exhibit*)")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.(Get_Date | date)")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .pattern("Forecast", "city", "temp", forecast_predicate)
        .root("newspaper")
        .build(strict=False)
    )


#: The children word of the newspaper root in Figure 2.a — the word ``w``
#: the safe-rewriting walkthrough of Section 4 operates on.
ROOT_WORD = ("title", "date", "Get_Temp", "TimeOut")


# ---------------------------------------------------------------------------
# The *wide* newspaper: a multi-city edition (fault-tolerance workload)
# ---------------------------------------------------------------------------

#: Cities of the wide edition, cycled when ``width`` exceeds the list.
CITIES = (
    "Paris", "London", "Rome", "Berlin", "Madrid", "Vienna", "Prague",
    "Lisbon", "Dublin", "Oslo", "Athens", "Warsaw",
)


def wide_document(width: int) -> Document:
    """A newspaper front page with ``width`` weather calls (one per city).

    Scaling the number of embedded calls is what makes one transient
    provider fault statistically certain during an exchange — the
    workload the resilient invocation layer exists for.
    """
    calls = [
        call(
            "Get_Temp",
            el("city", CITIES[index % len(CITIES)]),
            endpoint=FORECAST_ENDPOINT,
            namespace=FORECAST_NS,
        )
        for index in range(width)
    ]
    return Document(
        el(
            "newspaper",
            el("title", "The Sun"),
            el("date", "04/10/2002"),
            *calls,
        )
    )


def wide_schema_star(width: int) -> Schema:
    """The wide sender schema: each call may stay intensional."""
    content = ".".join(["title", "date"] + ["(Get_Temp | temp)"] * width)
    return (
        _base_builder()
        .element("newspaper", content)
        .build(strict=False)
    )


def wide_schema_star2(width: int) -> Schema:
    """The wide exchange schema: every temperature must be materialized."""
    content = ".".join(["title", "date"] + ["temp"] * width)
    return (
        _base_builder()
        .element("newspaper", content)
        .build(strict=False)
    )
