"""Synthetic problem generators for the scaling benchmarks (E8-E11).

The word-level rewriting algorithms take a triple: the children word
``w``, the output types of the invocable functions, and the target
language ``R``.  :class:`WordProblem` packages exactly that; the
generators below produce families of problems whose difficulty is
controlled by one parameter each, matching the complexity claims of
Sections 4-5:

- :func:`chain_problem` — recursion depth: invoking ``f_i`` may return
  ``f_{i+1}``, so a k-depth rewriting succeeds iff the chain is short
  enough (Definition 7's motivation);
- :func:`wide_problem` — word width: ``n`` independent calls, measuring
  growth with ``|w|``;
- :func:`nondet_target_problem` — the classic ``(a|b)*.a.(a|b)^n`` family
  whose complement DFA is exponential, exhibiting the blow-up the paper
  predicts for nondeterministic exchange schemas;
- :func:`det_target_problem` — a deterministic target family of matching
  size, the polynomial counterpart;
- :func:`random_word_problem` / :func:`random_flat_schema` /
  :func:`random_document` — seeded random instances for property tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.doc.document import Document
from repro.regex.ast import Regex, alt, atom, seq, star
from repro.regex.parser import parse_regex
from repro.schema.generator import InstanceGenerator
from repro.schema.model import Schema, SchemaBuilder


@dataclass(frozen=True)
class WordProblem:
    """One word-level rewriting instance.

    Attributes:
        word: the children word ``w`` to rewrite.
        output_types: ``tau_out`` for every invocable function.
        target: the target language ``R``.
        expect_safe: ground truth, when the generator knows it.
    """

    word: Tuple[str, ...]
    output_types: Dict[str, Regex]
    target: Regex
    expect_safe: Optional[bool] = None
    expect_possible: Optional[bool] = None


def chain_problem(chain_length: int) -> WordProblem:
    """Calls that return calls: ``tau_out(f_i) = a | f_{i+1}``.

    The word is the single call ``f_1``; a safe k-depth rewriting into
    ``a`` exists iff ``k >= chain_length`` (each level must be invocable
    in case it comes back as another call).  This is the paper's
    search-engine "get more answers" pattern (Section 3, *Recursive
    calls*).
    """
    output_types: Dict[str, Regex] = {}
    for i in range(1, chain_length):
        output_types["f%d" % i] = alt(atom("a"), atom("f%d" % (i + 1)))
    output_types["f%d" % chain_length] = atom("a")
    return WordProblem(
        word=("f1",),
        output_types=output_types,
        target=atom("a"),
        expect_safe=None,  # depends on k; see the benchmark
        expect_possible=None,
    )


def wide_problem(width: int, safe: bool = True) -> WordProblem:
    """``width`` independent calls ``g_1 ... g_n`` to rewrite into ``b^n``.

    With ``safe=True`` every ``tau_out(g_i) = b`` so a safe rewriting
    exists; with ``safe=False`` the outputs are ``b | c`` so only a
    possible rewriting does.
    """
    output = parse_regex("b") if safe else parse_regex("b | c")
    output_types = {("g%d" % i): output for i in range(1, width + 1)}
    return WordProblem(
        word=tuple("g%d" % i for i in range(1, width + 1)),
        output_types=output_types,
        target=seq(*(atom("b") for _ in range(width))) if width else parse_regex(""),
        expect_safe=safe,
        expect_possible=True,
    )


def nondet_target_problem(n: int) -> WordProblem:
    """Target ``(a|b)*.a.(a|b){n,n}`` — complementation is exponential.

    The word is extensional (no calls), so the benchmark isolates the cost
    of building the complete complement of a nondeterministic target, the
    blow-up Section 4 warns about.
    """
    tail = seq(*(alt(atom("a"), atom("b")) for _ in range(n)))
    target = seq(star(alt(atom("a"), atom("b"))), atom("a"), tail)
    word = tuple(["a"] * (n + 1))
    return WordProblem(
        word=word,
        output_types={},
        target=target,
        expect_safe=True,
        expect_possible=True,
    )


def det_target_problem(n: int) -> WordProblem:
    """A deterministic target of comparable size: ``a{n+1,n+1}.b*``.

    The polynomial counterpart of :func:`nondet_target_problem`; the two
    together regenerate the deterministic-vs-nondeterministic crossover
    (benchmark E8).
    """
    target = seq(*([atom("a")] * (n + 1)), star(atom("b")))
    word = tuple(["a"] * (n + 1))
    return WordProblem(
        word=word,
        output_types={},
        target=target,
        expect_safe=True,
        expect_possible=True,
    )


def answer_size_problem(answer_size: int, depth: int) -> WordProblem:
    """Calls whose outputs are ``depth`` levels of fan-out ``answer_size``.

    ``tau_out(h_i) = h_{i+1}^x`` and the last level returns ``a^x``; a
    full materialization grows the word to ``x^depth`` symbols — the
    ``|w| * x^k`` bound discussed at the end of Section 4 (benchmark E10).
    """
    output_types: Dict[str, Regex] = {}
    for level in range(1, depth):
        output_types["h%d" % level] = seq(
            *([atom("h%d" % (level + 1))] * answer_size)
        )
    output_types["h%d" % depth] = seq(*([atom("a")] * answer_size))
    return WordProblem(
        word=("h1",),
        output_types=output_types,
        target=star(atom("a")),
        expect_safe=True,
        expect_possible=True,
    )


def random_word_problem(
    rng: random.Random,
    n_calls: int = 3,
    n_plain: int = 3,
    alphabet: Tuple[str, ...] = ("a", "b", "c"),
) -> WordProblem:
    """A seeded random problem mixing plain symbols and calls.

    Each call's output type is a random choice/repetition over the plain
    alphabet; the target is built to accept *some* rewriting of the word
    so ``expect_possible`` is always True (the safe status is left for
    the algorithms to decide — the property tests cross-check safe ⇒
    possible and plan executability instead of a closed-form answer).
    """
    word: List[str] = []
    output_types: Dict[str, Regex] = {}
    target_parts: List[Regex] = []
    calls_left, plain_left = n_calls, n_plain
    index = 0
    while calls_left or plain_left:
        emit_call = calls_left and (not plain_left or rng.random() < 0.5)
        if emit_call:
            index += 1
            name = "q%d" % index
            symbol_a, symbol_b = rng.sample(alphabet, 2)
            narrow = rng.random() < 0.5
            output = (
                atom(symbol_a) if narrow else alt(atom(symbol_a), atom(symbol_b))
            )
            output_types[name] = output
            word.append(name)
            # The target accepts the call's possible outputs or the call itself.
            target_parts.append(alt(output, atom(name)))
            calls_left -= 1
        else:
            symbol = rng.choice(alphabet)
            word.append(symbol)
            target_parts.append(atom(symbol))
            plain_left -= 1
    return WordProblem(
        word=tuple(word),
        output_types=output_types,
        target=seq(*target_parts),
        expect_safe=True,
        expect_possible=True,
    )


def random_flat_schema(
    rng: random.Random, n_labels: int = 6, n_functions: int = 3
) -> Schema:
    """A seeded random schema with one root, flat element types.

    Element contents are one-unambiguous by construction (every symbol is
    used at most once per expression).
    """
    labels = ["l%d" % i for i in range(1, n_labels + 1)]
    functions = ["s%d" % i for i in range(1, n_functions + 1)]
    builder = SchemaBuilder()
    for label in labels:
        builder.element(label, "data")
    for name in functions:
        output_label = rng.choice(labels)
        builder.function(name, "data", "%s*" % output_label)

    parts: List[str] = []
    used = set()
    for symbol in rng.sample(labels + functions, min(4, n_labels + n_functions)):
        if symbol in used:
            continue
        used.add(symbol)
        suffix = rng.choice(["", "*", "?"])
        parts.append(symbol + suffix)
    builder.element("root", ".".join(parts) if parts else "data")
    builder.root("root")
    return builder.build()


def random_document(seed: int = 0, max_depth: int = 6) -> Document:
    """A seeded random instance of the newspaper schema (*)."""
    from repro.workloads import newspaper

    generator = InstanceGenerator(
        newspaper.schema_star(), random.Random(seed), max_depth=max_depth
    )
    return generator.document()
