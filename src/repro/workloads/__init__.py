"""Workloads: the paper's running example plus synthetic generators.

- :mod:`repro.workloads.newspaper` — the newspaper document of Figure 2
  and the three schemas (*), (**), (***) the paper reasons about;
- :mod:`repro.workloads.generators` — random words/schemas/documents
  parameterized by size, used by the scaling benchmarks (E8-E11);
- :mod:`repro.workloads.scenarios` — the search-engine "get more results"
  handle (recursion depth k), an auction site and a service registry,
  used by the examples and the end-to-end benchmark (E14).
"""

from repro.workloads import newspaper
from repro.workloads.generators import (
    random_document,
    random_flat_schema,
    random_word_problem,
)

__all__ = [
    "newspaper",
    "random_word_problem",
    "random_flat_schema",
    "random_document",
]
