"""Realistic end-to-end scenarios beyond the newspaper example.

Three scenarios exercise distinct aspects the paper motivates:

- :func:`search_engine` — Section 3's *recursive calls*: "a search engine
  Web service may return, for a given keyword, some document URLs plus
  (possibly) a function node for obtaining more answers" — the k-depth
  restriction is exactly what bounds chasing these ``Get_More`` handles;
- :func:`auction_site` — a seller exports listings whose prices come
  from a quote service; the exchange schema decides whether prices
  travel materialized (hide the source) or intensional (fresh quotes);
- :func:`service_directory` — a UDDI-flavoured registry whose entries
  must keep their calls *intensional* ("the origin of the information is
  what is truly requested by the receiver, hence service calls should
  not be materialized") — realized with a non-invocable policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.schema.model import FunctionSignature, Schema, SchemaBuilder
from repro.schema.patterns import InvocationPolicy, deny
from repro.services.registry import ServiceRegistry
from repro.services.service import Service


@dataclass
class Scenario:
    """A ready-to-run setup: documents, schemas, live services."""

    name: str
    sender_schema: Schema
    exchange_schema: Schema
    document: Document
    registry: ServiceRegistry
    policy: InvocationPolicy = InvocationPolicy()
    recommended_k: int = 1


def search_engine(pages: int = 3, per_page: int = 2) -> Scenario:
    """The recursive ``Get_More`` handle scenario.

    ``Search`` returns ``per_page`` urls plus a ``Get_More`` handle while
    results remain; each ``Get_More`` behaves the same.  The receiver
    wants plain XML (``url*`` only), so the sender must chase handles —
    feasible exactly when ``k >= pages``.
    """
    sender = (
        SchemaBuilder()
        .element("results", "Search | (url*.Get_More?)")
        .element("url", "data")
        .function("Search", "data", "url*.Get_More?")
        .function("Get_More", "", "url*.Get_More?")
        .root("results")
        .build()
    )
    receiver = (
        SchemaBuilder()
        .element("results", "url*")
        .element("url", "data")
        .function("Search", "data", "url*.Get_More?")
        .function("Get_More", "", "url*.Get_More?")
        .root("results")
        .build()
    )

    state = {"served": 0}

    def page(_params) -> Tuple:
        start = state["served"]
        state["served"] += per_page
        urls = [
            el("url", "http://result.example.com/%d" % i)
            for i in range(start, start + per_page)
        ]
        if state["served"] < pages * per_page:
            urls.append(call("Get_More"))
        return tuple(urls)

    engine = Service("http://search.example.com/soap", "urn:search")
    search_signature = FunctionSignature(
        sender.input_type("Search"), sender.output_type("Search")
    )
    more_signature = FunctionSignature(
        sender.input_type("Get_More"), sender.output_type("Get_More")
    )
    engine.add_operation("Search", search_signature, page)
    engine.add_operation("Get_More", more_signature, page)

    registry = ServiceRegistry()
    registry.register(engine)

    document = Document(
        el("results", call("Search", text("intensional xml"),
                           endpoint="http://search.example.com/soap"))
    )
    return Scenario(
        "search-engine", sender, receiver, document, registry,
        recommended_k=pages + 1,
    )


def auction_site(listings: int = 4, seed: int = 7) -> Scenario:
    """Listings with intensional prices from a quote service."""
    rng = random.Random(seed)
    base = (
        SchemaBuilder()
        .element("catalog", "listing*")
        .element("listing", "item.(Get_Quote | price)")
        .element("item", "data")
        .element("price", "data")
        .function("Get_Quote", "item", "price")
        .root("catalog")
    )
    sender = base.build()
    receiver = (
        SchemaBuilder()
        .element("catalog", "listing*")
        .element("listing", "item.price")  # buyers need concrete prices
        .element("item", "data")
        .element("price", "data")
        .function("Get_Quote", "item", "price")
        .root("catalog")
        .build()
    )

    quotes = Service("http://quotes.example.com/soap", "urn:quotes")

    def quote(params) -> Tuple:
        amount = 10 + rng.randrange(90)
        return (el("price", "%d EUR" % amount),)

    quotes.add_operation(
        "Get_Quote",
        FunctionSignature(
            sender.input_type("Get_Quote"), sender.output_type("Get_Quote")
        ),
        quote,
        cost=0.5,
        side_effect_free=True,
    )
    registry = ServiceRegistry()
    registry.register(quotes)

    items = []
    for index in range(listings):
        name = "item-%d" % index
        if index % 2 == 0:
            items.append(
                el("listing", el("item", name),
                   call("Get_Quote", el("item", name),
                        endpoint="http://quotes.example.com/soap"))
            )
        else:
            items.append(
                el("listing", el("item", name), el("price", "25 EUR"))
            )
    document = Document(el("catalog", *items))
    return Scenario("auction", sender, receiver, document, registry)


def service_directory(entries: int = 3) -> Scenario:
    """A UDDI-flavoured directory whose calls must stay intensional.

    The exchange schema *requires* the ``Probe`` calls to remain in the
    document (the receiver wants the sources, not their values), and the
    policy declares them non-invocable — a legal rewriting cannot fire
    them even accidentally.
    """
    schema = (
        SchemaBuilder()
        .element("directory", "entry*")
        .element("entry", "provider.Probe")
        .element("provider", "data")
        .element("status", "data")
        .function("Probe", "", "status")
        .root("directory")
        .build()
    )

    probe = Service("http://probe.example.com/soap", "urn:probe")
    probe.add_operation(
        "Probe",
        FunctionSignature(
            schema.input_type("Probe"), schema.output_type("Probe")
        ),
        lambda _params: (el("status", "up"),),
    )
    registry = ServiceRegistry()
    registry.register(probe)

    document = Document(
        el(
            "directory",
            *[
                el("entry", el("provider", "provider-%d" % i), call("Probe"))
                for i in range(entries)
            ],
        )
    )
    return Scenario(
        "service-directory", schema, schema, document, registry,
        policy=deny(["Probe"]),
    )
