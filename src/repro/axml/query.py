"""Declarative services over the repository.

An Active XML peer "provides some Web services, defined declaratively as
queries/updates on top of the repository documents".  The query language
here is a small label-path selector — enough to define realistic
services (e.g. "all exhibits of the newspaper document") whose results
are forests that may themselves contain function calls, i.e. intensional
answers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.axml.repository import DocumentRepository
from repro.doc.nodes import Element, FunctionCall, Node, Text, children_of
from repro.errors import DocumentError
from repro.schema.model import FunctionSignature
from repro.services.service import Handler


def select(node: Node, path: Sequence[str]) -> List[Node]:
    """All subtrees reached by following a label path from ``node``.

    ``path`` is matched stepwise against element labels; ``*`` matches
    any element.  Function nodes match by name, and their parameters are
    not traversed (parameters belong to the call).

    Steps may carry one predicate in brackets:

    - ``exhibit[title=Picasso]`` — some ``title`` child's text equals
      the value;
    - ``item[@sku=A-1]`` — the element has that attribute value.
    """
    if not path:
        return [node]
    step, rest = path[0], path[1:]
    matches: List[Node] = []
    if isinstance(node, Element):
        for child in node.children:
            if _matches(child, step):
                matches.extend(select(child, rest))
    return matches


def _split_step(step: str):
    """Split ``label[predicate]`` into (label, predicate or None)."""
    if step.endswith("]") and "[" in step:
        base, _, condition = step[:-1].partition("[")
        return base, condition
    return step, None


def _predicate_holds(node: Node, condition: str) -> bool:
    key, separator, value = condition.partition("=")
    if not separator:
        raise DocumentError("malformed predicate [%s]" % condition)
    if key.startswith("@"):
        if not isinstance(node, Element):
            return False
        return node.get_attribute(key[1:]) == value
    if not isinstance(node, Element):
        return False
    for child in node.children:
        if (
            isinstance(child, Element)
            and child.label == key
            and len(child.children) == 1
            and isinstance(child.children[0], Text)
            and child.children[0].value == value
        ):
            return True
    return False


def _matches(node: Node, step: str) -> bool:
    base, condition = _split_step(step)
    if base == "*":
        name_ok = isinstance(node, Element)
    elif isinstance(node, Element):
        name_ok = node.label == base
    elif isinstance(node, FunctionCall):
        name_ok = node.name == base
    else:
        name_ok = False
    if not name_ok:
        return False
    if condition is None:
        return True
    return _predicate_holds(node, condition)


def query_path(
    repository: DocumentRepository, document_name: str, path_expr: str
) -> Tuple[Node, ...]:
    """Run one label-path query: ``"newspaper/exhibit"`` style."""
    document = repository.get(document_name)
    path = [step for step in path_expr.split("/") if step]
    if not path:
        raise DocumentError("empty query path")
    root = document.root
    if not _matches(root, path[0]):
        return ()
    return tuple(select(root, path[1:]))


def query_service(
    repository: DocumentRepository,
    document_name: str,
    path_expr: str,
    signature: FunctionSignature,
    text_filter: bool = False,
) -> Tuple[FunctionSignature, Handler]:
    """Build a declarative service operation from a path query.

    The returned handler evaluates the query against the live repository
    on every call, so stored-document updates are visible — this is what
    makes peer services *dynamic*.  With ``text_filter`` the first
    parameter's data value must occur in a result's text for it to be
    returned (a keyword-search flavour).
    """

    def handler(params: Sequence[Node]) -> Tuple[Node, ...]:
        results = query_path(repository, document_name, path_expr)
        if text_filter and params:
            keyword = _text_of(params[0])
            if keyword:
                results = tuple(
                    node for node in results if keyword in _full_text(node)
                )
        return tuple(results)

    return signature, handler


def _text_of(node: Node) -> str:
    if isinstance(node, Text):
        return node.value
    parts = [_text_of(child) for child in children_of(node)]
    return " ".join(part for part in parts if part)


def _full_text(node: Node) -> str:
    return _text_of(node)
